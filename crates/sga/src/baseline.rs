//! The three-phase SGA baseline runner with memory billing.

use crate::fm::FmIndex;
use crate::overlap::{build_text, find_overlaps, OverlapStats};
use genome::ReadSet;
use gstream::{HostMem, IoStats};
use lasagna::StringGraph;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// SGA's ropebwt-compressed index costs roughly this many bytes per indexed
/// character — the rate we bill against the host budget. Calibrated against
/// Table VI: at paper scale Parakeet (2 × 91.3 G chars → 54.8 GB) ran on
/// 64 GB, while H.Genome (2 × 124.75 G chars → 74.9 GB) OOM'd on 64 GB but
/// ran on 128 GB. Any rate in (0.257, 0.351) reproduces all three cells.
pub const COMPRESSED_BYTES_PER_CHAR: f64 = 0.3;

/// SGA failure modes.
#[derive(Debug)]
pub enum SgaError {
    /// The billed index does not fit the host budget (Table VI's "OOM").
    OutOfMemory {
        /// Bytes the index would need.
        needed: u64,
        /// Budget available.
        budget: u64,
    },
    /// Input problem.
    BadInput(String),
}

impl std::fmt::Display for SgaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgaError::OutOfMemory { needed, budget } => {
                write!(f, "SGA index needs {needed} B, budget {budget} B (OOM)")
            }
            SgaError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for SgaError {}

/// Per-phase timings and outcome of one SGA run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SgaReport {
    /// Wall seconds of the preprocess phase.
    pub preprocess_seconds: f64,
    /// Wall seconds of the index phase.
    pub index_seconds: f64,
    /// Wall seconds of the overlap phase.
    pub overlap_seconds: f64,
    /// Modeled disk seconds (dataset streamed once per phase that reads it).
    pub disk_seconds: f64,
    /// Billed index memory in bytes.
    pub billed_index_bytes: u64,
    /// Plain in-memory footprint of our arrays (informational).
    pub plain_index_bytes: u64,
    /// Candidate overlaps offered.
    pub candidates: u64,
    /// Edges accepted.
    pub accepted: u64,
}

impl SgaReport {
    /// Total wall seconds over the three compared phases.
    pub fn total_seconds(&self) -> f64 {
        self.preprocess_seconds + self.index_seconds + self.overlap_seconds
    }
}

/// The configured baseline.
pub struct SgaBaseline {
    /// Host-memory budget the index is billed against.
    pub host: HostMem,
    /// Disk model for the modeled I/O seconds.
    pub io: IoStats,
    /// Minimum overlap length.
    pub l_min: u32,
}

impl SgaBaseline {
    /// Run preprocess + index + overlap on `reads`.
    pub fn run(&self, reads: &ReadSet) -> Result<(StringGraph, SgaReport), SgaError> {
        if reads.read_len() as u32 <= self.l_min {
            return Err(SgaError::BadInput(format!(
                "l_min {} must be below the read length {}",
                self.l_min,
                reads.read_len()
            )));
        }
        let mut report = SgaReport::default();

        // Preprocess: stage reads + reverse complements as index input and
        // stream the dataset once (2-bit packed on disk).
        let t0 = Instant::now();
        let (text, starts) = build_text(reads);
        report.preprocess_seconds = t0.elapsed().as_secs_f64();
        self.io.add_read(reads.total_bases() / 4);

        // Index: bill the ropebwt-scale footprint against the budget, then
        // build the plain-array FM-index.
        let billed = (text.len() as f64 * COMPRESSED_BYTES_PER_CHAR).ceil() as u64;
        let _index_guard = self
            .host
            .reserve(billed)
            .map_err(|e| SgaError::OutOfMemory {
                needed: billed,
                budget: e.capacity,
            })?;
        report.billed_index_bytes = billed;
        let t0 = Instant::now();
        let fm = FmIndex::build(&text, &starts);
        report.index_seconds = t0.elapsed().as_secs_f64();
        report.plain_index_bytes = fm.plain_bytes();
        // The index construction streams the staged reads once more.
        self.io.add_read(reads.total_bases() / 4);

        // Overlap: incremental backward searches + greedy graph.
        let t0 = Instant::now();
        let mut graph = StringGraph::new(reads.vertex_count());
        let OverlapStats {
            candidates,
            accepted,
        } = find_overlaps(&fm, reads, self.l_min, &mut graph);
        report.overlap_seconds = t0.elapsed().as_secs_f64();
        report.candidates = candidates;
        report.accepted = accepted;
        self.io.add_read(reads.total_bases() / 4);

        report.disk_seconds = self.io.snapshot().read_seconds;
        Ok((graph, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::{GenomeSim, ShotgunSim};

    fn baseline(budget: u64, l_min: u32) -> SgaBaseline {
        SgaBaseline {
            host: HostMem::new(budget),
            io: IoStats::default(),
            l_min,
        }
    }

    fn sample_reads(genome_len: usize, read_len: usize, coverage: f64, seed: u64) -> ReadSet {
        let genome = GenomeSim::uniform(genome_len, seed).generate();
        ShotgunSim::error_free(read_len, coverage, seed + 1).sample(&genome)
    }

    #[test]
    fn full_run_builds_a_graph_with_edges() {
        let reads = sample_reads(1000, 40, 10.0, 3);
        let (graph, report) = baseline(1 << 30, 25).run(&reads).unwrap();
        assert!(report.accepted > 0);
        assert!(graph.edge_count() > 0);
        assert!(report.total_seconds() > 0.0);
        assert!(report.billed_index_bytes > 0);
        graph.check_invariants().unwrap();
    }

    #[test]
    fn insufficient_budget_reports_oom() {
        let reads = sample_reads(2000, 40, 10.0, 4);
        // Billed ≈ 0.4 × 2 × 2000 × 10 ≈ 16 KB; a 1 KB budget must fail.
        let err = baseline(1024, 25).run(&reads).unwrap_err();
        match err {
            SgaError::OutOfMemory { needed, budget } => {
                assert!(needed > budget);
                assert_eq!(budget, 1024);
            }
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn l_min_at_or_above_read_length_is_rejected() {
        let reads = sample_reads(500, 30, 5.0, 5);
        assert!(matches!(
            baseline(1 << 30, 30).run(&reads),
            Err(SgaError::BadInput(_))
        ));
    }

    #[test]
    fn paper_scale_billing_reproduces_table6_oom_pattern() {
        // At full paper scale: H.Genome indexes 2 × 124.75 G chars.
        let chars = 2.0 * 124_751_839_200.0;
        let billed = chars * COMPRESSED_BYTES_PER_CHAR;
        assert!(billed > 64e9, "must not fit in 64 GB");
        assert!(billed < 128e9, "must fit in 128 GB");
        // And Parakeet (2 × 91.3 G chars) fits both memory sizes.
        let parakeet = 2.0 * 91_306_488_300.0 * COMPRESSED_BYTES_PER_CHAR;
        assert!(parakeet < 64e9, "parakeet ran on 64 GB in Table VI");
    }
}
