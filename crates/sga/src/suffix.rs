//! Linear-time suffix array construction (SA-IS).
//!
//! Nong, Zhang & Chan's induced-sorting algorithm. The index phase builds
//! the BWT from this suffix array — the plain-array stand-in for SGA's
//! ropebwt construction, with identical output.
//!
//! The input text must end with a unique smallest character (value 0, the
//! terminal sentinel); [`suffix_array`] enforces this.

/// Build the suffix array of `text`. The final character must be `0` and
/// `0` must not occur elsewhere.
///
/// # Panics
/// Panics if the sentinel convention is violated.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    assert!(text.last() == Some(&0), "text must end with the 0 sentinel");
    assert!(
        !text[..text.len() - 1].contains(&0),
        "0 may only appear as the final sentinel"
    );
    let text: Vec<u32> = text.iter().map(|&c| c as u32).collect();
    let mut sa = vec![0u32; text.len()];
    sais(&text, &mut sa, 256);
    sa
}

/// Recursive SA-IS over a u32 text with alphabet size `sigma`.
/// `text` must end in a unique smallest sentinel (0).
fn sais(text: &[u32], sa: &mut [u32], sigma: usize) {
    let n = text.len();
    if n == 0 {
        return;
    }
    if n == 1 {
        sa[0] = 0;
        return;
    }

    // Classify positions: S-type (true) or L-type (false).
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // Bucket sizes.
    let mut bucket = vec![0u32; sigma];
    for &c in text {
        bucket[c as usize] += 1;
    }
    let bucket_heads = |bucket: &[u32]| {
        let mut heads = vec![0u32; sigma];
        let mut sum = 0;
        for c in 0..sigma {
            heads[c] = sum;
            sum += bucket[c];
        }
        heads
    };
    let bucket_tails = |bucket: &[u32]| {
        let mut tails = vec![0u32; sigma];
        let mut sum = 0;
        for c in 0..sigma {
            sum += bucket[c];
            tails[c] = sum;
        }
        tails
    };

    const EMPTY: u32 = u32::MAX;

    // Step 1: place LMS suffixes at their bucket tails (unordered), then
    // induce-sort.
    let induce = |sa: &mut [u32], lms_order: &[u32]| {
        sa.fill(EMPTY);
        let mut tails = bucket_tails(&bucket);
        for &p in lms_order.iter().rev() {
            let c = text[p as usize] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = p;
        }
        // Induce L-types left to right.
        let mut heads = bucket_heads(&bucket);
        for i in 0..n {
            let p = sa[i];
            if p != EMPTY && p > 0 && !is_s[(p - 1) as usize] {
                let c = text[(p - 1) as usize] as usize;
                sa[heads[c] as usize] = p - 1;
                heads[c] += 1;
            }
        }
        // Induce S-types right to left (this overwrites the provisional
        // LMS placements with their induced order).
        let mut tails = bucket_tails(&bucket);
        for i in (0..n).rev() {
            let p = sa[i];
            if p != EMPTY && p > 0 && is_s[(p - 1) as usize] {
                let c = text[(p - 1) as usize] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = p - 1;
            }
        }
    };

    // First pass: LMS positions in text order.
    let lms_positions: Vec<u32> = (1..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    induce(sa, &lms_positions);

    // Extract the LMS suffixes in their induced order and name the LMS
    // substrings.
    let sorted_lms: Vec<u32> = sa
        .iter()
        .copied()
        .filter(|&p| p != EMPTY && is_lms(p as usize))
        .collect();

    let lms_equal = |a: usize, b: usize| -> bool {
        // Compare LMS substrings starting at a and b.
        if text[a] != text[b] {
            return false;
        }
        let mut i = a + 1;
        let mut j = b + 1;
        loop {
            let a_end = is_lms(i);
            let b_end = is_lms(j);
            if a_end && b_end {
                return true;
            }
            if a_end != b_end || text[i] != text[j] {
                return false;
            }
            i += 1;
            j += 1;
        }
    };

    let mut names = vec![EMPTY; n];
    let mut name_count: u32 = 0;
    let mut prev: Option<u32> = None;
    for &p in &sorted_lms {
        if let Some(q) = prev {
            if !lms_equal(q as usize, p as usize) {
                name_count += 1;
            }
        } else {
            name_count = 1;
        }
        names[p as usize] = name_count - 1;
        prev = Some(p);
    }

    // Order the LMS suffixes.
    let lms_sorted_final: Vec<u32> = if (name_count as usize) < lms_positions.len() {
        // Names are not unique: recurse on the reduced string.
        let reduced: Vec<u32> = lms_positions.iter().map(|&p| names[p as usize]).collect();
        let mut reduced_sa = vec![0u32; reduced.len()];
        sais(&reduced, &mut reduced_sa, name_count as usize);
        reduced_sa
            .iter()
            .map(|&r| lms_positions[r as usize])
            .collect()
    } else {
        // All names unique: the induced order is already correct.
        sorted_lms
    };

    // Final induced sort with the correctly ordered LMS suffixes.
    induce(sa, &lms_sorted_final);
}

/// Naive O(n² log n) suffix sort — the test oracle.
pub fn naive_suffix_array(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(text: &[u8]) {
        assert_eq!(
            suffix_array(text),
            naive_suffix_array(text),
            "text {text:?}"
        );
    }

    #[test]
    fn classic_banana() {
        // "banana" over a small alphabet: b=2,a=1,n=3 + sentinel.
        check(&[2, 1, 3, 1, 3, 1, 0]);
    }

    #[test]
    fn trivial_inputs() {
        check(&[0]);
        check(&[1, 0]);
        check(&[1, 1, 1, 1, 0]);
        check(&[2, 1, 0]);
        check(&[1, 2, 0]);
    }

    #[test]
    fn repetitive_dna_like_input() {
        // ACGTACGTACGT... with separators (1 = separator, bases 2..=5).
        let mut text = Vec::new();
        for _ in 0..8 {
            text.extend_from_slice(&[2, 3, 4, 5, 2, 3, 4, 5]);
            text.push(1);
        }
        text.push(0);
        check(&text);
    }

    #[test]
    fn deep_recursion_case() {
        // Thue-Morse-like string forces non-unique LMS names.
        let mut text: Vec<u8> = Vec::new();
        let mut bit = 1u8;
        for i in 0..200 {
            if i % 3 == 0 {
                bit = 3 - bit;
            }
            text.push(bit);
            text.push(3 - bit);
        }
        text.push(0);
        check(&text);
    }

    #[test]
    #[should_panic(expected = "must end with the 0 sentinel")]
    fn missing_sentinel_panics() {
        suffix_array(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "only appear as the final sentinel")]
    fn interior_sentinel_panics() {
        suffix_array(&[1, 0, 2, 0]);
    }

    proptest! {
        #[test]
        fn matches_naive_on_random_texts(
            mut text in prop::collection::vec(1u8..6, 1..300)
        ) {
            text.push(0);
            check(&text);
        }

        #[test]
        fn matches_naive_on_low_entropy_texts(
            mut text in prop::collection::vec(1u8..3, 1..300)
        ) {
            text.push(0);
            check(&text);
        }
    }
}
