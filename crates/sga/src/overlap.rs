//! SGA's overlap phase: exact suffix-prefix overlaps via backward search.
//!
//! For every vertex `u` (read or reverse complement), one incremental
//! backward search extends `u`'s suffix leftward one base at a time. At
//! each suffix length `l ∈ [l_min, l_max)` the current FM-interval is
//! intersected with the read-start marks: every read `v` whose prefix
//! equals the suffix yields a candidate edge `(u, v, l)`.
//!
//! Candidates are offered to the same greedy [`StringGraph`] LaSAGNA uses —
//! longest overlaps first, so each vertex keeps its best edge and Table VI
//! compares identical graph semantics.

use crate::fm::FmIndex;
use genome::ReadSet;
use lasagna::StringGraph;

/// Build the concatenated text and start markers for `reads` (both
/// orientations). Returns `(text, start_of)` in FM alphabet encoding.
pub fn build_text(reads: &ReadSet) -> (Vec<u8>, Vec<Option<u32>>) {
    let n = reads.read_len();
    let vertices = reads.vertex_count() as usize;
    let mut text = Vec::with_capacity(vertices * (n + 1) + 1);
    let mut start_of = Vec::with_capacity(text.capacity());
    let mut codes = Vec::new();
    for i in 0..reads.len() {
        reads.read_codes_into(i, &mut codes);
        for strand in 0..2u32 {
            let vertex = (i as u32) * 2 + strand;
            start_of.push(Some(vertex));
            start_of.extend(std::iter::repeat_n(None, n));
            if strand == 0 {
                text.extend(codes.iter().map(|&c| c + 2));
            } else {
                text.extend(codes.iter().rev().map(|&c| (c ^ 3) + 2));
            }
            text.push(1); // separator
        }
    }
    text.push(0); // terminal sentinel
    start_of.push(None);
    debug_assert_eq!(text.len(), start_of.len());
    (text, start_of)
}

/// Overlap statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapStats {
    /// Candidate suffix-prefix matches offered to the graph.
    pub candidates: u64,
    /// Edges accepted by the greedy rule.
    pub accepted: u64,
}

/// Find all exact overlaps of length `[l_min, l_max)` and build the greedy
/// graph. `l_max` is the read length (full-length matches are skipped, as
/// in LaSAGNA's dropped l_max partition).
pub fn find_overlaps(
    fm: &FmIndex,
    reads: &ReadSet,
    l_min: u32,
    graph: &mut StringGraph,
) -> OverlapStats {
    let l_max = reads.read_len() as u32;
    let mut stats = OverlapStats::default();
    let mut codes = Vec::new();
    let mut candidates = Vec::new();

    // Descending-length priority: collect candidates per length for all
    // vertices, then offer longest-first. SGA proper streams per read with
    // an irreducible-overlap rule; greedy longest-first gives the same
    // ≤1-in/out graph LaSAGNA builds, which is what Table VI compares.
    let mut per_length: Vec<Vec<(u32, u32)>> = vec![Vec::new(); l_max as usize];

    for i in 0..reads.len() {
        reads.read_codes_into(i, &mut codes);
        for strand in 0..2u32 {
            let u = (i as u32) * 2 + strand;
            let oriented: Vec<u8> = if strand == 0 {
                codes.iter().map(|&c| c + 2).collect()
            } else {
                codes.iter().rev().map(|&c| (c ^ 3) + 2).collect()
            };
            // Incrementally extend the suffix leftward.
            let mut iv = fm.whole();
            for l in 1..=l_max {
                let ch = oriented[(l_max - l) as usize];
                iv = fm.extend_left(iv, ch);
                if iv.is_empty() {
                    break;
                }
                if l >= l_min && l < l_max && fm.count_read_starts(iv) > 0 {
                    candidates.clear();
                    fm.read_starts_into(iv, &mut candidates);
                    for &v in &candidates {
                        per_length[l as usize].push((u, v));
                    }
                }
            }
        }
    }

    for l in (l_min..l_max).rev() {
        for &(u, v) in &per_length[l as usize] {
            stats.candidates += 1;
            if graph.try_add_edge(u, v, l).is_ok() {
                stats.accepted += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads_of(strs: &[&str]) -> ReadSet {
        ReadSet::from_reads(strs[0].len(), strs.iter().map(|s| s.parse().unwrap())).unwrap()
    }

    fn overlaps_for(strs: &[&str], l_min: u32) -> (StringGraph, OverlapStats) {
        let reads = reads_of(strs);
        let (text, starts) = build_text(&reads);
        let fm = FmIndex::build(&text, &starts);
        let mut graph = StringGraph::new(reads.vertex_count());
        let stats = find_overlaps(&fm, &reads, l_min, &mut graph);
        (graph, stats)
    }

    #[test]
    fn finds_simple_forward_overlap() {
        // read0 suffix TACG (4) == read1 prefix.
        let (graph, stats) = overlaps_for(&["AATTACG", "TACGGCC"], 4);
        assert!(stats.accepted >= 1);
        let e = graph.out(0).expect("edge from read0 forward");
        assert_eq!(e.to, 2);
        assert_eq!(e.overlap, 4);
        graph.check_invariants().unwrap();
    }

    #[test]
    fn finds_reverse_strand_overlap() {
        // read1 = revcomp of a fragment following read0:
        // genome ...AATTACG GCA...  read1 sequenced reverse.
        let r0 = "AATTACG";
        // suffix "TACG" extended by GCA → revcomp of "TACGGCA" = TGCCGTA.
        let (graph, stats) = overlaps_for(&[r0, "TGCCGTA"], 4);
        assert!(stats.accepted >= 1);
        // Edge from 0 to vertex 3 (read1 reverse).
        let e = graph.out(0).expect("edge from read0");
        assert_eq!(e.to, 3);
        graph.check_invariants().unwrap();
    }

    #[test]
    fn longest_overlap_wins() {
        // read0 overlaps read1 by 5 and read2 by 3.
        let (graph, _) = overlaps_for(&["AATCGTA", "TCGTAGG", "GTACCCC"], 3);
        let e = graph.out(0).unwrap();
        assert_eq!(e.to, 2);
        assert_eq!(e.overlap, 5);
    }

    #[test]
    fn no_overlaps_below_l_min() {
        let (graph, stats) = overlaps_for(&["AATTACG", "TACGGCC"], 5);
        assert_eq!(stats.candidates, 0);
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn identical_reads_do_not_self_loop() {
        let (graph, _) = overlaps_for(&["ACGTACG", "ACGTACG"], 3);
        // Candidate edges between the two copies are fine; self-edges and
        // fold-backs must be absent.
        for e in graph.edges() {
            assert_ne!(e.from, e.to);
            assert_ne!(e.from ^ 1, e.to);
        }
        graph.check_invariants().unwrap();
    }

    #[test]
    fn text_layout_marks_every_vertex_start() {
        let reads = reads_of(&["ACG", "TTT"]);
        let (text, starts) = build_text(&reads);
        assert_eq!(text.len(), 4 * 4 + 1);
        let marked: Vec<u32> = starts.iter().flatten().copied().collect();
        assert_eq!(marked, vec![0, 1, 2, 3]);
        assert_eq!(text.last(), Some(&0));
        assert_eq!(text.iter().filter(|&&c| c == 1).count(), 4);
    }
}
