//! FM-index over the concatenated read set.
//!
//! Alphabet: `0` terminal sentinel, `1` read separator, `2..=5` the bases
//! A/C/G/T. Backward search maintains a half-open suffix-array interval
//! `[lo, hi)`; `extend_left` prepends one character via the LF mapping.
//! Occ is checkpointed every `OCC_BLOCK` positions — the classic
//! time/space trade-off.
//!
//! Read starts are marked in suffix-array order with a prefix-sum array, so
//! "how many reads have this pattern as a *prefix*" is two subtractions —
//! the query at the heart of SGA's overlap phase.

use crate::suffix::suffix_array;

/// Alphabet size (sentinel, separator, four bases).
pub const SIGMA: usize = 6;

/// Occ checkpoint spacing.
const OCC_BLOCK: usize = 64;

/// A suffix-array interval `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u32,
    /// Exclusive upper bound.
    pub hi: u32,
}

impl Interval {
    /// Number of occurrences in the interval.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// `true` if the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// FM-index with a retained suffix array and read-start ranks.
pub struct FmIndex {
    bwt: Vec<u8>,
    /// C[c] = number of text characters < c.
    c: [u32; SIGMA + 1],
    /// Occ checkpoints: occ[block][c] = count of c in bwt[..block*OCC_BLOCK].
    occ: Vec<[u32; SIGMA]>,
    sa: Vec<u32>,
    /// starts_rank[i] = number of read-start suffixes among sa[..i].
    starts_rank: Vec<u32>,
    /// read id of the suffix at SA rank i if it is a read start.
    start_read: Vec<u32>,
}

impl FmIndex {
    /// Index `text` (must follow the sentinel conventions of
    /// [`suffix_array`]). `start_positions[p] = Some(read)` marks text
    /// position `p` as the first base of `read`.
    pub fn build(text: &[u8], start_of: &[Option<u32>]) -> Self {
        assert_eq!(text.len(), start_of.len());
        let sa = suffix_array(text);
        let n = text.len();

        let mut bwt = vec![0u8; n];
        for (i, &p) in sa.iter().enumerate() {
            bwt[i] = if p == 0 {
                text[n - 1]
            } else {
                text[p as usize - 1]
            };
        }

        let mut counts = [0u32; SIGMA];
        for &ch in text {
            counts[ch as usize] += 1;
        }
        let mut c = [0u32; SIGMA + 1];
        for ch in 0..SIGMA {
            c[ch + 1] = c[ch] + counts[ch];
        }

        let blocks = n / OCC_BLOCK + 1;
        let mut occ = Vec::with_capacity(blocks);
        let mut running = [0u32; SIGMA];
        for (i, &ch) in bwt.iter().enumerate() {
            if i % OCC_BLOCK == 0 {
                occ.push(running);
            }
            running[ch as usize] += 1;
        }
        if n.is_multiple_of(OCC_BLOCK) {
            occ.push(running);
        }

        let mut starts_rank = Vec::with_capacity(n + 1);
        let mut start_read = vec![u32::MAX; n];
        let mut acc = 0u32;
        for (i, &p) in sa.iter().enumerate() {
            starts_rank.push(acc);
            if let Some(r) = start_of[p as usize] {
                start_read[i] = r;
                acc += 1;
            }
        }
        starts_rank.push(acc);

        FmIndex {
            bwt,
            c,
            occ,
            sa,
            starts_rank,
            start_read,
        }
    }

    /// Text length.
    pub fn len(&self) -> usize {
        self.bwt.len()
    }

    /// `true` when the index covers no text.
    pub fn is_empty(&self) -> bool {
        self.bwt.is_empty()
    }

    /// Count of `ch` in `bwt[..i]`.
    fn rank(&self, ch: u8, i: u32) -> u32 {
        let i = i as usize;
        let block = i / OCC_BLOCK;
        let mut r = self.occ[block][ch as usize];
        for &b in &self.bwt[block * OCC_BLOCK..i] {
            r += (b == ch) as u32;
        }
        r
    }

    /// The interval of all suffixes (empty pattern).
    pub fn whole(&self) -> Interval {
        Interval {
            lo: 0,
            hi: self.bwt.len() as u32,
        }
    }

    /// Backward-extend: the interval of `ch · pattern` given the interval
    /// of `pattern`.
    pub fn extend_left(&self, iv: Interval, ch: u8) -> Interval {
        let c = self.c[ch as usize];
        Interval {
            lo: c + self.rank(ch, iv.lo),
            hi: c + self.rank(ch, iv.hi),
        }
    }

    /// The interval of an entire pattern (backward search).
    pub fn find(&self, pattern: &[u8]) -> Interval {
        let mut iv = self.whole();
        for &ch in pattern.iter().rev() {
            iv = self.extend_left(iv, ch);
            if iv.is_empty() {
                break;
            }
        }
        iv
    }

    /// How many occurrences in `iv` are read starts.
    pub fn count_read_starts(&self, iv: Interval) -> u32 {
        self.starts_rank[iv.hi as usize] - self.starts_rank[iv.lo as usize]
    }

    /// The reads whose prefix is the pattern of `iv`, appended to `out`.
    pub fn read_starts_into(&self, iv: Interval, out: &mut Vec<u32>) {
        for rank in iv.lo..iv.hi {
            let r = self.start_read[rank as usize];
            if r != u32::MAX {
                out.push(r);
            }
        }
    }

    /// Text position of the suffix at SA rank `rank`.
    pub fn sa_position(&self, rank: u32) -> u32 {
        self.sa[rank as usize]
    }

    /// Bytes of the plain in-memory representation (for reporting; the
    /// budget *billing* uses the compressed model instead, see
    /// [`crate::baseline`]).
    pub fn plain_bytes(&self) -> u64 {
        (self.bwt.len()
            + self.occ.len() * SIGMA * 4
            + self.sa.len() * 4
            + self.starts_rank.len() * 4
            + self.start_read.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Text "ACGT|ACGA|" with separators and terminal sentinel, plus read
    /// start marks.
    fn demo() -> (Vec<u8>, Vec<Option<u32>>) {
        // A=2 C=3 G=4 T=5, separator 1, sentinel 0.
        let text = vec![2, 3, 4, 5, 1, 2, 3, 4, 2, 1, 0];
        let mut starts = vec![None; text.len()];
        starts[0] = Some(0);
        starts[5] = Some(1);
        (text, starts)
    }

    #[test]
    fn find_counts_all_occurrences() {
        let (text, starts) = demo();
        let fm = FmIndex::build(&text, &starts);
        assert_eq!(fm.find(&[2, 3, 4]).len(), 2); // ACG twice
        assert_eq!(fm.find(&[2, 3, 4, 5]).len(), 1); // ACGT once
        assert_eq!(fm.find(&[5, 5]).len(), 0);
        assert_eq!(fm.find(&[]).len(), text.len() as u32);
    }

    #[test]
    fn read_start_intersection_identifies_prefixes() {
        let (text, starts) = demo();
        let fm = FmIndex::build(&text, &starts);
        let iv = fm.find(&[2, 3, 4]); // ACG is a prefix of both reads
        assert_eq!(fm.count_read_starts(iv), 2);
        let mut ids = Vec::new();
        fm.read_starts_into(iv, &mut ids);
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);

        let iv = fm.find(&[3, 4]); // CG occurs but never as a prefix
        assert!(iv.len() >= 2);
        assert_eq!(fm.count_read_starts(iv), 0);
    }

    #[test]
    fn extend_left_is_incremental_find() {
        let (text, starts) = demo();
        let fm = FmIndex::build(&text, &starts);
        let pattern = [2u8, 3, 4, 5];
        let mut iv = fm.whole();
        for &ch in pattern.iter().rev() {
            iv = fm.extend_left(iv, ch);
        }
        assert_eq!(iv, fm.find(&pattern));
    }

    #[test]
    fn empty_interval_stays_empty_under_extension() {
        let (text, starts) = demo();
        let fm = FmIndex::build(&text, &starts);
        let iv = fm.find(&[5, 5, 5]);
        assert!(iv.is_empty());
        assert!(fm.extend_left(iv, 2).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn count_matches_naive_substring_count(
            mut text in prop::collection::vec(2u8..6, 1..200),
            pattern in prop::collection::vec(2u8..6, 1..6),
        ) {
            text.push(0);
            let starts = vec![None; text.len()];
            let fm = FmIndex::build(&text, &starts);
            let naive = text
                .windows(pattern.len())
                .filter(|w| *w == &pattern[..])
                .count() as u32;
            prop_assert_eq!(fm.find(&pattern).len(), naive);
        }
    }
}
