//! # sga — the baseline string-graph assembler
//!
//! The paper's Table VI compares LaSAGNA against **SGA** (Simpson & Durbin
//! 2012), "the only string graph-based assembler that can handle large
//! datasets on a single node", restricted to its *preprocess*, *index*, and
//! *overlap* phases with the ropebwt index. This crate implements those
//! three phases:
//!
//! * **preprocess** — stage reads and their reverse complements;
//! * **index** — build a BWT/FM-index over the concatenated read set via a
//!   suffix array (SA-IS, linear time);
//! * **overlap** — for every read, one incremental backward search extends
//!   its suffix leftward; at every length ≥ l_min the FM-interval is
//!   intersected with read-start positions to produce exact suffix-prefix
//!   overlap candidates, which feed the same greedy graph LaSAGNA builds.
//!
//! Memory accounting: real SGA's selling point is its compressed index
//! (~0.4 B/base with ropebwt); our baseline keeps plain arrays for clarity
//! and *bills* the host budget at SGA's compressed rate instead, so the
//! scaled Table VI reproduces the paper's 64 GB OOM for H.Genome while the
//! 128 GB run fits (see DESIGN.md, substitutions).

pub mod baseline;
pub mod fm;
pub mod overlap;
pub mod suffix;

pub use baseline::{SgaBaseline, SgaError, SgaReport};
pub use fm::FmIndex;
pub use suffix::suffix_array;
