//! The TCP server: accept loop, per-connection handlers, admission
//! gates, chaos failpoints, and graceful drain.
//!
//! One OS thread per connection keeps the control flow obvious and the
//! blocking story honest: every blocking point is a socket read/write
//! with an explicit timeout, or a [`qserve::BatchHandle::wait`] whose
//! duration is bounded by the worker pool actually finishing the chunk.
//! The serving tier is expected to hold tens of connections (assembler
//! nodes), not tens of thousands, so threads are the right cost point.
//!
//! A query passes four gates, in order, before it reaches a worker:
//!
//! 1. **drain** — a draining server admits nothing new
//!    ([`proto::Response::Draining`](crate::proto::Response::Draining));
//! 2. **deadline** — a spent budget is shed (`qnet.deadline_shed`)
//!    without debiting the client's fairness bucket, since no work was
//!    done on its behalf;
//! 3. **fairness** — the per-client token bucket
//!    ([`qserve::FairAdmission`]), charged one token per read;
//! 4. **queue depth** — [`qserve::QueryService::submit`]'s shared gate.
//!
//! Gates 3 and 4 both answer `Overloaded` with a `retry_after_ms` hint:
//! fairness hints from the bucket's own refill math, queue hints from a
//! live EWMA of the worker pool's drain rate ([`DrainRate`]).
//!
//! Connections are **pipelined**: the read loop hands each admitted
//! query to a responder thread and immediately reads the next frame, so
//! one connection can have many requests in flight, each answered by a
//! frame matched to its `request_id` (responses may arrive out of
//! order). Gate-exempt requests (`Ping`, `Stats`, `Reload`, …) are
//! still answered inline from the read loop — they never queue behind a
//! slow batch on the same connection.
//!
//! [`Request::Reload`] hot-swaps the serving store/index generation via
//! [`QueryService::reload_from`] with zero shed: admission never
//! pauses, in-flight batches finish on the generation that admitted
//! them, and any failure rolls back loudly
//! ([`Response::ReloadFailed`]) while the old generation keeps serving.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::proto::{
    ClientStats, LatencySummary, PongStatus, Request, Response, ShedScope, StatsSnapshot,
    STATS_VERSION,
};
use obs::{Histogram, LiveRollup, Recorder, SpanGuard};
use qserve::{FairAdmission, FairShed, QserveError, QueryService};

/// Window size of the server's live telemetry ring.
const STATS_WINDOW: Duration = Duration::from_secs(1);
/// Windows retained — one minute of 1 s windows.
const STATS_WINDOWS: usize = 60;

/// Tuning for [`Server`]. The defaults suit an interactive serving tier;
/// tests shrink the timeouts to keep chaos runs fast.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Per-connection socket read timeout; an idle or stalled peer is
    /// evicted after this long without a complete frame.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How long [`Server::shutdown`] waits for in-flight requests to
    /// finish before force-closing their connections.
    pub drain_deadline: Duration,
    /// Per-client fair-admission tuning (tokens are reads).
    pub admission: qserve::AdmissionConfig,
    /// How long the `qnet.frame.stall` failpoint holds a response
    /// before dropping the connection.
    pub stall_ms: u64,
    /// Shared secret for request authentication. When set, every
    /// [`Request::Query`]/[`Request::ShardQuery`] must carry the
    /// keyed-FNV tag ([`crate::proto::auth_tag`]) binding its
    /// `client_id` (and the rest of the request) to this secret, to the
    /// per-connection nonce from the [`Request::AuthHello`] handshake,
    /// and to a strictly-increasing per-connection sequence number —
    /// so a captured authed frame replayed byte-exactly is rejected.
    /// Mismatches are rejected with a typed [`Response::AuthFailed`]
    /// *before* any gate charges the claimed client's fairness tokens.
    /// `None` (the default) accepts every tag.
    pub auth_secret: Option<String>,
    /// Where [`Request::Reload`] loads store/index generations from.
    /// `None` (the default) answers every reload with a typed
    /// [`Response::ReloadFailed`].
    pub reload: Option<ReloadConfig>,
}

/// Source of truth for [`Request::Reload`]: the work directory whose
/// `generations.json` names the admissible store/index generations.
#[derive(Debug, Clone)]
pub struct ReloadConfig {
    /// Directory holding `generations.json` and the generation
    /// store/index files (typically the assembly work dir).
    pub work_dir: std::path::PathBuf,
    /// Serve a shard slice instead of the full index: `(shard,
    /// n_shards, index config)` rebuilds this shard's postings from the
    /// freshly loaded store — shard replicas have no per-shard index
    /// file on disk, so a reload rebuilds its slice exactly like the
    /// initial boot did.
    pub shard: Option<(u32, u32, qserve::IndexConfig)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            admission: qserve::AdmissionConfig::default(),
            stall_ms: 50,
            auth_secret: None,
            reload: None,
        }
    }
}

/// What [`Server::shutdown`] observed while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests that were in flight when the drain began.
    pub inflight_at_start: u64,
    /// True when every in-flight request finished (and wrote its
    /// response) inside the drain deadline; false when stragglers were
    /// force-closed.
    pub completed: bool,
    /// Reads belonging to in-flight requests that were still unanswered
    /// at the drain deadline. Each such straggler got a best-effort
    /// typed [`Response::Draining`] frame for its `request_id` before
    /// its socket was cut, and was counted under the
    /// `qnet.drain.force_closed` trace counter.
    pub force_closed: u64,
}

/// Live estimate of the worker pool's throughput, fed by the odometer
/// [`QueryService::drained_reads`] at each batch completion. Powers the
/// `retry_after_ms` hint on queue-depth sheds: a client told "the queue
/// is full" is also told roughly when the backlog will have drained.
struct DrainRate {
    last_total: u64,
    last_s: f64,
    ewma_reads_per_s: f64,
    primed: bool,
    /// True once the EWMA holds a real estimate. Seeding used to key on
    /// `ewma_reads_per_s == 0.0`, which mistook a genuinely idle window
    /// (instantaneous rate 0) for "never measured" and let the next
    /// burst overwrite the average instead of blending into it.
    seeded: bool,
}

impl DrainRate {
    fn new() -> Self {
        DrainRate {
            last_total: 0,
            last_s: 0.0,
            ewma_reads_per_s: 0.0,
            primed: false,
            seeded: false,
        }
    }

    fn observe(&mut self, now_s: f64, total_reads: u64) {
        if !self.primed {
            self.primed = true;
            self.last_total = total_reads;
            self.last_s = now_s;
            return;
        }
        let dt = now_s - self.last_s;
        // Sub-millisecond gaps produce wild instantaneous rates; fold
        // them into the next observation instead.
        if dt < 1e-3 {
            return;
        }
        let inst = total_reads.saturating_sub(self.last_total) as f64 / dt;
        self.ewma_reads_per_s = if self.seeded {
            0.3 * inst + 0.7 * self.ewma_reads_per_s
        } else {
            inst
        };
        self.seeded = true;
        self.last_total = total_reads;
        self.last_s = now_s;
    }

    /// Milliseconds until `backlog_reads` drain at the estimated rate,
    /// clamped to [10, 5000]. An empty backlog needs no wait at all and
    /// returns 0; before any estimate exists, a flat 100 ms.
    fn retry_hint_ms(&self, backlog_reads: u64) -> u32 {
        if backlog_reads == 0 {
            return 0;
        }
        if !self.seeded || self.ewma_reads_per_s < 1.0 {
            return 100;
        }
        let ms = (backlog_reads as f64 / self.ewma_reads_per_s * 1000.0).ceil();
        ms.clamp(10.0, 5000.0) as u32
    }
}

/// Per-client gate outcomes, counted in reads. Incremented at exactly
/// the same points as the `qnet.*` trace counters, so a live
/// [`StatsSnapshot`] agrees with a post-hoc [`obs::Rollup`] of the same
/// run — and keeps counting even when the recorder is disabled.
#[derive(Debug, Clone, Copy, Default)]
struct ClientTotals {
    accepted: u64,
    rejected: u64,
    deadline_shed: u64,
    fairness_shed: u64,
}

/// The write side of one accepted connection, shared between its read
/// loop, its responder threads, and [`Server::shutdown`]. All response
/// frames go through the mutex, so frames never interleave mid-write,
/// and "the responder delivered the answer" and "the drain force-closed
/// the straggler with a typed frame" are mutually exclusive by
/// construction — a client can never receive both (or neither plus a
/// silent close) for one admitted `request_id`.
struct ConnShared {
    write: Mutex<ConnWrite>,
    /// Responder threads spawned for admitted (pipelined) requests on
    /// this connection, plus their scheduler task ids (model checking
    /// only); joined when the connection's read loop ends.
    responders: Mutex<Vec<(JoinHandle<()>, Option<faultsim::sched::TaskId>)>>,
}

struct ConnWrite {
    sock: TcpStream,
    /// Admitted requests awaiting their responses on this connection,
    /// `request_id → n_reads`. An entry is inserted at admission (gate 4
    /// passed) and removed by whichever side answers: the responder's
    /// write, or the drain's typed force-close. Pipelining means many
    /// entries can be pending at once.
    inflight: BTreeMap<u64, u64>,
    /// Set by the drain force-close (or response-path chaos); the
    /// handler stops writing (and reading) once its socket has been cut.
    closed: bool,
}

impl ConnShared {
    /// Write one frame that answers no admitted request (probes, sheds,
    /// reload outcomes): in-flight markers are untouched. Returns false
    /// when the connection is no longer writable.
    fn write_frame(&self, frame: &[u8]) -> bool {
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if w.closed {
            return false;
        }
        w.sock.write_all(frame).is_ok() && w.sock.flush().is_ok()
    }

    /// Write the response frame for admitted request `request_id`,
    /// clearing its in-flight marker. The write is skipped when the
    /// drain sweep already answered this id with a typed `Draining`
    /// (the marker is gone) or the socket was cut — exactly one frame
    /// per admitted request ever reaches the wire.
    fn write_response_for(&self, request_id: u64, frame: &[u8]) -> bool {
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let pending = w.inflight.remove(&request_id).is_some();
        if w.closed || !pending {
            return false;
        }
        w.sock.write_all(frame).is_ok() && w.sock.flush().is_ok()
    }

    /// Cut the socket (response-path chaos or a fatal write error). The
    /// marker for `request_id`, when given, is cleared first: the
    /// request died with its connection and must not be misattributed
    /// as a live drain straggler.
    fn close(&self, request_id: Option<u64>) {
        let mut w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(rid) = request_id {
            w.inflight.remove(&rid);
        }
        w.closed = true;
        let _ = w.sock.shutdown(Shutdown::Both);
    }

    /// Join every responder this connection spawned. Called by the read
    /// loop after it exits, and idempotent (joining drains the list).
    fn join_responders(&self) {
        let responders =
            std::mem::take(&mut *self.responders.lock().unwrap_or_else(|e| e.into_inner()));
        for (h, task) in responders {
            if let Some(id) = task {
                faultsim::sched::wait_until("qnet.resp.join", &mut || {
                    faultsim::sched::task_finished(id)
                });
            }
            let _ = h.join();
        }
    }
}

struct Inner {
    service: QueryService,
    admission: FairAdmission,
    rec: Recorder,
    /// Windowed telemetry teed off the recorder's sink path; the source
    /// of the latency percentiles in [`StatsSnapshot`].
    live: LiveRollup,
    faults: faultsim::Faults,
    cfg: ServerConfig,
    /// Disk accounting for generation reloads ([`Request::Reload`]).
    reload_io: gstream::IoStats,
    server_span: u64,
    /// Monotonic epoch for admission/drain-rate clocks and uptime.
    epoch: Instant,
    /// Set once a drain begins; gates both accept and query admission.
    draining: AtomicBool,
    /// Admitted requests whose response has not yet been written.
    inflight: AtomicU64,
    /// Reads force-closed at the drain deadline (see
    /// [`DrainReport::force_closed`]).
    force_closed: AtomicU64,
    /// Write sides of every accepted connection, for the drain's typed
    /// force-close sweep.
    conns: Mutex<Vec<Arc<ConnShared>>>,
    /// Handler threads plus their scheduler task ids (model checking
    /// only) so a drain under `schedcheck` can park while joining.
    handlers: Mutex<Vec<(JoinHandle<()>, Option<faultsim::sched::TaskId>)>>,
    conn_seq: AtomicU64,
    /// Signalled when a peer sends [`Request::Shutdown`].
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    drain_rate: Mutex<DrainRate>,
    client_totals: Mutex<BTreeMap<String, ClientTotals>>,
}

impl Inner {
    fn now_s(&self) -> f64 {
        // Under a model-checking scheduler, admission and drain-rate
        // clocks follow virtual time so token refill is a function of
        // the explored schedule, not the host.
        match faultsim::sched::virtual_now_ms() {
            Some(ms) => ms as f64 / 1000.0,
            None => self.epoch.elapsed().as_secs_f64(),
        }
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn charge_client(&self, client_id: &str, apply: impl FnOnce(&mut ClientTotals)) {
        let mut totals = self.client_totals.lock().unwrap_or_else(|e| e.into_inner());
        apply(totals.entry(client_id.to_string()).or_default());
    }

    fn drain_ewma(&self) -> f64 {
        let dr = self.drain_rate.lock().unwrap_or_else(|e| e.into_inner());
        if dr.seeded {
            dr.ewma_reads_per_s
        } else {
            0.0
        }
    }

    /// Assemble the versioned [`StatsSnapshot`] answered to
    /// [`Request::Stats`]. Gate counters come from [`ClientTotals`] (so
    /// they are exact even with a disabled recorder); latency summaries
    /// come from the live rollup's cumulative histograms.
    fn stats_snapshot(&self) -> StatsSnapshot {
        let totals = self.live.totals();
        let now_s = self.now_s();
        let fair: BTreeMap<String, (f64, f64)> = self
            .admission
            .snapshot(now_s)
            .into_iter()
            .map(|(client, tokens, weight)| (client, (tokens, weight)))
            .collect();
        let per_client = self
            .client_totals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut ids: BTreeSet<String> = per_client.keys().cloned().collect();
        ids.extend(fair.keys().cloned());
        let burst = self.cfg.admission.burst;
        let clients: Vec<ClientStats> = ids
            .into_iter()
            .map(|id| {
                let t = per_client.get(&id).copied().unwrap_or_default();
                // A client can be shed at the deadline gate without ever
                // touching fairness; its bucket is then still virgin —
                // report the full burst it would start with.
                let (tokens, weight) = fair.get(&id).copied().unwrap_or((burst, 1.0));
                ClientStats {
                    client_id: id,
                    accepted: t.accepted,
                    rejected: t.rejected,
                    deadline_shed: t.deadline_shed,
                    fairness_shed: t.fairness_shed,
                    tokens,
                    weight,
                }
            })
            .collect();
        let sum = |pick: fn(&ClientStats) -> u64| clients.iter().map(pick).sum();
        let latency: Vec<LatencySummary> = totals
            .hists
            .iter()
            .map(|(name, h)| LatencySummary::from_hist(name, h))
            .collect();
        let gens = self.service.generation_stats();
        StatsSnapshot {
            version: STATS_VERSION,
            uptime_ms: self.epoch.elapsed().as_millis() as u64,
            draining: self.is_draining(),
            inflight: self.inflight.load(Ordering::SeqCst),
            queue_depth: self.service.queue_depth() as u64,
            drained_reads: self.service.drained_reads(),
            drain_ewma_reads_per_s: self.drain_ewma(),
            accepted: sum(|c| c.accepted),
            rejected: sum(|c| c.rejected),
            deadline_shed: sum(|c| c.deadline_shed),
            fairness_shed: sum(|c| c.fairness_shed),
            force_closed: self.force_closed.load(Ordering::SeqCst),
            generation: gens.active,
            reloads: gens.reloads,
            rollbacks: gens.rollbacks,
            clients,
            latency,
        }
    }
}

/// Per-connection replay-protection state. The nonce is dealt by the
/// [`Request::AuthHello`] handshake; `last_seq` is the highest sequence
/// number a *successfully verified* query carried. Both die with the
/// connection, so a reconnecting client simply re-handshakes.
struct ConnAuth {
    nonce: Option<u64>,
    last_seq: u64,
}

/// Which query shape gate 4 admits: a placement query answered with
/// [`Response::Hits`], or a shard query answered with the full voted
/// candidate set ([`Response::ShardCandidates`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum QueryKind {
    Hits,
    Candidates,
}

/// An admitted batch's ticket, matching its [`QueryKind`].
enum Admitted {
    Hits(qserve::BatchHandle),
    Candidates(qserve::CandidateBatchHandle),
}

/// Decrements the in-flight count when dropped, so every exit path from
/// an admitted request — response written, write failed, chaos drop —
/// releases its drain obligation exactly once.
struct InflightGuard {
    inner: Arc<Inner>,
}

impl InflightGuard {
    fn new(inner: &Arc<Inner>) -> InflightGuard {
        faultsim::sched::point("qnet.inflight.enter");
        inner.inflight.fetch_add(1, Ordering::SeqCst);
        InflightGuard {
            inner: Arc::clone(inner),
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        faultsim::sched::point("qnet.inflight.exit");
        self.inner.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running query server bound to a TCP port.
///
/// Owns the [`QueryService`] worker pool for its lifetime. Dropping the
/// server performs a full graceful drain (bounded by
/// [`ServerConfig::drain_deadline`]); call [`Server::shutdown`] directly
/// to observe the [`DrainReport`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    /// Scheduler task id of the accept loop (model checking only).
    accept_task: Option<faultsim::sched::TaskId>,
    /// Keeps the `qnet.server` span open until shutdown.
    span: Option<SpanGuard>,
    report: Option<DrainReport>,
}

impl Server {
    /// Bind `cfg.addr` and start serving `service`. Accepted
    /// connections are handled on dedicated threads; traces land under
    /// a `qnet.server` span parented on `rec`'s current span.
    pub fn start(
        service: QueryService,
        cfg: ServerConfig,
        rec: &Recorder,
        faults: faultsim::Faults,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let span = rec.child_span(
            match rec.current() {
                0 => None,
                id => Some(id),
            },
            "qnet.server",
        );
        // Tee every event this recorder sees into a windowed live
        // aggregate; `Stats` percentiles are read from here without
        // touching the trace buffer.
        let live = LiveRollup::new(STATS_WINDOW, STATS_WINDOWS);
        rec.add_sink(Box::new(live.clone()));
        let inner = Arc::new(Inner {
            admission: FairAdmission::new(cfg.admission),
            service,
            rec: rec.clone(),
            live,
            faults,
            cfg,
            reload_io: gstream::IoStats::new(gstream::DiskModel::ssd()),
            server_span: span.id(),
            epoch: Instant::now(),
            draining: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            force_closed: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            conn_seq: AtomicU64::new(0),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            drain_rate: Mutex::new(DrainRate::new()),
            client_totals: Mutex::new(BTreeMap::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let token = faultsim::sched::announce("qnet.accept");
        let accept_task = token.as_ref().map(|t| t.id());
        let accept = std::thread::spawn(move || {
            let _task = faultsim::sched::begin(token);
            accept_loop(accept_inner, listener)
        });
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
            accept_task,
            span: Some(span),
            report: None,
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fair-admission gate, for weight configuration
    /// ([`FairAdmission::set_weight`]).
    pub fn admission(&self) -> &FairAdmission {
        &self.inner.admission
    }

    /// The underlying query service.
    pub fn service(&self) -> &QueryService {
        &self.inner.service
    }

    /// True once a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.is_draining()
    }

    /// The same [`StatsSnapshot`] a wire [`Request::Stats`] would
    /// receive, read in-process. `schedcheck` and tests use this to
    /// compare the server's own accounting against post-hoc trace
    /// roll-ups and observed client outcomes after a drain, when no
    /// connection is left to ask over the wire.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }

    /// Block until a peer asks for shutdown over the wire
    /// ([`Request::Shutdown`]) or `timeout` elapses. Returns true when
    /// shutdown was requested. The caller still decides whether to
    /// [`Server::shutdown`].
    pub fn wait_shutdown_requested(&self, timeout: Option<Duration>) -> bool {
        let guard = self
            .inner
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match timeout {
            None => {
                let mut g = guard;
                while !*g {
                    g = self
                        .inner
                        .shutdown_cv
                        .wait(g)
                        .unwrap_or_else(|e| e.into_inner());
                }
                true
            }
            Some(t) => {
                let deadline = Instant::now() + t;
                let mut g = guard;
                while !*g {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return false;
                    }
                    let (g2, _) = self
                        .inner
                        .shutdown_cv
                        .wait_timeout(g, left)
                        .unwrap_or_else(|e| e.into_inner());
                    g = g2;
                }
                true
            }
        }
    }

    /// Gracefully drain and stop: stop accepting, answer new queries
    /// with `Draining`, wait for in-flight requests (bounded by
    /// [`ServerConfig::drain_deadline`]), then force-close whatever is
    /// left. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) -> DrainReport {
        if let Some(r) = self.report {
            return r;
        }
        self.inner.draining.store(true, Ordering::SeqCst);
        faultsim::sched::point("qnet.drain.set");
        let inflight_at_start = self.inner.inflight.load(Ordering::SeqCst);
        self.inner.rec.gauge_on(
            self.inner.server_span,
            "qnet.drain.inflight",
            inflight_at_start,
        );

        // Unblock the accept loop with a throwaway connection; it sees
        // the draining flag and exits, dropping the listener.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            if let Some(id) = self.accept_task.take() {
                faultsim::sched::wait_until("qnet.accept.join", &mut || {
                    faultsim::sched::task_finished(id)
                });
            }
            let _ = h.join();
        }

        // Wait for in-flight requests, bounded by the drain deadline —
        // virtual time under a model-checking scheduler (the deadline
        // "passing" is then an explored schedule choice), wall time
        // otherwise.
        let mut completed = true;
        if faultsim::sched::active() {
            let wake = faultsim::sched::virtual_now_ms().unwrap_or(0)
                + self.inner.cfg.drain_deadline.as_millis() as u64;
            let inner = &self.inner;
            faultsim::sched::wait_until_deadline("qnet.drain.deadline", wake, &mut || {
                inner.inflight.load(Ordering::SeqCst) == 0
                    || faultsim::sched::virtual_now_ms().unwrap_or(u64::MAX) >= wake
            });
            completed = self.inner.inflight.load(Ordering::SeqCst) == 0;
        } else {
            let deadline = Instant::now() + self.inner.cfg.drain_deadline;
            while self.inner.inflight.load(Ordering::SeqCst) > 0 {
                if Instant::now() >= deadline {
                    completed = false;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        if !completed {
            self.inner
                .rec
                .counter_on(self.inner.server_span, "qnet.drain.forced", 1);
        }

        // Force-close every connection. Each straggler (admitted request
        // still unanswered — a pipelined connection can hold several)
        // first gets a best-effort typed `Draining` frame for its
        // request_id — never a silent close — and is counted under
        // `qnet.drain.force_closed`. The write mutex makes this atomic
        // against a responder delivering the real answer: exactly one of
        // the two frames reaches the wire per request. Idle handlers
        // parked in `read_frame` wake with an error immediately instead
        // of waiting out their read timeout.
        faultsim::sched::point("qnet.drain.force_close");
        let mut force_closed = 0u64;
        for conn in self
            .inner
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let mut w = conn.write.lock().unwrap_or_else(|e| e.into_inner());
            for (request_id, n_reads) in std::mem::take(&mut w.inflight) {
                let body = crate::proto::Response::Draining { request_id }.encode();
                let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
                if gstream::write_frame(&mut frame, &body).is_ok() {
                    let _ = w.sock.write_all(&frame);
                    let _ = w.sock.flush();
                }
                force_closed += n_reads;
            }
            w.closed = true;
            let _ = w.sock.shutdown(Shutdown::Both);
        }
        if force_closed > 0 {
            self.inner
                .force_closed
                .fetch_add(force_closed, Ordering::SeqCst);
            self.inner.rec.counter_on(
                self.inner.server_span,
                "qnet.drain.force_closed",
                force_closed,
            );
        }
        let handlers = std::mem::take(
            &mut *self
                .inner
                .handlers
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for (h, task) in handlers {
            if let Some(id) = task {
                faultsim::sched::wait_until("qnet.conn.join", &mut || {
                    faultsim::sched::task_finished(id)
                });
            }
            let _ = h.join();
        }

        drop(self.span.take());
        let report = DrainReport {
            inflight_at_start,
            // A request can slip past the in-flight wait (admitted in
            // the marker-to-counter window) and still be swept; the
            // sweep's count is authoritative for "everyone answered".
            completed: completed && force_closed == 0,
            force_closed,
        };
        self.report = Some(report);
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    let checked = faultsim::sched::active();
    if checked {
        // Model-checked accept: poll a non-blocking listener from a
        // schedule point instead of blocking in `accept`, so "a
        // connection arrived" is an explorable step and "drain began"
        // wakes the loop without a real connection.
        let _ = listener.set_nonblocking(true);
    }
    loop {
        let (sock, peer) = if checked {
            let mut slot: Option<(TcpStream, SocketAddr)> = None;
            {
                let inner = &inner;
                let listener = &listener;
                let slot = &mut slot;
                faultsim::sched::wait_until("qnet.accept.wait", &mut || {
                    if inner.is_draining() {
                        return true;
                    }
                    match listener.accept() {
                        Ok(pair) => {
                            *slot = Some(pair);
                            true
                        }
                        Err(_) => false,
                    }
                });
            }
            match slot {
                Some(pair) => pair,
                None => break, // draining with nothing pending
            }
        } else {
            match listener.accept() {
                Ok(pair) => pair,
                Err(_) => {
                    if inner.is_draining() {
                        break;
                    }
                    continue;
                }
            }
        };
        if inner.is_draining() {
            break;
        }
        if inner.faults.hit(faultsim::QNET_ACCEPT).is_err() {
            // Chaos: the connection vanishes before the handshake. The
            // client sees EOF on its first read and retries.
            inner
                .rec
                .counter_on(inner.server_span, "qnet.accept.dropped", 1);
            continue;
        }
        if checked {
            // The accepted socket inherited the listener's non-blocking
            // flag on some platforms; the handler expects blocking I/O.
            let _ = sock.set_nonblocking(false);
        }
        let _ = sock.set_read_timeout(Some(inner.cfg.read_timeout));
        let _ = sock.set_write_timeout(Some(inner.cfg.write_timeout));
        let _ = sock.set_nodelay(true);
        let Ok(write_half) = sock.try_clone() else {
            continue;
        };
        let conn = Arc::new(ConnShared {
            write: Mutex::new(ConnWrite {
                sock: write_half,
                inflight: BTreeMap::new(),
                closed: false,
            }),
            responders: Mutex::new(Vec::new()),
        });
        inner
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&conn));
        let idx = inner.conn_seq.fetch_add(1, Ordering::Relaxed);
        let conn_inner = Arc::clone(&inner);
        let token = faultsim::sched::announce(&format!("qnet.conn{idx}"));
        let task = token.as_ref().map(|t| t.id());
        let handle = std::thread::spawn(move || {
            let _task = faultsim::sched::begin(token);
            handle_conn(conn_inner, sock, conn, peer, idx)
        });
        inner
            .handlers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((handle, task));
    }
}

/// True when a read on `sock` would not block: buffered bytes, a
/// pending frame, or EOF/error. Probes with a non-blocking `peek`, which
/// consumes nothing — safe as a scheduler re-poll predicate.
fn sock_readable(sock: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    let _ = sock.set_nonblocking(true);
    let r = sock.peek(&mut probe);
    let _ = sock.set_nonblocking(false);
    match r {
        Ok(_) => true, // data, or Ok(0) = orderly EOF
        Err(e) => e.kind() != std::io::ErrorKind::WouldBlock,
    }
}

fn handle_conn(
    inner: Arc<Inner>,
    sock: TcpStream,
    conn: Arc<ConnShared>,
    peer: SocketAddr,
    idx: u64,
) {
    let peer_s = peer.to_string();
    let conn_span = inner
        .rec
        .child_span(Some(inner.server_span), &format!("qnet.conn{idx}"));
    let conn_id = conn_span.id();
    // One `client:{id}` child span per client identity seen on this
    // connection; counters attributed there roll up under the conn span.
    let mut client_spans: HashMap<String, SpanGuard> = HashMap::new();
    let mut reader = BufReader::new(sock);
    let mut auth = ConnAuth {
        nonce: None,
        last_seq: 0,
    };

    loop {
        if faultsim::sched::active() {
            // Model-checked read: park until a frame (or EOF, or the
            // drain force-close) is observable, so "the request
            // arrived" is a schedule step instead of a blocking read.
            {
                let reader = &reader;
                faultsim::sched::wait_until("qnet.conn.read", &mut || {
                    !reader.buffer().is_empty() || sock_readable(reader.get_ref())
                });
            }
            if conn.write.lock().unwrap_or_else(|e| e.into_inner()).closed {
                break;
            }
        }
        let payload = match gstream::read_frame(&mut reader, &peer_s) {
            Ok(Some(p)) => p,
            // Clean close at a frame boundary, or the drain force-close.
            Ok(None) => break,
            Err(e) => {
                // Torn/corrupt frame or socket error: the stream can no
                // longer be trusted, so the connection dies with a
                // typed, peer-attributed error on the trace.
                if matches!(e, gstream::StreamError::Corrupt(_)) {
                    inner.rec.counter_on(conn_id, "qnet.corrupt", 1);
                }
                break;
            }
        };
        let req = match Request::decode(&payload, &peer_s) {
            Ok(r) => r,
            Err(_) => {
                inner.rec.counter_on(conn_id, "qnet.corrupt", 1);
                break;
            }
        };
        let resp = match req {
            Request::Ping => Some(Response::Pong {
                ready: !inner.is_draining(),
                draining: inner.is_draining(),
            }),
            // Health and telemetry probes bypass every admission gate,
            // like `Ping`: a draining or overloaded server must still
            // answer "how are you doing".
            Request::PingV2 => Some(Response::PongV2(PongStatus {
                ready: !inner.is_draining(),
                draining: inner.is_draining(),
                queue_depth: inner.service.queue_depth() as u64,
                drain_ewma_reads_per_s: inner.drain_ewma(),
                generation: inner.service.active_generation(),
            })),
            Request::Stats => {
                faultsim::sched::point("qnet.stats.snapshot");
                Some(Response::Stats(inner.stats_snapshot()))
            }
            Request::Shutdown => {
                let mut g = inner
                    .shutdown_requested
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                *g = true;
                inner.shutdown_cv.notify_all();
                drop(g);
                Some(Response::ShutdownAck)
            }
            // Gate-exempt like `Stats`: a saturated or draining server
            // must still let an operator roll it to a new generation.
            // Failure is loud and typed — never a hang, never a shed.
            Request::Reload {
                request_id,
                generation,
            } => Some(handle_reload(&inner, request_id, generation)),
            Request::AuthHello => {
                // Deal a fresh nonce for this connection. Servers
                // without a secret answer `0` (authed verification is
                // off, so there is nothing to pin) but still reply, so
                // a client configured with a secret against an open
                // server completes its handshake and proceeds.
                let nonce = if inner.cfg.auth_secret.is_some() {
                    fresh_nonce(idx)
                } else {
                    0
                };
                if nonce != 0 {
                    auth.nonce = Some(nonce);
                    auth.last_seq = 0;
                }
                Some(Response::AuthNonce { nonce })
            }
            Request::Query {
                request_id,
                deadline_ms,
                client_id,
                reads,
                auth_seq,
                auth_tag,
                generation,
            } => handle_query(
                &inner,
                &conn,
                conn_id,
                &mut client_spans,
                QueryKind::Hits,
                request_id,
                deadline_ms,
                &client_id,
                reads,
                auth_seq,
                auth_tag,
                generation,
                &mut auth,
                idx,
            ),
            Request::ShardQuery {
                request_id,
                deadline_ms,
                client_id,
                reads,
                auth_seq,
                auth_tag,
                generation,
            } => handle_query(
                &inner,
                &conn,
                conn_id,
                &mut client_spans,
                QueryKind::Candidates,
                request_id,
                deadline_ms,
                &client_id,
                reads,
                auth_seq,
                auth_tag,
                generation,
                &mut auth,
                idx,
            ),
        };
        // None: the query was admitted and handed to a responder thread
        // — read the next frame immediately (pipelining). The responder
        // answers through the same write mutex, matched by request_id.
        let Some(resp) = resp else {
            continue;
        };

        // Chaos failpoints on the response path. `qnet.conn.drop` models
        // a connection that dies after the work was done — the worst
        // case for the client, whose retry must still land on the same
        // answer. `qnet.frame.stall` holds the response long enough for
        // the client's read timeout to fire, then drops the connection.
        // `qnet.frame.write` tears the frame mid-payload so the client
        // exercises its checksum path.
        if inner.faults.hit(faultsim::QNET_CONN_DROP).is_err() {
            inner.rec.counter_on(conn_id, "qnet.conn.dropped", 1);
            break;
        }
        if inner.faults.hit(faultsim::QNET_FRAME_STALL).is_err() {
            inner.rec.counter_on(conn_id, "qnet.frame.stalled", 1);
            std::thread::sleep(Duration::from_millis(inner.cfg.stall_ms));
            break;
        }
        let body = resp.encode();
        if inner.faults.hit(faultsim::QNET_FRAME_WRITE).is_err() {
            inner.rec.counter_on(conn_id, "qnet.frame.torn", 1);
            let torn = torn_frame(&body);
            let w = conn.write.lock().unwrap_or_else(|e| e.into_inner());
            if !w.closed {
                let mut sock = &w.sock;
                let _ = sock.write_all(&torn);
                let _ = sock.flush();
            }
            break;
        }
        let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
        if gstream::write_frame(&mut frame, &body).is_err() {
            break;
        }
        if !conn.write_frame(&frame) {
            break;
        }
    }

    // The read loop is done (clean close, chaos, corrupt stream, or a
    // failed write). Join the responders first so every admitted
    // request still in flight delivers (or skips) its answer through
    // the live socket, then cut the connection so the drain sweep does
    // not misattribute a dead request as a live straggler.
    conn.join_responders();
    let mut w = conn.write.lock().unwrap_or_else(|e| e.into_inner());
    w.inflight.clear();
    w.closed = true;
    let _ = w.sock.shutdown(Shutdown::Both);
}

/// Answer a gate-exempt [`Request::Reload`]: hot-swap the serving
/// generation via [`QueryService::reload_from`], with zero shed. Every
/// failure — no configured work dir, a stalled swap (the
/// `qnet.reload.stall` failpoint), a missing or checksum-mismatched
/// generation — is a loud, typed [`Response::ReloadFailed`] naming the
/// generation, and the previously active generation keeps serving
/// untouched.
fn handle_reload(inner: &Arc<Inner>, request_id: u64, generation: u64) -> Response {
    inner
        .rec
        .counter_on(inner.server_span, "qnet.reload.requested", 1);
    let failed = |inner: &Arc<Inner>, message: String| {
        inner
            .rec
            .counter_on(inner.server_span, "qnet.reload.failed", 1);
        Response::ReloadFailed {
            request_id,
            generation,
            message,
        }
    };
    let Some(rc) = inner.cfg.reload.clone() else {
        return failed(
            inner,
            "reload is not configured on this server (no work dir)".to_string(),
        );
    };
    // Chaos: the reload stalls mid-swap. The swap is abandoned before it
    // starts — serving continues on the old generation — and the client
    // gets a typed failure after the stall, never a hang.
    if inner.faults.hit(faultsim::QNET_RELOAD_STALL).is_err() {
        inner
            .rec
            .counter_on(inner.server_span, "qnet.reload.stalled", 1);
        if faultsim::sched::active() {
            faultsim::sched::point("qnet.reload.stall");
        } else {
            std::thread::sleep(Duration::from_millis(inner.cfg.stall_ms));
        }
        return failed(
            inner,
            format!(
                "reload of generation {generation} stalled and was abandoned; \
                 the active generation keeps serving"
            ),
        );
    }
    let target = if generation == 0 {
        None
    } else {
        Some(generation)
    };
    match inner.service.reload_from(
        &rc.work_dir,
        target,
        rc.shard,
        &inner.reload_io,
        &inner.faults,
    ) {
        Ok(id) => {
            inner.rec.counter_on(inner.server_span, "qnet.reload.ok", 1);
            Response::ReloadDone {
                request_id,
                generation: id,
            }
        }
        Err(e) => failed(inner, e.to_string()),
    }
}

/// A fresh per-connection auth nonce: wall-clock nanoseconds mixed with
/// the connection index through splitmix64. Never returns 0 (the wire
/// value meaning "no nonce"). Uniqueness, not unpredictability, is the
/// requirement — the nonce defeats cross-connection replay, and the
/// keyed tag it feeds is already only an integrity check.
fn fresh_nonce(conn_idx: u64) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9);
    let n = splitmix64(nanos ^ conn_idx.rotate_left(32));
    if n == 0 {
        1
    } else {
        n
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A frame cut off halfway through its payload: full header (so the
/// receiver commits to a length) plus the first half of the body.
fn torn_frame(body: &[u8]) -> Vec<u8> {
    let mut full = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
    gstream::write_frame(&mut full, body).expect("in-memory frame write");
    let keep = gstream::FRAME_HEADER_BYTES + body.len() / 2;
    full.truncate(keep);
    full
}

/// Run one query through the admission gates. A rejected query returns
/// its typed response for the read loop to write inline; an admitted
/// query is handed to a responder thread (pipelining — the read loop
/// moves straight to the next frame) and returns `None`. The responder
/// holds the [`InflightGuard`] until its response write finishes —
/// drain waits on it.
#[allow(clippy::too_many_arguments)]
fn handle_query(
    inner: &Arc<Inner>,
    conn: &Arc<ConnShared>,
    conn_id: u64,
    client_spans: &mut HashMap<String, SpanGuard>,
    kind: QueryKind,
    request_id: u64,
    deadline_ms: u32,
    client_id: &str,
    reads: Vec<genome::PackedSeq>,
    auth_seq: u64,
    auth_tag: u64,
    generation: u64,
    auth: &mut ConnAuth,
    idx: u64,
) -> Option<Response> {
    let received = Instant::now();
    let received_vms = faultsim::sched::virtual_now_ms();
    let n_reads = reads.len() as u64;
    let client_span = client_spans
        .entry(client_id.to_string())
        .or_insert_with(|| {
            inner
                .rec
                .child_span(Some(conn_id), &format!("client:{client_id}"))
        })
        .id();

    // Gate 0: authentication. A request whose tag does not bind its
    // claimed `client_id` to the shared secret is rejected before any
    // gate charges that client's fairness tokens — otherwise a forged
    // `client_id` could drain a victim's bucket. The tag must also bind
    // this connection's handshake nonce and a sequence number strictly
    // above the last verified one: a captured frame replayed
    // byte-exactly fails on the stale sequence (same connection) or the
    // missing/different nonce (fresh connection). Sequence gaps are
    // tolerated — a client whose send died mid-frame just keeps
    // counting — only going backwards or standing still is a replay.
    if let Some(secret) = &inner.cfg.auth_secret {
        let reject = |inner: &Arc<Inner>| {
            inner
                .rec
                .counter_on(client_span, "qnet.auth_failed", n_reads);
            Some(Response::AuthFailed { request_id })
        };
        let Some(nonce) = auth.nonce else {
            // No handshake on this connection: nothing pins the tag to
            // this connection, so a replayed capture would verify.
            return reject(inner);
        };
        if auth_seq <= auth.last_seq {
            return reject(inner);
        }
        let auth_kind = match kind {
            QueryKind::Hits => crate::proto::AUTH_KIND_QUERY,
            QueryKind::Candidates => crate::proto::AUTH_KIND_SHARD_QUERY,
        };
        let expect = crate::proto::auth_tag(
            secret,
            auth_kind,
            nonce,
            auth_seq,
            request_id,
            deadline_ms,
            client_id,
            &reads,
        );
        if auth_tag != expect {
            return reject(inner);
        }
        auth.last_seq = auth_seq;
    }

    // Gate 1: drain.
    faultsim::sched::point("qnet.gate.drain");
    if inner.is_draining() {
        inner.rec.counter_on(client_span, "qnet.rejected", n_reads);
        inner.charge_client(client_id, |t| t.rejected += n_reads);
        return Some(Response::Draining { request_id });
    }

    // Gate 2: deadline. A spent budget is shed before admission and
    // does not debit the fairness bucket — no work happened. Under a
    // model-checking scheduler the budget burns in virtual time, so
    // expiry is a schedule choice rather than a wall-clock accident.
    faultsim::sched::point("qnet.gate.deadline");
    let expired = match received_vms {
        Some(v0) => faultsim::sched::virtual_now_ms().unwrap_or(v0) >= v0 + u64::from(deadline_ms),
        None => Instant::now() >= received + Duration::from_millis(u64::from(deadline_ms)),
    };
    if expired {
        inner
            .rec
            .counter_on(client_span, "qnet.deadline_shed", n_reads);
        inner.charge_client(client_id, |t| t.deadline_shed += n_reads);
        return Some(Response::DeadlineExceeded { request_id });
    }

    // Gate 3: per-client fairness, one token per read.
    faultsim::sched::point("qnet.gate.fairness");
    if let Err(FairShed { wait_s }) = inner.admission.admit(client_id, n_reads, inner.now_s()) {
        inner
            .rec
            .counter_on(client_span, "qnet.fairness_shed", n_reads);
        inner.charge_client(client_id, |t| t.fairness_shed += n_reads);
        let adm = inner.cfg.admission;
        let deficit_reads = (wait_s * adm.refill_per_s).ceil() as u64;
        let retry_after_ms = ((wait_s * 1000.0).ceil()).clamp(10.0, 5000.0) as u32;
        return Some(Response::Overloaded {
            request_id,
            scope: ShedScope::Fairness,
            queued: deficit_reads,
            limit: adm.burst as u64,
            retry_after_ms,
        });
    }

    // Gate 4: shared queue depth. Both query kinds go through the same
    // service queue — shard queries obey the same backpressure, drain,
    // and accounting as placement queries. The generation pin rides
    // into admission: the batch binds to the pinned (or active)
    // generation here and answers from it even if a reload swaps the
    // active pointer while the batch is queued.
    faultsim::sched::point("qnet.gate.depth");
    let submitted = match kind {
        QueryKind::Hits => inner
            .service
            .submit_pinned(reads, generation)
            .map(Admitted::Hits),
        QueryKind::Candidates => inner
            .service
            .submit_candidates_pinned(reads, generation)
            .map(Admitted::Candidates),
    };
    match submitted {
        Err(QserveError::Overloaded {
            queued, max_queue, ..
        }) => {
            inner.rec.counter_on(client_span, "qnet.rejected", n_reads);
            inner.charge_client(client_id, |t| t.rejected += n_reads);
            let backlog_reads = queued as u64 * inner.service.config().batch_chunk.max(1) as u64;
            let retry_after_ms = inner
                .drain_rate
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .retry_hint_ms(backlog_reads + n_reads);
            Some(Response::Overloaded {
                request_id,
                scope: ShedScope::Queue,
                queued: queued as u64,
                limit: max_queue as u64,
                retry_after_ms,
            })
        }
        // A pin naming a generation that is not resident (or any other
        // service-side failure) is terminal for this request: the typed
        // message names the generation, and nothing was queued.
        Err(other) => Some(Response::Error {
            request_id,
            message: other.to_string(),
        }),
        Ok(handle) => {
            // Mark the admitted request on the connection's write side
            // *before* anything else can observe it: from here on, a
            // drain force-close that cuts this socket is obligated (by
            // the same mutex the response write takes) to first send a
            // typed `Draining` frame for exactly this request_id.
            let admitted_live = {
                let mut w = conn.write.lock().unwrap_or_else(|e| e.into_inner());
                if w.closed {
                    false
                } else {
                    w.inflight.insert(request_id, n_reads);
                    true
                }
            };
            if !admitted_live {
                // The drain swept this connection between the queue-depth
                // check and the marker: the chunks will still drain in
                // the worker pool, but the client already saw the socket
                // close. Count the reads as drain-rejected; the typed
                // response below is best-effort (the write is skipped on
                // a closed connection, so the client observes EOF).
                inner.rec.counter_on(client_span, "qnet.rejected", n_reads);
                inner.charge_client(client_id, |t| t.rejected += n_reads);
                return Some(Response::Draining { request_id });
            }
            let guard = InflightGuard::new(inner);
            spawn_responder(
                inner,
                conn,
                conn_id,
                client_span,
                client_id.to_string(),
                request_id,
                n_reads,
                received,
                handle,
                guard,
                idx,
            );
            None
        }
    }
}

/// Wait out one admitted batch on a dedicated thread and deliver its
/// response through the connection's write mutex, matched by
/// `request_id`. This is what makes a connection pipelined: the read
/// loop never blocks on a batch, so many can be in flight at once and
/// answer out of order. The responder owns the [`InflightGuard`] (drain
/// waits for the response write) and runs the same response-path chaos
/// failpoints the inline path does.
#[allow(clippy::too_many_arguments)]
fn spawn_responder(
    inner: &Arc<Inner>,
    conn: &Arc<ConnShared>,
    conn_id: u64,
    client_span: u64,
    client_id: String,
    request_id: u64,
    n_reads: u64,
    received: Instant,
    handle: Admitted,
    guard: InflightGuard,
    idx: u64,
) {
    let inner = Arc::clone(inner);
    let conn2 = Arc::clone(conn);
    let token = faultsim::sched::announce(&format!("qnet.conn{idx}.resp{request_id}"));
    let task = token.as_ref().map(|t| t.id());
    let thread = std::thread::spawn(move || {
        let _task = faultsim::sched::begin(token);
        let _guard = guard; // released when the response write finishes
        let admitted = Instant::now();
        let resp = match handle {
            Admitted::Hits(h) => Response::Hits {
                request_id,
                generation: h.generation(),
                hits: h.wait(),
            },
            Admitted::Candidates(h) => Response::ShardCandidates {
                request_id,
                generation: h.generation(),
                candidates: h.wait(),
            },
        };
        let done = Instant::now();
        inner
            .drain_rate
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(inner.now_s(), inner.service.drained_reads());
        inner.rec.counter_on(client_span, "qnet.accepted", n_reads);
        inner.charge_client(&client_id, |t| t.accepted += n_reads);
        if inner.rec.is_enabled() {
            // Front-end latency split, charged per read so the
            // histograms weight big batches accordingly: queue =
            // frame receipt → queue admission (the gates), exec =
            // worker-pool turnaround, total = receipt → hits ready.
            let queue_us = admitted.saturating_duration_since(received).as_micros() as u64;
            let exec_us = done.saturating_duration_since(admitted).as_micros() as u64;
            let total_us = done.saturating_duration_since(received).as_micros() as u64;
            for (name, us) in [
                ("qnet.latency.queue", queue_us),
                ("qnet.latency.exec", exec_us),
                ("qnet.latency.total", total_us),
            ] {
                let mut h = Histogram::new();
                h.record_n(us, n_reads);
                inner.rec.histogram_on(client_span, name, h);
            }
            inner.rec.gauge_on(
                inner.server_span,
                "qnet.drain.ewma_reads_per_s",
                inner.drain_ewma().round() as u64,
            );
        }
        // Response-path chaos, mirroring the inline path: a dropped or
        // stalled connection dies loudly and the client's retry lands
        // on the same (read-only) answer.
        if inner.faults.hit(faultsim::QNET_CONN_DROP).is_err() {
            inner.rec.counter_on(conn_id, "qnet.conn.dropped", 1);
            conn2.close(Some(request_id));
            return;
        }
        if inner.faults.hit(faultsim::QNET_FRAME_STALL).is_err() {
            inner.rec.counter_on(conn_id, "qnet.frame.stalled", 1);
            std::thread::sleep(Duration::from_millis(inner.cfg.stall_ms));
            conn2.close(Some(request_id));
            return;
        }
        let body = resp.encode();
        if inner.faults.hit(faultsim::QNET_FRAME_WRITE).is_err() {
            inner.rec.counter_on(conn_id, "qnet.frame.torn", 1);
            let torn = torn_frame(&body);
            let mut w = conn2.write.lock().unwrap_or_else(|e| e.into_inner());
            w.inflight.remove(&request_id);
            if !w.closed {
                let mut sock = &w.sock;
                let _ = sock.write_all(&torn);
                let _ = sock.flush();
            }
            w.closed = true;
            let _ = w.sock.shutdown(Shutdown::Both);
            return;
        }
        let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
        if gstream::write_frame(&mut frame, &body).is_err() {
            conn2.close(Some(request_id));
            return;
        }
        // A false return means the drain already answered this id with
        // a typed `Draining`, or the connection died — either way the
        // exactly-one-frame contract held.
        let _ = conn2.write_response_for(request_id, &frame);
    });
    conn.responders
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((thread, task));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_rate_estimates_and_clamps_retry_hints() {
        let mut dr = DrainRate::new();
        // Unprimed: flat default.
        assert_eq!(dr.retry_hint_ms(1_000_000), 100);
        dr.observe(0.0, 0);
        // 10k reads per second, observed over 10 steady seconds.
        for i in 1..=10u64 {
            dr.observe(i as f64, i * 10_000);
        }
        assert!(
            (dr.ewma_reads_per_s - 10_000.0).abs() < 1.0,
            "steady rate converges, got {}",
            dr.ewma_reads_per_s
        );
        // 5k backlog at 10k/s is 500 ms.
        assert_eq!(dr.retry_hint_ms(5_000), 500);
        // Clamps: tiny backlog floors at 10 ms, huge caps at 5000 ms.
        assert_eq!(dr.retry_hint_ms(1), 10);
        assert_eq!(dr.retry_hint_ms(1_000_000_000), 5000);
    }

    #[test]
    fn zero_backlog_means_zero_wait() {
        // Regression: the hint used to floor at 10 ms (or the unprimed
        // 100 ms) even with nothing queued, telling clients to back off
        // from an empty server.
        let mut dr = DrainRate::new();
        assert_eq!(dr.retry_hint_ms(0), 0, "unprimed, empty backlog");
        dr.observe(0.0, 0);
        for i in 1..=10u64 {
            dr.observe(i as f64, i * 10_000);
        }
        assert_eq!(dr.retry_hint_ms(0), 0, "steady rate, empty backlog");
    }

    #[test]
    fn idle_first_window_does_not_reset_ewma_seeding() {
        // Regression: seeding keyed on `ewma == 0.0`, so a first
        // measured window that was genuinely idle (instantaneous rate
        // 0) left the estimator "unseeded" and the next burst
        // overwrote the average instead of blending into it.
        let mut dr = DrainRate::new();
        dr.observe(0.0, 0);
        dr.observe(1.0, 0); // idle second seeds the EWMA at 0/s
        assert_eq!(dr.ewma_reads_per_s, 0.0);
        dr.observe(2.0, 100_000); // burst: inst = 100k/s
        let blended = 0.3 * 100_000.0;
        assert!(
            (dr.ewma_reads_per_s - blended).abs() < 1.0,
            "burst blends instead of re-seeding: {}",
            dr.ewma_reads_per_s
        );
    }

    #[test]
    fn drain_rate_ignores_sub_millisecond_gaps() {
        let mut dr = DrainRate::new();
        dr.observe(1.0, 1000);
        dr.observe(1.0000001, 2_000_000_000); // would be an absurd rate
        assert_eq!(dr.ewma_reads_per_s, 0.0);
        dr.observe(2.0, 11_000);
        assert!((dr.ewma_reads_per_s - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn torn_frame_keeps_header_and_half_the_body() {
        let body = vec![7u8; 100];
        let torn = torn_frame(&body);
        assert_eq!(torn.len(), gstream::FRAME_HEADER_BYTES + 50);
        // The length prefix still promises the full 100-byte body.
        assert_eq!(u32::from_le_bytes(torn[0..4].try_into().unwrap()), 100);
    }
}
