//! # qnet — the network front-end for the contig query service
//!
//! `qserve` answers "where does this read come from?" in-process; this
//! crate puts that service on a TCP socket without giving up any of the
//! robustness discipline the batch pipeline earned in PR 2/3. The design
//! is failure-first — every mechanism exists because a specific failure
//! mode must surface as a *typed, retryable* outcome rather than a hang
//! or a wrong answer:
//!
//! * **Framing** ([`gstream::frame`]) — every message is length-prefixed
//!   and FNV-checksummed; a torn or bit-flipped frame is
//!   [`QnetError::Corrupt`] naming the peer, and the connection dies with
//!   it (a desynced stream can never deliver a misattributed answer).
//! * **Deadline propagation** ([`proto::Request::Query`]) — each request
//!   carries the client's remaining budget in ms; batches whose budget is
//!   already spent are shed *before* they reach a worker and counted as
//!   `qnet.deadline_shed`, separate from queue sheds.
//! * **Per-client fair admission** ([`qserve::FairAdmission`]) — weighted
//!   token buckets per client id ahead of the queue-depth gate, so one
//!   flooding client exhausts its own bucket (`qnet.fairness_shed`,
//!   attributed to `client:{id}` spans) while quiet clients keep serving.
//!   Shed responses carry `retry_after_ms` derived from the bucket
//!   deficit (fairness) or the live drain rate (queue depth).
//! * **Timeouts everywhere** — per-connection read/write timeouts evict
//!   stalled peers on both sides; nothing in this crate blocks forever.
//! * **Graceful drain** ([`server::Server::shutdown`]) — stop accepting,
//!   answer new queries with [`QnetError::Draining`], finish in-flight
//!   batches bounded by a drain deadline, then force-close stragglers.
//! * **Retrying client** ([`client::QueryClient`]) — capped, jittered
//!   exponential backoff (the shape of `dnet`'s recovery backoff),
//!   automatic reconnect, `retry_after_ms` honored, and a request-id echo
//!   check so a stale response can never be returned for a fresh request.
//!
//! Chaos coverage lives behind the `qnet.accept`, `qnet.frame.write`,
//! `qnet.frame.stall`, and `qnet.conn.drop` failpoints (ROBUSTNESS.md);
//! `tests/qnet_chaos.rs` arms each one — `qnet.conn.drop`
//! probabilistically — and asserts a 10k-read run stays bit-identical to
//! the in-process path. Wire format, deadline semantics, and the retry
//! contract are documented in SERVING.md; counters in OBSERVABILITY.md.

pub mod client;
pub mod pool;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, QueryClient};
pub use pool::ClientPool;
pub use proto::{
    auth_tag, ClientStats, LatencySummary, PongStatus, Request, Response, ShedScope, StatsSnapshot,
    AUTH_KIND_QUERY, AUTH_KIND_SHARD_QUERY, STATS_VERSION,
};
pub use server::{DrainReport, ReloadConfig, Server, ServerConfig};

/// Errors surfaced by the qnet client and server.
#[derive(Debug)]
pub enum QnetError {
    /// Transport failure: connect/read/write errors and timeouts.
    Io(std::io::Error),
    /// A frame or payload failed validation; the connection is dead.
    Corrupt {
        /// The remote end, as `host:port`.
        peer: String,
        /// What failed to validate.
        detail: String,
    },
    /// The server shed the batch; nothing was processed. `retry_after_ms`
    /// is the server's hint for when the same batch would be admitted.
    Overloaded {
        /// Which admission gate shed the batch.
        scope: ShedScope,
        /// Load observed at the gate (queued chunks, or the token
        /// deficit in reads, depending on `scope`).
        queued: u64,
        /// The gate's limit (queue depth, or bucket capacity in reads).
        limit: u64,
        /// Server-computed backoff hint.
        retry_after_ms: u32,
    },
    /// The request's deadline budget expired before a worker saw it.
    DeadlineExceeded {
        /// The budget the request carried, in milliseconds.
        budget_ms: u32,
    },
    /// The server is draining for shutdown and admits nothing new.
    Draining,
    /// The server rejected the query's authentication tag
    /// ([`proto::auth_tag`]). Terminal: the same credentials can never
    /// succeed, so retrying would only burn the budget.
    AuthFailed,
    /// The server failed a hot generation reload and rolled back; the
    /// previously active generation is still serving, untouched.
    /// Terminal for this reload attempt — the message names what
    /// failed (missing generation, checksum mismatch, stalled swap).
    ReloadFailed {
        /// The generation the reload targeted (`0` = manifest active).
        generation: u64,
        /// Display of the server-side failure.
        message: String,
    },
    /// The server failed to process the batch (its own typed error,
    /// stringified for transport).
    Remote(String),
    /// The client exhausted its retry budget; `last` is the final
    /// retryable error's message.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// Display of the last error.
        last: String,
    },
}

impl QnetError {
    /// True when retrying the same request (with backoff, on a fresh
    /// connection) may succeed: transport errors, torn/corrupt frames,
    /// sheds, and drains. Deadline exhaustion, authentication failures,
    /// remote typed failures, and an already-exhausted retry budget are
    /// terminal.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            QnetError::Io(_)
                | QnetError::Corrupt { .. }
                | QnetError::Overloaded { .. }
                | QnetError::Draining
        )
    }
}

impl std::fmt::Display for QnetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QnetError::Io(e) => write!(f, "network I/O: {e}"),
            QnetError::Corrupt { peer, detail } => {
                write!(f, "corrupt frame from peer {peer}: {detail}")
            }
            QnetError::Overloaded {
                scope,
                queued,
                limit,
                retry_after_ms,
            } => write!(
                f,
                "overloaded ({scope}): {queued} against a limit of {limit}, \
                 retry after {retry_after_ms} ms"
            ),
            QnetError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded: the {budget_ms} ms budget ran out")
            }
            QnetError::Draining => write!(f, "server draining: no new work admitted"),
            QnetError::AuthFailed => {
                write!(f, "authentication failed: the server rejected the auth tag")
            }
            QnetError::ReloadFailed {
                generation,
                message,
            } => {
                write!(
                    f,
                    "reload of generation {generation} failed and rolled back: {message}"
                )
            }
            QnetError::Remote(m) => write!(f, "remote error: {m}"),
            QnetError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for QnetError {}

impl From<std::io::Error> for QnetError {
    fn from(e: std::io::Error) -> Self {
        QnetError::Io(e)
    }
}

/// Convenience alias for fallible qnet operations.
pub type Result<T> = std::result::Result<T, QnetError>;

/// Map a [`gstream::StreamError`] from the framing layer onto a qnet
/// error, attributing corruption to `peer`.
pub(crate) fn from_stream(e: gstream::StreamError, peer: &str) -> QnetError {
    match e {
        gstream::StreamError::Io(io) => QnetError::Io(io),
        gstream::StreamError::Corrupt(detail) => QnetError::Corrupt {
            peer: peer.to_string(),
            detail,
        },
        other => QnetError::Corrupt {
            peer: peer.to_string(),
            detail: other.to_string(),
        },
    }
}
