//! Router-facing connection pooling with per-replica backoff state.
//!
//! The scatter-gather router (`qrouter`) talks to many replicas at
//! once, hedges slow ones with a second concurrent request, and backs
//! off replicas that keep failing. That workload needs two things a
//! bare [`QueryClient`] does not provide:
//!
//! * **Checkout/checkin pooling** — a hedge races two requests against
//!   the *same shard*, sometimes the same replica; each in-flight
//!   request needs its own connection so a late loser's bytes can
//!   never desynchronize the winner's stream. [`ClientPool::checkout`]
//!   hands out an idle pooled client or mints a fresh one; `checkin`
//!   returns it for reuse (bounded idle set, so a burst doesn't pin
//!   sockets forever).
//! * **Per-replica failure accounting** — the router's fail-over
//!   ladder walks replicas with a capped jittered exponential backoff
//!   (the shape of `dnet`'s recovery backoff and the client's own
//!   retry backoff). The pool keeps the consecutive-failure count per
//!   replica address, reset on any success, so "how hard should I back
//!   off from this replica" is one lookup.
//!
//! The pool never retries on its own: pooled clients are configured
//! with `max_retries: 0` (each call is exactly one wire attempt), and
//! the router decides what a failure means — hedge, fail over, or give
//! the shard up as dead.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::client::{ClientConfig, QueryClient};
use obs::Recorder;

/// Idle connections kept per replica address; checkouts beyond this
/// mint fresh clients, checkins beyond it drop the returned client
/// (closing its socket).
const MAX_IDLE_PER_ADDR: usize = 4;

/// Per-replica state: idle clients ready for checkout plus the
/// consecutive-failure count driving the router's backoff ladder.
#[derive(Default)]
struct AddrState {
    idle: Vec<QueryClient>,
    consecutive_failures: u32,
}

/// A pool of [`QueryClient`]s keyed by replica address.
pub struct ClientPool {
    template: ClientConfig,
    rec: Recorder,
    state: Mutex<HashMap<String, AddrState>>,
}

impl ClientPool {
    /// Create a pool. `template` supplies everything except the
    /// address (`client_id`, deadline, timeouts, auth secret); its
    /// `max_retries` is forced to 0 so every pooled call is a single
    /// wire attempt under the router's control.
    pub fn new(template: ClientConfig, rec: &Recorder) -> ClientPool {
        let template = ClientConfig {
            max_retries: 0,
            ..template
        };
        ClientPool {
            template,
            rec: rec.clone(),
            state: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, AddrState>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Take a client for `addr`: a pooled idle one if available, a
    /// fresh (lazily-connecting) one otherwise. Always returns — the
    /// connection is only attempted on first use.
    pub fn checkout(&self, addr: &str) -> QueryClient {
        if let Some(client) = self.lock().get_mut(addr).and_then(|s| s.idle.pop()) {
            return client;
        }
        let cfg = ClientConfig {
            addr: addr.to_string(),
            ..self.template.clone()
        };
        QueryClient::new(cfg, &self.rec)
    }

    /// Return a client to `addr`'s idle set. Beyond
    /// [`MAX_IDLE_PER_ADDR`] the client is dropped instead, closing
    /// its socket.
    pub fn checkin(&self, addr: &str, client: QueryClient) {
        let mut state = self.lock();
        let s = state.entry(addr.to_string()).or_default();
        if s.idle.len() < MAX_IDLE_PER_ADDR {
            s.idle.push(client);
        }
    }

    /// Record one attempt's outcome against `addr` and return the
    /// consecutive-failure count after it (0 after any success).
    pub fn record_outcome(&self, addr: &str, ok: bool) -> u32 {
        let mut state = self.lock();
        let s = state.entry(addr.to_string()).or_default();
        if ok {
            s.consecutive_failures = 0;
        } else {
            s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        }
        s.consecutive_failures
    }

    /// Consecutive failures recorded against `addr` (0 if never seen).
    pub fn consecutive_failures(&self, addr: &str) -> u32 {
        self.lock()
            .get(addr)
            .map(|s| s.consecutive_failures)
            .unwrap_or(0)
    }

    /// Backoff before retry `round` (1-based) against `addr`:
    /// `base · 2^(round-1)` with the exponent capped at
    /// `cap_rounds`, scaled by a deterministic jitter in [0.5, 1.0)
    /// keyed on the seed, the address, and the round — the same shape
    /// as [`QueryClient`]'s retry backoff and `dnet`'s recovery
    /// backoff, de-synchronized across replicas so fail-over sweeps
    /// don't stampede one survivor.
    pub fn backoff_ms(&self, addr: &str, round: u32) -> u64 {
        let base = self.template.backoff_base_ms;
        let exp = round
            .saturating_sub(1)
            .min(self.template.backoff_cap_rounds);
        let full = base.saturating_mul(1u64 << exp);
        let mut key =
            self.template.jitter_seed ^ u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in addr.as_bytes() {
            key = splitmix64(key ^ u64::from(*b));
        }
        let jitter_millis = 512 + (splitmix64(key) % 512); // units of 1/1024
        full * jitter_millis / 1024
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ClientPool {
        let rec = Recorder::disabled();
        ClientPool::new(
            ClientConfig {
                backoff_base_ms: 100,
                backoff_cap_rounds: 4,
                jitter_seed: 7,
                max_retries: 9, // overridden to 0 by the pool
                ..ClientConfig::default()
            },
            &rec,
        )
    }

    #[test]
    fn checkout_reuses_checked_in_clients_and_bounds_the_idle_set() {
        let p = pool();
        let addr = "127.0.0.1:9999";
        // Mint, return, and re-take: the idle set grows then drains.
        let clients: Vec<QueryClient> = (0..6).map(|_| p.checkout(addr)).collect();
        for c in clients {
            p.checkin(addr, c);
        }
        assert_eq!(p.lock().get(addr).unwrap().idle.len(), MAX_IDLE_PER_ADDR);
        let _again = p.checkout(addr);
        assert_eq!(
            p.lock().get(addr).unwrap().idle.len(),
            MAX_IDLE_PER_ADDR - 1
        );
    }

    #[test]
    fn pooled_clients_never_retry_on_their_own() {
        let p = pool();
        let c = p.checkout("127.0.0.1:9999");
        assert_eq!(c.config().max_retries, 0);
    }

    #[test]
    fn failure_accounting_resets_on_success() {
        let p = pool();
        let addr = "10.0.0.1:4000";
        assert_eq!(p.consecutive_failures(addr), 0);
        assert_eq!(p.record_outcome(addr, false), 1);
        assert_eq!(p.record_outcome(addr, false), 2);
        assert_eq!(p.record_outcome(addr, true), 0);
        assert_eq!(p.consecutive_failures(addr), 0);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_desynchronized_across_replicas() {
        let p = pool();
        for round in 1..=8 {
            assert_eq!(
                p.backoff_ms("a:1", round),
                p.backoff_ms("a:1", round),
                "deterministic"
            );
            let exp = (round - 1).min(4);
            let full = 100u64 << exp;
            let got = p.backoff_ms("a:1", round);
            assert!(got >= full / 2 && got < full, "round {round}: {got}");
        }
        // Different replicas jitter differently at the same round, so a
        // shard-wide fail-over doesn't retry in lockstep.
        assert_ne!(p.backoff_ms("a:1", 3), p.backoff_ms("b:2", 3));
    }
}
