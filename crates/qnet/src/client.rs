//! The retrying query client.
//!
//! [`QueryClient`] wraps one TCP connection and the retry discipline
//! around it: capped jittered exponential backoff (the shape of
//! `dnet`'s recovery backoff — `base · 2^(round-1)`, exponent capped),
//! automatic reconnect after any *wire* error, and honoring the
//! server's `retry_after_ms` hint when a batch is shed. Typed protocol
//! outcomes (sheds, drains, reload failures) keep the connection: the
//! stream is still in sync, so tearing it down would only churn
//! sockets — [`QueryClient::reconnects`] counts actual re-dials so
//! tests can pin this down. Retries are safe because queries are
//! read-only; the request-id echo check means a response from a
//! previous life of the connection can never be returned for the
//! current request — any mismatch is
//! [`QnetError::Corrupt`](crate::QnetError::Corrupt) and a reconnect.
//!
//! [`QueryClient::query_batches_pipelined`] sends many batches down the
//! connection before reading any response, matching answers to requests
//! by `request_id` (the server may answer out of order). Every answer
//! carries the store/index generation that computed it;
//! [`QueryClient::set_generation_pin`] pins future queries to one
//! generation, which the scatter-gather router uses to keep a rolling
//! reload's mixed-generation window coherent.
//!
//! A client never hangs: connects, reads, and writes all carry
//! timeouts, and the retry loop is bounded by
//! [`ClientConfig::max_retries`], after which the caller gets
//! [`QnetError::RetriesExhausted`](crate::QnetError::RetriesExhausted)
//! wrapping the last failure.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{PongStatus, Request, Response, StatsSnapshot};
use crate::QnetError;
use genome::PackedSeq;
use obs::Recorder;
use qserve::{Candidate, Hit};

/// Tuning for [`QueryClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Stable identity for fair admission and trace attribution.
    pub client_id: String,
    /// Deadline budget granted to each attempt, in milliseconds.
    pub deadline_ms: u32,
    /// Retries after the first attempt; total attempts are
    /// `max_retries + 1`.
    pub max_retries: u32,
    /// First-retry backoff in milliseconds; doubles per retry.
    pub backoff_base_ms: u64,
    /// Exponent cap: backoff stops growing after this many doublings
    /// (the same cap `dnet` applies to recovery rounds).
    pub backoff_cap_rounds: u32,
    /// Socket read timeout per attempt.
    pub read_timeout: Duration,
    /// Socket write timeout per attempt.
    pub write_timeout: Duration,
    /// Seed for deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Shared secret for query authentication. When set, the client
    /// opens every connection with a [`Request::AuthHello`] handshake
    /// and every query carries the keyed tag from
    /// [`crate::proto::auth_tag`], binding the connection's nonce and a
    /// strictly-increasing sequence number; when `None` the tag and
    /// sequence fields travel as `0` (servers without a secret ignore
    /// them).
    pub auth_secret: Option<String>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:0".to_string(),
            client_id: "client".to_string(),
            deadline_ms: 10_000,
            max_retries: 4,
            backoff_base_ms: 100,
            backoff_cap_rounds: 4,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            jitter_seed: 0x5EED,
            auth_secret: None,
        }
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    peer: String,
    /// Server-dealt nonce from the `AuthHello` handshake; `0` until the
    /// handshake completes (or always, without a secret).
    nonce: u64,
    /// Next sequence number to bind into an authed tag on this
    /// connection. Dies with the connection — a reconnect re-handshakes
    /// and restarts from 1.
    next_seq: u64,
}

/// One attempt's answer, matching the batch shape it was asked in.
/// The `u64` is the store/index generation that computed the answer.
enum BatchAnswer {
    Hits(u64, Vec<Option<Hit>>),
    Candidates(u64, Vec<Vec<Candidate>>),
}

/// A connection-owning client for the qnet wire protocol.
pub struct QueryClient {
    cfg: ClientConfig,
    rec: Recorder,
    conn: Option<Conn>,
    next_request_id: u64,
    retries_total: u64,
    reconnects: u64,
    /// Generation pin carried by every query; `0` = server's active.
    pin: u64,
}

impl QueryClient {
    /// Create a client; the connection is established lazily on first
    /// use and re-established after any wire error.
    pub fn new(cfg: ClientConfig, rec: &Recorder) -> QueryClient {
        QueryClient {
            cfg,
            rec: rec.clone(),
            conn: None,
            next_request_id: 1,
            retries_total: 0,
            reconnects: 0,
            pin: 0,
        }
    }

    /// Total retries performed over this client's lifetime.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Connections dialed over this client's lifetime (the first
    /// connect counts). A typed shed, drain, or reload outcome keeps
    /// the connection alive — only wire errors (I/O, corrupt frames)
    /// force a re-dial — so steady-state traffic across a hot reload
    /// holds this at 1.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Pin every subsequent query to store/index `generation`; `0`
    /// (the default) follows whatever generation is active on the
    /// server. Routers pin all shard fan-outs of one request to one id
    /// so candidate votes always sum over a single postings space.
    pub fn set_generation_pin(&mut self, generation: u64) {
        self.pin = generation;
    }

    /// The current generation pin (`0` = active).
    pub fn generation_pin(&self) -> u64 {
        self.pin
    }

    /// The configuration this client was built with.
    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    /// Query a batch of reads, retrying retryable failures with capped
    /// jittered exponential backoff. Returns per-read placements
    /// aligned with `reads`.
    pub fn query_batch(&mut self, reads: &[PackedSeq]) -> crate::Result<Vec<Option<Hit>>> {
        Ok(self.query_batch_tagged(reads)?.1)
    }

    /// [`query_batch`](Self::query_batch), also returning the
    /// generation that computed the placements.
    pub fn query_batch_tagged(
        &mut self,
        reads: &[PackedSeq],
    ) -> crate::Result<(u64, Vec<Option<Hit>>)> {
        match self.retrying(|c| c.batch_once(reads, false))? {
            BatchAnswer::Hits(generation, hits) => Ok((generation, hits)),
            BatchAnswer::Candidates(..) => unreachable!("placement query answers hits"),
        }
    }

    /// Query a batch of reads against the server's *shard* of the
    /// postings space ([`Request::ShardQuery`]), returning every voted
    /// candidate placement per read. Same retry discipline as
    /// [`query_batch`](Self::query_batch); the scatter-gather router
    /// sets `max_retries: 0` and drives its own fail-over instead.
    pub fn shard_query_batch(&mut self, reads: &[PackedSeq]) -> crate::Result<Vec<Vec<Candidate>>> {
        Ok(self.shard_query_batch_tagged(reads)?.1)
    }

    /// [`shard_query_batch`](Self::shard_query_batch), also returning
    /// the generation that voted the candidates — the router refuses
    /// to merge candidate sets from mismatched generations.
    pub fn shard_query_batch_tagged(
        &mut self,
        reads: &[PackedSeq],
    ) -> crate::Result<(u64, Vec<Vec<Candidate>>)> {
        match self.retrying(|c| c.batch_once(reads, true))? {
            BatchAnswer::Candidates(generation, c) => Ok((generation, c)),
            BatchAnswer::Hits(..) => unreachable!("shard query answers candidates"),
        }
    }

    /// Ask the server to hot-swap to store/index `generation` (`0` =
    /// the manifest's `active` pointer). Returns the generation now
    /// active. Single attempt: a failed reload is a deliberate,
    /// server-side rollback ([`QnetError::ReloadFailed`]) — retrying
    /// it blindly would hide an operational problem.
    pub fn reload(&mut self, generation: u64) -> crate::Result<u64> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        match self.round_trip(&Request::Reload {
            request_id,
            generation,
        })? {
            Response::ReloadDone {
                request_id: rid,
                generation: active,
            } => {
                let peer = self.peer();
                self.check_id(rid, request_id, &peer)?;
                Ok(active)
            }
            Response::ReloadFailed {
                request_id: rid,
                generation: target,
                message,
            } => {
                let peer = self.peer();
                self.check_id(rid, request_id, &peer)?;
                Err(QnetError::ReloadFailed {
                    generation: target,
                    message,
                })
            }
            other => Err(self.unexpected(&other)),
        }
    }

    /// Pipeline many batches down one connection: every request is
    /// written before any response is read, and answers are matched to
    /// requests by `request_id` — the server executes admitted batches
    /// concurrently and may answer out of order. Returns per-batch
    /// outcomes aligned with `batches`: the `(generation, hits)` pair
    /// that computed each answer, or that batch's terminal typed error
    /// (deadline, auth, remote). Retryable outcomes are handled
    /// internally: sheds and drains leave the batch unanswered and the
    /// whole stream in sync, so the retry loop backs off (honoring
    /// `retry_after_ms`) and resends *only* the unanswered batches on
    /// the same connection; wire errors desynchronize the stream, so
    /// they reconnect first.
    pub fn query_batches_pipelined(
        &mut self,
        batches: &[Vec<PackedSeq>],
    ) -> crate::Result<Vec<crate::Result<(u64, Vec<Option<Hit>>)>>> {
        let mut results: Vec<Option<crate::Result<(u64, Vec<Option<Hit>>)>>> =
            (0..batches.len()).map(|_| None).collect();
        let mut attempt: u32 = 0;
        loop {
            let unanswered: Vec<usize> = (0..batches.len())
                .filter(|&i| results[i].is_none())
                .collect();
            if unanswered.is_empty() {
                return Ok(results
                    .into_iter()
                    .map(|r| r.expect("every batch answered"))
                    .collect());
            }
            attempt += 1;
            let err = match self.pipeline_once(batches, &unanswered, &mut results) {
                Ok(()) => continue,
                Err(e) => e,
            };
            if !err.is_retryable() {
                return Err(err);
            }
            if attempt > self.cfg.max_retries {
                return Err(QnetError::RetriesExhausted {
                    attempts: attempt,
                    last: err.to_string(),
                });
            }
            // Same keep-alive discipline as `retrying`: only wire
            // errors force a reconnect.
            if matches!(&err, QnetError::Io(_) | QnetError::Corrupt { .. }) {
                self.conn = None;
            }
            self.retries_total += 1;
            self.rec.counter("qnet.retries", 1);
            let hint_ms = match &err {
                QnetError::Overloaded { retry_after_ms, .. } => u64::from(*retry_after_ms),
                _ => 0,
            };
            let wait = self.backoff_ms(attempt).max(hint_ms);
            if faultsim::sched::active() {
                faultsim::sched::point("qnet.client.backoff");
            } else {
                std::thread::sleep(Duration::from_millis(wait));
            }
        }
    }

    /// One pipelined attempt over the batches at `unanswered` indices:
    /// write all requests, then drain exactly one response per request.
    /// Terminal per-batch outcomes are recorded into `results`;
    /// retryable ones (sheds, drains) are left unrecorded and the first
    /// is returned as the attempt's error *after* the drain completes,
    /// so the stream stays in sync and the connection survives.
    fn pipeline_once(
        &mut self,
        batches: &[Vec<PackedSeq>],
        unanswered: &[usize],
        results: &mut [Option<crate::Result<(u64, Vec<Option<Hit>>)>>],
    ) -> crate::Result<()> {
        if let Err(e) = self.ensure_conn() {
            self.conn = None;
            return Err(e);
        }
        let deadline_ms = self.cfg.deadline_ms;
        let client_id = self.cfg.client_id.clone();
        let secret = self.cfg.auth_secret.clone();
        let pin = self.pin;
        let mut ids: Vec<(u64, usize)> = Vec::with_capacity(unanswered.len());
        for &i in unanswered {
            let request_id = self.next_request_id;
            self.next_request_id += 1;
            ids.push((request_id, i));
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let peer = conn.peer.clone();

        // Encode every request into one contiguous write so the whole
        // burst leaves in as few segments as the kernel allows.
        let mut wire = Vec::new();
        let mut pending: BTreeMap<u64, usize> = BTreeMap::new();
        for &(request_id, i) in &ids {
            let (auth_seq, auth_tag) = match &secret {
                Some(secret) => {
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    let tag = crate::proto::auth_tag(
                        secret,
                        crate::proto::AUTH_KIND_QUERY,
                        conn.nonce,
                        seq,
                        request_id,
                        deadline_ms,
                        &client_id,
                        &batches[i],
                    );
                    (seq, tag)
                }
                None => (0, 0),
            };
            let body = Request::Query {
                request_id,
                deadline_ms,
                client_id: client_id.clone(),
                reads: batches[i].clone(),
                auth_seq,
                auth_tag,
                generation: pin,
            }
            .encode();
            gstream::write_frame(&mut wire, &body).map_err(|e| crate::from_stream(e, &peer))?;
            pending.insert(request_id, i);
        }
        conn.stream.write_all(&wire)?;

        // Drain one response per outstanding request, in whatever order
        // the server answers. A retryable typed outcome is deferred
        // rather than returned mid-drain: bailing out with responses
        // still in flight would desynchronize the stream.
        let mut deferred: Option<QnetError> = None;
        while !pending.is_empty() {
            if faultsim::sched::active() {
                let reader = &conn.reader;
                faultsim::sched::wait_until("qnet.client.read", &mut || {
                    !reader.buffer().is_empty() || sock_readable(reader.get_ref())
                });
            }
            let payload = match gstream::read_frame(&mut conn.reader, &peer) {
                Ok(Some(p)) => p,
                Ok(None) => {
                    return Err(QnetError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        format!(
                            "{peer} closed the connection with {} answers outstanding",
                            pending.len()
                        ),
                    )));
                }
                Err(e) => return Err(crate::from_stream(e, &peer)),
            };
            let resp = Response::decode(&payload, &peer)?;
            let rid = match &resp {
                Response::Hits { request_id, .. }
                | Response::Overloaded { request_id, .. }
                | Response::Draining { request_id }
                | Response::DeadlineExceeded { request_id }
                | Response::AuthFailed { request_id }
                | Response::Error { request_id, .. } => *request_id,
                other => {
                    return Err(QnetError::Corrupt {
                        peer,
                        detail: format!("unexpected response type {other:?}"),
                    });
                }
            };
            let Some(i) = pending.remove(&rid) else {
                return Err(QnetError::Corrupt {
                    peer,
                    detail: format!("response id {rid} matches no outstanding request"),
                });
            };
            match resp {
                Response::Hits {
                    generation, hits, ..
                } => {
                    if hits.len() != batches[i].len() {
                        return Err(QnetError::Corrupt {
                            peer,
                            detail: format!(
                                "{} hits answered for {} reads",
                                hits.len(),
                                batches[i].len()
                            ),
                        });
                    }
                    results[i] = Some(Ok((generation, hits)));
                }
                Response::Overloaded {
                    scope,
                    queued,
                    limit,
                    retry_after_ms,
                    ..
                } => {
                    deferred.get_or_insert(QnetError::Overloaded {
                        scope,
                        queued,
                        limit,
                        retry_after_ms,
                    });
                }
                Response::Draining { .. } => {
                    deferred.get_or_insert(QnetError::Draining);
                }
                Response::DeadlineExceeded { .. } => {
                    results[i] = Some(Err(QnetError::DeadlineExceeded {
                        budget_ms: deadline_ms,
                    }));
                }
                Response::AuthFailed { .. } => {
                    results[i] = Some(Err(QnetError::AuthFailed));
                }
                Response::Error { message, .. } => {
                    results[i] = Some(Err(QnetError::Remote(message)));
                }
                _ => unreachable!("request id already matched above"),
            }
        }
        match deferred {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The peer this client talks to: the connected socket's address
    /// when a connection is live, the configured address otherwise.
    /// Routers fold this into their typed error context.
    pub fn peer(&self) -> String {
        self.conn
            .as_ref()
            .map(|c| c.peer.clone())
            .unwrap_or_else(|| self.cfg.addr.clone())
    }

    /// The retry loop shared by every batch shape: retryable failures
    /// back off (capped jittered exponential, honoring `retry_after_ms`
    /// hints) and abandon the connection; terminal failures surface
    /// immediately.
    fn retrying<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> crate::Result<T>,
    ) -> crate::Result<T> {
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let err = match op(self) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if !err.is_retryable() {
                return Err(err);
            }
            if attempt > self.cfg.max_retries {
                return Err(QnetError::RetriesExhausted {
                    attempts: attempt,
                    last: err.to_string(),
                });
            }
            // Only a *wire* failure abandons the connection: after a
            // torn frame or timeout the stream position is unknowable,
            // and a fresh connection is the only way to guarantee the
            // next response pairs with the next request. Typed
            // protocol outcomes (sheds, drains) arrive on a stream
            // that is still in sync — tearing it down would churn a
            // socket for nothing, so those keep the connection and
            // just back off.
            if matches!(&err, QnetError::Io(_) | QnetError::Corrupt { .. }) {
                self.conn = None;
            }
            self.retries_total += 1;
            self.rec.counter("qnet.retries", 1);
            let hint_ms = match &err {
                QnetError::Overloaded { retry_after_ms, .. } => u64::from(*retry_after_ms),
                _ => 0,
            };
            let wait = self.backoff_ms(attempt).max(hint_ms);
            // Under the deterministic scheduler a real sleep would stall
            // the whole schedule on wall time; the virtual clock only
            // moves at schedule points, so just yield at one instead.
            if faultsim::sched::active() {
                faultsim::sched::point("qnet.client.backoff");
            } else {
                std::thread::sleep(Duration::from_millis(wait));
            }
        }
    }

    /// Probe the server. Returns `(ready, draining)`. Single attempt —
    /// callers polling for readiness supply their own loop.
    pub fn ping(&mut self) -> crate::Result<(bool, bool)> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong { ready, draining } => Ok((ready, draining)),
            other => Err(self.unexpected(&other)),
        }
    }

    /// Probe the server with the richer v2 ping. Single attempt, like
    /// [`Self::ping`]. Servers that predate the `PingV2` tag treat the
    /// unknown tag as corruption and drop the connection, which
    /// surfaces here as an error — callers wanting to interoperate with
    /// old servers should fall back to [`Self::ping`].
    pub fn ping_v2(&mut self) -> crate::Result<PongStatus> {
        match self.round_trip(&Request::PingV2)? {
            Response::PongV2(status) => Ok(status),
            other => Err(self.unexpected(&other)),
        }
    }

    /// Fetch a live telemetry snapshot. Single attempt; `Stats` is
    /// admission-gate-exempt on the server, so this works mid-drain and
    /// mid-overload.
    pub fn stats(&mut self) -> crate::Result<StatsSnapshot> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(self.unexpected(&other)),
        }
    }

    /// Ask the server to begin a graceful drain.
    pub fn request_shutdown(&mut self) -> crate::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(self.unexpected(&other)),
        }
    }

    /// Backoff before retry number `round` (1-based), in milliseconds:
    /// `base · 2^(round-1)` with the exponent capped, scaled by a
    /// deterministic jitter factor in [0.5, 1.0) keyed on the seed and
    /// the round.
    fn backoff_ms(&self, round: u32) -> u64 {
        let exp = round.saturating_sub(1).min(self.cfg.backoff_cap_rounds);
        let full = self.cfg.backoff_base_ms.saturating_mul(1u64 << exp);
        let h =
            splitmix64(self.cfg.jitter_seed ^ u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let jitter_millis = 512 + (h % 512); // in units of 1/1024
        full * jitter_millis / 1024
    }

    /// One attempt at one batch, in placement (`shard == false`) or
    /// candidate (`shard == true`) shape. Establishes the connection
    /// (including the auth handshake) first, because an authed tag
    /// binds the connection's nonce and sequence number.
    fn batch_once(&mut self, reads: &[PackedSeq], shard: bool) -> crate::Result<BatchAnswer> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        if let Err(e) = self.ensure_conn() {
            self.conn = None;
            return Err(e);
        }
        let (auth_seq, auth_tag) = match &self.cfg.auth_secret {
            Some(secret) => {
                let conn = self.conn.as_mut().expect("connection just ensured");
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let kind = if shard {
                    crate::proto::AUTH_KIND_SHARD_QUERY
                } else {
                    crate::proto::AUTH_KIND_QUERY
                };
                let tag = crate::proto::auth_tag(
                    secret,
                    kind,
                    conn.nonce,
                    seq,
                    request_id,
                    self.cfg.deadline_ms,
                    &self.cfg.client_id,
                    reads,
                );
                (seq, tag)
            }
            None => (0, 0),
        };
        let req = if shard {
            Request::ShardQuery {
                request_id,
                deadline_ms: self.cfg.deadline_ms,
                client_id: self.cfg.client_id.clone(),
                reads: reads.to_vec(),
                auth_seq,
                auth_tag,
                generation: self.pin,
            }
        } else {
            Request::Query {
                request_id,
                deadline_ms: self.cfg.deadline_ms,
                client_id: self.cfg.client_id.clone(),
                reads: reads.to_vec(),
                auth_seq,
                auth_tag,
                generation: self.pin,
            }
        };
        let (resp, peer) = self.round_trip_raw(&req)?;
        match resp {
            Response::Hits {
                request_id: rid,
                generation,
                hits,
            } if !shard => {
                self.check_id(rid, request_id, &peer)?;
                if hits.len() != reads.len() {
                    self.conn = None;
                    return Err(QnetError::Corrupt {
                        peer,
                        detail: format!("{} hits answered for {} reads", hits.len(), reads.len()),
                    });
                }
                Ok(BatchAnswer::Hits(generation, hits))
            }
            Response::ShardCandidates {
                request_id: rid,
                generation,
                candidates,
            } if shard => {
                self.check_id(rid, request_id, &peer)?;
                if candidates.len() != reads.len() {
                    self.conn = None;
                    return Err(QnetError::Corrupt {
                        peer,
                        detail: format!(
                            "{} candidate lists answered for {} reads",
                            candidates.len(),
                            reads.len()
                        ),
                    });
                }
                Ok(BatchAnswer::Candidates(generation, candidates))
            }
            Response::Overloaded {
                request_id: rid,
                scope,
                queued,
                limit,
                retry_after_ms,
            } => {
                self.check_id(rid, request_id, &peer)?;
                Err(QnetError::Overloaded {
                    scope,
                    queued,
                    limit,
                    retry_after_ms,
                })
            }
            Response::Draining { request_id: rid } => {
                self.check_id(rid, request_id, &peer)?;
                Err(QnetError::Draining)
            }
            Response::DeadlineExceeded { request_id: rid } => {
                self.check_id(rid, request_id, &peer)?;
                Err(QnetError::DeadlineExceeded {
                    budget_ms: self.cfg.deadline_ms,
                })
            }
            Response::Error {
                request_id: rid,
                message,
            } => {
                self.check_id(rid, request_id, &peer)?;
                Err(QnetError::Remote(message))
            }
            Response::AuthFailed { request_id: rid } => {
                self.check_id(rid, request_id, &peer)?;
                Err(QnetError::AuthFailed)
            }
            other => Err(self.unexpected(&other)),
        }
    }

    fn check_id(&mut self, got: u64, want: u64, peer: &str) -> crate::Result<()> {
        if got != want {
            self.conn = None;
            return Err(QnetError::Corrupt {
                peer: peer.to_string(),
                detail: format!("response id {got} does not match request id {want}"),
            });
        }
        Ok(())
    }

    /// A response whose type makes no sense for the request we sent —
    /// the stream is desynchronized.
    fn unexpected(&mut self, resp: &Response) -> QnetError {
        let peer = self
            .conn
            .as_ref()
            .map(|c| c.peer.clone())
            .unwrap_or_else(|| self.cfg.addr.clone());
        self.conn = None;
        QnetError::Corrupt {
            peer,
            detail: format!("unexpected response type {resp:?}"),
        }
    }

    fn round_trip(&mut self, req: &Request) -> crate::Result<Response> {
        Ok(self.round_trip_raw(req)?.0)
    }

    /// Send one request and read one response on the current (or a
    /// fresh) connection. Any failure drops the connection.
    fn round_trip_raw(&mut self, req: &Request) -> crate::Result<(Response, String)> {
        let result = self.round_trip_inner(req);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Establish the connection if none is live, including the
    /// `AuthHello` handshake when a secret is configured. On failure
    /// the caller must drop `self.conn`.
    fn ensure_conn(&mut self) -> crate::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect(&self.cfg.addr)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_write_timeout(Some(self.cfg.write_timeout))?;
        stream.set_nodelay(true).ok();
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| self.cfg.addr.clone());
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some(Conn {
            stream,
            reader,
            peer,
            nonce: 0,
            next_seq: 1,
        });
        self.reconnects += 1;
        self.rec.counter("qnet.client.connects", 1);
        if self.cfg.auth_secret.is_some() {
            let (resp, _peer) = self.exchange(&Request::AuthHello)?;
            match resp {
                Response::AuthNonce { nonce } => {
                    let conn = self.conn.as_mut().expect("connection just established");
                    conn.nonce = nonce;
                    conn.next_seq = 1;
                }
                other => return Err(self.unexpected(&other)),
            }
        }
        Ok(())
    }

    fn round_trip_inner(&mut self, req: &Request) -> crate::Result<(Response, String)> {
        self.ensure_conn()?;
        self.exchange(req)
    }

    /// One request/response exchange on the live connection; the caller
    /// guarantees one exists.
    fn exchange(&mut self, req: &Request) -> crate::Result<(Response, String)> {
        let conn = self.conn.as_mut().expect("connection established");
        let peer = conn.peer.clone();

        let body = req.encode();
        let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
        gstream::write_frame(&mut frame, &body).map_err(|e| crate::from_stream(e, &peer))?;
        conn.stream.write_all(&frame)?;

        // Under the deterministic scheduler, park until the response (or
        // EOF) is actually observable so the blocking read below cannot
        // stall the schedule on wall time.
        if faultsim::sched::active() {
            let reader = &conn.reader;
            faultsim::sched::wait_until("qnet.client.read", &mut || {
                !reader.buffer().is_empty() || sock_readable(reader.get_ref())
            });
        }
        let payload = match gstream::read_frame(&mut conn.reader, &peer) {
            Ok(Some(p)) => p,
            Ok(None) => {
                // The server closed cleanly between our request and its
                // response (drain force-close, accept-drop chaos, …).
                return Err(QnetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("{peer} closed the connection before responding"),
                )));
            }
            Err(e) => return Err(crate::from_stream(e, &peer)),
        };
        let resp = Response::decode(&payload, &peer)?;
        Ok((resp, peer))
    }
}

/// Non-consuming readiness probe: true when a read on `sock` would not
/// block (data buffered, EOF, or a hard error — all of which the real
/// read observes immediately).
fn sock_readable(sock: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    let _ = sock.set_nonblocking(true);
    let r = sock.peek(&mut probe);
    let _ = sock.set_nonblocking(false);
    match r {
        Ok(_) => true,
        Err(e) => e.kind() != std::io::ErrorKind::WouldBlock,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn fast_cfg(addr: String) -> ClientConfig {
        ClientConfig {
            addr,
            client_id: "t".to_string(),
            max_retries: 2,
            backoff_base_ms: 1,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        }
    }

    /// Read one frame off `sock` and decode the request in it.
    fn read_request(sock: &mut TcpStream) -> Request {
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let payload = gstream::read_frame(&mut reader, "client")
            .unwrap()
            .expect("a frame");
        Request::decode(&payload, "client").unwrap()
    }

    fn send_response(sock: &mut TcpStream, resp: &Response) {
        let body = resp.encode();
        let mut frame = Vec::new();
        gstream::write_frame(&mut frame, &body).unwrap();
        sock.write_all(&frame).unwrap();
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let cfg = ClientConfig {
            backoff_base_ms: 100,
            backoff_cap_rounds: 4,
            jitter_seed: 7,
            ..ClientConfig::default()
        };
        let rec = Recorder::disabled();
        let a = QueryClient::new(cfg.clone(), &rec);
        let b = QueryClient::new(cfg, &rec);
        for round in 1..=8 {
            // Same seed, same round: identical backoff.
            assert_eq!(a.backoff_ms(round), b.backoff_ms(round));
            // Jitter stays in [50%, 100%) of the uncapped-or-capped full value.
            let exp = (round - 1).min(4);
            let full = 100u64 << exp;
            let got = a.backoff_ms(round);
            assert!(
                got >= full / 2 && got < full,
                "round {round}: {got} vs {full}"
            );
        }
        // Past the cap the full value stops growing.
        let capped_full = 100u64 << 4;
        for round in 5..=8 {
            assert!(a.backoff_ms(round) < capped_full);
        }
    }

    #[test]
    fn client_reconnects_and_retries_after_a_torn_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First life: answer with a torn frame, then hang up.
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s);
            let Request::Query { request_id, .. } = req else {
                panic!("expected a query")
            };
            let body = Response::Hits {
                request_id,
                generation: 0,
                hits: vec![None],
            }
            .encode();
            let mut frame = Vec::new();
            gstream::write_frame(&mut frame, &body).unwrap();
            frame.truncate(gstream::FRAME_HEADER_BYTES + body.len() / 2);
            s.write_all(&frame).unwrap();
            drop(s);
            // Second life: answer properly.
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s);
            let Request::Query { request_id, .. } = req else {
                panic!("expected a query")
            };
            send_response(
                &mut s,
                &Response::Hits {
                    request_id,
                    generation: 0,
                    hits: vec![None],
                },
            );
            // Hold the socket open until the client has read the frame.
            let mut buf = [0u8; 1];
            let _ = s.read(&mut buf);
        });
        let rec = Recorder::disabled();
        let mut client = QueryClient::new(fast_cfg(addr), &rec);
        let reads = vec!["ACGT".parse::<PackedSeq>().unwrap()];
        let hits = client.query_batch(&reads).expect("retry succeeds");
        assert_eq!(hits, vec![None]);
        assert_eq!(client.retries_total(), 1);
        server.join().unwrap();
    }

    #[test]
    fn mismatched_response_id_is_corrupt_and_bounded_by_retry_budget() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Three lives (1 attempt + 2 retries), each answering with
            // a wrong request id.
            for _ in 0..3 {
                let (mut s, _) = listener.accept().unwrap();
                let _ = read_request(&mut s);
                send_response(
                    &mut s,
                    &Response::Hits {
                        request_id: 0xBAD,
                        generation: 0,
                        hits: vec![None],
                    },
                );
                let mut buf = [0u8; 1];
                let _ = s.read(&mut buf);
            }
        });
        let rec = Recorder::disabled();
        let mut client = QueryClient::new(fast_cfg(addr), &rec);
        let reads = vec!["ACGT".parse::<PackedSeq>().unwrap()];
        let err = client
            .query_batch(&reads)
            .expect_err("never a wrong answer");
        match err {
            QnetError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.contains("does not match"), "last: {last}");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn auth_rejection_is_terminal_and_the_tag_rides_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // The authed client opens with the nonce handshake.
            let Request::AuthHello = read_request(&mut s) else {
                panic!("expected the auth handshake")
            };
            send_response(&mut s, &Response::AuthNonce { nonce: 0xA11CE });
            let Request::Query {
                request_id,
                deadline_ms,
                client_id,
                reads,
                auth_seq,
                auth_tag,
                generation,
            } = read_request(&mut s)
            else {
                panic!("expected a query")
            };
            assert_eq!(generation, 0, "an unpinned client follows the active");
            assert_eq!(auth_seq, 1, "first authed send on this connection");
            // The client computed the tag over exactly the fields it
            // sent, bound to the dealt nonce and its sequence number.
            assert_eq!(
                auth_tag,
                crate::proto::auth_tag(
                    "pw",
                    crate::proto::AUTH_KIND_QUERY,
                    0xA11CE,
                    auth_seq,
                    request_id,
                    deadline_ms,
                    &client_id,
                    &reads
                )
            );
            send_response(&mut s, &Response::AuthFailed { request_id });
            let mut buf = [0u8; 1];
            let _ = s.read(&mut buf);
        });
        let rec = Recorder::disabled();
        let cfg = ClientConfig {
            auth_secret: Some("pw".to_string()),
            ..fast_cfg(addr)
        };
        let mut client = QueryClient::new(cfg, &rec);
        let reads = vec!["ACGT".parse::<PackedSeq>().unwrap()];
        let err = client.query_batch(&reads).expect_err("auth is terminal");
        assert!(matches!(err, QnetError::AuthFailed));
        assert!(!err.is_retryable());
        assert_eq!(client.retries_total(), 0, "no retry on auth failure");
        server.join().unwrap();
    }

    #[test]
    fn shard_queries_round_trip_candidates() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cands = vec![
            vec![Candidate {
                contig: 2,
                offset: 17,
                reverse: false,
                votes: 5,
                mismatches: Some(1),
            }],
            vec![],
        ];
        let expect = cands.clone();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let Request::ShardQuery { request_id, .. } = read_request(&mut s) else {
                panic!("expected a shard query")
            };
            send_response(
                &mut s,
                &Response::ShardCandidates {
                    request_id,
                    generation: 0,
                    candidates: cands,
                },
            );
            let mut buf = [0u8; 1];
            let _ = s.read(&mut buf);
        });
        let rec = Recorder::disabled();
        let mut client = QueryClient::new(fast_cfg(addr), &rec);
        let reads = vec![
            "ACGT".parse::<PackedSeq>().unwrap(),
            "TTTT".parse::<PackedSeq>().unwrap(),
        ];
        let got = client.shard_query_batch(&reads).expect("candidates");
        assert_eq!(got, expect);
        server.join().unwrap();
    }

    #[test]
    fn typed_sheds_keep_the_connection_alive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // ONE connection lifetime: shed the first query, then
            // answer the retry on the same socket. A second accept
            // would hang the test — which is the point.
            let (mut s, _) = listener.accept().unwrap();
            let Request::Query { request_id, .. } = read_request(&mut s) else {
                panic!("expected a query")
            };
            send_response(
                &mut s,
                &Response::Overloaded {
                    request_id,
                    scope: crate::proto::ShedScope::Queue,
                    queued: 8,
                    limit: 4,
                    retry_after_ms: 1,
                },
            );
            let Request::Query { request_id, .. } = read_request(&mut s) else {
                panic!("expected the retried query")
            };
            send_response(
                &mut s,
                &Response::Hits {
                    request_id,
                    generation: 1,
                    hits: vec![None],
                },
            );
            let mut buf = [0u8; 1];
            let _ = s.read(&mut buf);
        });
        let rec = Recorder::disabled();
        let mut client = QueryClient::new(fast_cfg(addr), &rec);
        let reads = vec!["ACGT".parse::<PackedSeq>().unwrap()];
        let (generation, hits) = client.query_batch_tagged(&reads).expect("retry succeeds");
        assert_eq!(generation, 1);
        assert_eq!(hits, vec![None]);
        assert_eq!(client.retries_total(), 1);
        assert_eq!(
            client.reconnects(),
            1,
            "a shed is a typed outcome, not a reason to re-dial"
        );
        server.join().unwrap();
    }

    #[test]
    fn reload_round_trips_and_keeps_the_connection() {
        // The regression this pins down: queries before and after a
        // Reload ride the SAME connection — a reload outcome (done or
        // failed) never tears the stream down, so steady traffic sees
        // zero reconnects across a hot swap.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let Request::Query { request_id, .. } = read_request(&mut s) else {
                panic!("expected a query")
            };
            send_response(
                &mut s,
                &Response::Hits {
                    request_id,
                    generation: 1,
                    hits: vec![None],
                },
            );
            let Request::Reload {
                request_id,
                generation,
            } = read_request(&mut s)
            else {
                panic!("expected a reload")
            };
            assert_eq!(generation, 2);
            send_response(
                &mut s,
                &Response::ReloadDone {
                    request_id,
                    generation: 2,
                },
            );
            let Request::Query { request_id, .. } = read_request(&mut s) else {
                panic!("expected a post-swap query")
            };
            send_response(
                &mut s,
                &Response::Hits {
                    request_id,
                    generation: 2,
                    hits: vec![None],
                },
            );
            let mut buf = [0u8; 1];
            let _ = s.read(&mut buf);
        });
        let rec = Recorder::disabled();
        let mut client = QueryClient::new(fast_cfg(addr), &rec);
        let reads = vec!["ACGT".parse::<PackedSeq>().unwrap()];
        let (g1, _) = client.query_batch_tagged(&reads).expect("pre-swap query");
        assert_eq!(g1, 1);
        let active = client.reload(2).expect("reload succeeds");
        assert_eq!(active, 2);
        let (g2, _) = client.query_batch_tagged(&reads).expect("post-swap query");
        assert_eq!(g2, 2);
        assert_eq!(client.reconnects(), 1, "the whole swap rode one connection");
        server.join().unwrap();
    }

    #[test]
    fn reload_failure_is_typed_terminal_and_keeps_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let Request::Reload { request_id, .. } = read_request(&mut s) else {
                panic!("expected a reload")
            };
            send_response(
                &mut s,
                &Response::ReloadFailed {
                    request_id,
                    generation: 7,
                    message: "store checksum mismatch".to_string(),
                },
            );
            // The client should still be on this socket afterwards.
            let Request::Ping = read_request(&mut s) else {
                panic!("expected a ping on the surviving connection")
            };
            send_response(
                &mut s,
                &Response::Pong {
                    ready: true,
                    draining: false,
                },
            );
            let mut buf = [0u8; 1];
            let _ = s.read(&mut buf);
        });
        let rec = Recorder::disabled();
        let mut client = QueryClient::new(fast_cfg(addr), &rec);
        let err = client.reload(7).expect_err("server rolled back");
        match &err {
            QnetError::ReloadFailed {
                generation,
                message,
            } => {
                assert_eq!(*generation, 7);
                assert!(message.contains("checksum"), "message: {message}");
            }
            other => panic!("expected ReloadFailed, got {other:?}"),
        }
        assert!(!err.is_retryable(), "a rollback is a deliberate outcome");
        let (ready, _) = client.ping().expect("connection survived the failure");
        assert!(ready);
        assert_eq!(client.reconnects(), 1);
        server.join().unwrap();
    }

    #[test]
    fn pipelined_batches_match_out_of_order_answers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Read all three requests before answering anything —
            // proving the client really pipelines — then answer in
            // scrambled order, tagging each answer's generation with
            // its batch size so the test can check the alignment.
            let mut got: Vec<(u64, usize)> = Vec::new();
            for _ in 0..3 {
                let Request::Query {
                    request_id, reads, ..
                } = read_request(&mut s)
                else {
                    panic!("expected a query")
                };
                got.push((request_id, reads.len()));
            }
            for &(request_id, n) in [&got[2], &got[0], &got[1]] {
                send_response(
                    &mut s,
                    &Response::Hits {
                        request_id,
                        generation: n as u64,
                        hits: vec![None; n],
                    },
                );
            }
            let mut buf = [0u8; 1];
            let _ = s.read(&mut buf);
        });
        let rec = Recorder::disabled();
        let mut client = QueryClient::new(fast_cfg(addr), &rec);
        let read = "ACGT".parse::<PackedSeq>().unwrap();
        let batches = vec![
            vec![read.clone()],
            vec![read.clone(), read.clone()],
            vec![read.clone(), read.clone(), read.clone()],
        ];
        let results = client
            .query_batches_pipelined(&batches)
            .expect("all batches answered");
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            let (generation, hits) = r.as_ref().expect("per-batch success");
            assert_eq!(*generation, (i + 1) as u64, "answer matched to batch {i}");
            assert_eq!(hits.len(), i + 1);
        }
        assert_eq!(client.reconnects(), 1);
        assert_eq!(client.retries_total(), 0);
        server.join().unwrap();
    }

    #[test]
    fn non_retryable_responses_surface_immediately() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let Request::Query { request_id, .. } = read_request(&mut s) else {
                panic!("expected a query")
            };
            send_response(&mut s, &Response::DeadlineExceeded { request_id });
            let mut buf = [0u8; 1];
            let _ = s.read(&mut buf);
        });
        let rec = Recorder::disabled();
        let mut client = QueryClient::new(fast_cfg(addr), &rec);
        let reads = vec!["ACGT".parse::<PackedSeq>().unwrap()];
        let err = client
            .query_batch(&reads)
            .expect_err("deadline is terminal");
        assert!(matches!(err, QnetError::DeadlineExceeded { .. }));
        assert_eq!(client.retries_total(), 0, "no retry on a terminal error");
        server.join().unwrap();
    }
}
