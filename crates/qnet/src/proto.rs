//! Wire protocol for the query service: tagged binary messages inside
//! checksummed [`gstream::frame`]s.
//!
//! Every numeric field is little-endian. Reads travel 2-bit packed
//! (four bases per byte, the same packing the contig store uses on
//! disk), so a 10k-read batch of 100-mers is ~250 KiB on the wire, not
//! a megabyte. Each request carries a `request_id` that the response
//! must echo; the client rejects any response whose id does not match
//! the request it just sent, so a desynchronized or replayed stream can
//! never produce a misattributed answer — it produces
//! [`QnetError::Corrupt`](crate::QnetError::Corrupt) and a reconnect.
//!
//! Decoding is strict: unknown tags, truncated fields, over-long
//! strings, and trailing bytes are all `Corrupt` naming the peer. The
//! framing layer has already checksummed the payload, so a decode
//! failure here means a protocol bug or a hostile peer, not line noise.

use crate::QnetError;
use genome::PackedSeq;
use qserve::{Candidate, Hit};
use serde::{Deserialize, Serialize};

/// Which admission gate shed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedScope {
    /// The shared worker queue was full ([`qserve::QserveError::Overloaded`]).
    Queue,
    /// The per-client token bucket was empty ([`qserve::FairShed`]).
    Fairness,
}

impl std::fmt::Display for ShedScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedScope::Queue => write!(f, "queue"),
            ShedScope::Fairness => write!(f, "per-client fairness"),
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up a batch of reads against the contig index.
    Query {
        /// Client-chosen id echoed verbatim in the response.
        request_id: u64,
        /// Remaining deadline budget in milliseconds; `0` means the
        /// budget is already spent and the batch must be shed.
        deadline_ms: u32,
        /// Stable client identity used for fair admission and
        /// per-client trace attribution.
        client_id: String,
        /// The reads to place.
        reads: Vec<PackedSeq>,
        /// Monotonic per-connection sequence number bound into
        /// [`auth_tag`]; unauthenticated clients send `0`.
        auth_seq: u64,
        /// Keyed authentication tag over the whole query (see
        /// [`auth_tag`]). Servers without a configured secret ignore
        /// it; clients without one send `0`.
        auth_tag: u64,
        /// Generation pin: answer from this store/index generation, or
        /// `0` for whatever is active. Routing metadata, not an
        /// integrity field, so it stays outside [`auth_tag`]: a
        /// tampered pin can only select among the server's validated
        /// resident generations or draw a typed missing-generation
        /// error — never a forged answer.
        generation: u64,
    },
    /// Look up a batch of reads against this server's *shard* of the
    /// postings space, answering with every voted candidate placement
    /// instead of the selected best hit ([`Response::ShardCandidates`]).
    /// The scatter-gather router sums candidates across shards and
    /// replays the single-node selection, so the field layout is
    /// deliberately identical to [`Request::Query`] — same admission
    /// gates, same auth, same deadline semantics.
    ShardQuery {
        /// Client-chosen id echoed verbatim in the response.
        request_id: u64,
        /// Remaining deadline budget in milliseconds.
        deadline_ms: u32,
        /// Stable client identity for fair admission and tracing.
        client_id: String,
        /// The reads to vote on.
        reads: Vec<PackedSeq>,
        /// Monotonic per-connection sequence number (see [`auth_tag`]).
        auth_seq: u64,
        /// Keyed authentication tag (see [`auth_tag`]).
        auth_tag: u64,
        /// Generation pin, `0` for active (see [`Request::Query`]). The
        /// router pins every shard fan-out to one id so a rolling
        /// reload's mixed-generation window still sums votes from a
        /// single coherent postings space.
        generation: u64,
    },
    /// Health/readiness probe; always answered, even mid-drain.
    Ping,
    /// Ask the server to begin a graceful drain.
    Shutdown,
    /// Full telemetry snapshot. Admission-gate-exempt like `Ping`:
    /// answered even mid-drain, never queued behind query work.
    Stats,
    /// Extended probe: like `Ping` but the reply
    /// ([`Response::PongV2`]) carries queue depth and the drain-rate
    /// EWMA so a load balancer can steer without a full `Stats` round
    /// trip. Old peers keep using `Ping`/`Pong`; both stay answered.
    PingV2,
    /// Begin the authenticated-session handshake: the server answers
    /// with [`Response::AuthNonce`], a fresh per-connection nonce the
    /// client must fold into every subsequent [`auth_tag`] on this
    /// connection. Clients without a secret never send it; servers
    /// without one answer with nonce `0` (which authed tags ignore).
    AuthHello,
    /// Hot-swap the serving store/index to another validated
    /// generation, with zero shed ([`qserve::QueryService`] reload).
    /// Gate-exempt like `Stats`: answered even mid-overload, never
    /// queued behind query work — an operator can always roll a
    /// saturated server forward. Answered with [`Response::ReloadDone`]
    /// on success or [`Response::ReloadFailed`] (a loud rollback; the
    /// old generation keeps serving) on any failure.
    Reload {
        /// Client-chosen id echoed verbatim in the response.
        request_id: u64,
        /// The generation id to load, or `0` to follow the manifest's
        /// `active` pointer.
        generation: u64,
    },
}

/// Schema version carried in every [`StatsSnapshot`].
///
/// Version history: `1` — initial schema; `2` — added `force_closed`
/// (stragglers cut off at the drain deadline); `3` — added
/// `generation`, `reloads`, and `rollbacks` (hot generation swaps).
pub const STATS_VERSION: u32 = 3;

/// The `kind` byte [`auth_tag`] binds for a [`Request::Query`].
pub const AUTH_KIND_QUERY: u8 = TAG_QUERY;
/// The `kind` byte [`auth_tag`] binds for a [`Request::ShardQuery`].
pub const AUTH_KIND_SHARD_QUERY: u8 = TAG_SHARD_QUERY;

/// Compute the shared-secret authentication tag for a query.
///
/// The tag is a keyed FNV-1a in the HMAC shape `H(k ‖ H(k ‖ m))`,
/// where `m` is the canonical encoding of every other query field
/// (so the tag binds the id, the deadline, the claimed identity, and
/// the read payload — a peer cannot splice a valid tag onto altered
/// fields), prefixed with the request `kind`
/// ([`AUTH_KIND_QUERY`]/[`AUTH_KIND_SHARD_QUERY`], so a tag minted for
/// one message type never validates another), the per-connection server
/// `nonce` from the [`Request::AuthHello`] handshake, and the client's
/// monotonic `seq`. The nonce pins the tag to one connection and the
/// strictly-increasing sequence pins it to one send, so a captured
/// authed frame replayed byte-exactly — on the same connection or a new
/// one — fails verification even inside its deadline window. This is an
/// *integrity/identity* check against misdirected, casually forged, or
/// replayed traffic on a trusted network, not a cryptographic MAC; the
/// threat model is configuration mistakes, not adversaries with offline
/// compute.
#[allow(clippy::too_many_arguments)]
pub fn auth_tag(
    secret: &str,
    kind: u8,
    nonce: u64,
    seq: u64,
    request_id: u64,
    deadline_ms: u32,
    client_id: &str,
    reads: &[PackedSeq],
) -> u64 {
    let mut msg = Vec::new();
    msg.push(kind);
    put_u64(&mut msg, nonce);
    put_u64(&mut msg, seq);
    put_u64(&mut msg, request_id);
    put_u32(&mut msg, deadline_ms);
    put_str(&mut msg, client_id);
    put_u32(&mut msg, reads.len() as u32);
    for r in reads {
        put_seq(&mut msg, r);
    }
    let inner = keyed_fnv1a(secret.as_bytes(), &msg);
    keyed_fnv1a(secret.as_bytes(), &inner.to_le_bytes())
}

fn keyed_fnv1a(key: &[u8], msg: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.iter().chain(msg.iter()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A versioned point-in-time telemetry snapshot of a running server.
///
/// Counters come from the server's live roll-up of the same events the
/// JSONL trace records, so a snapshot taken after all in-flight work
/// drained equals the post-hoc [`obs::Rollup`] of the trace exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Schema version ([`STATS_VERSION`]).
    pub version: u32,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// True when a graceful drain is underway.
    pub draining: bool,
    /// Queries admitted but not yet answered.
    pub inflight: u64,
    /// Chunks queued in the worker pool right now.
    pub queue_depth: u64,
    /// Reads fully resolved since start.
    pub drained_reads: u64,
    /// Smoothed drain rate (reads/s); `0` until primed.
    pub drain_ewma_reads_per_s: f64,
    /// Reads admitted through every gate (`qnet.accepted`).
    pub accepted: u64,
    /// Reads shed at the queue-depth gate (`qnet.rejected`).
    pub rejected: u64,
    /// Reads shed with their deadline already spent (`qnet.deadline_shed`).
    pub deadline_shed: u64,
    /// Reads shed at the per-client fairness gate (`qnet.fairness_shed`).
    pub fairness_shed: u64,
    /// Reads belonging to admitted queries whose connections were
    /// force-closed at the drain deadline (`qnet.drain.force_closed`).
    /// Since version 2.
    pub force_closed: u64,
    /// The store/index generation currently answering unpinned
    /// queries (`qserve.gen.active`). Since version 3.
    pub generation: u64,
    /// Successful hot generation swaps since start
    /// (`qserve.gen.reloads`). Since version 3.
    pub reloads: u64,
    /// Failed reloads rolled back loudly, old generation untouched
    /// (`qserve.gen.rollbacks`). Since version 3.
    pub rollbacks: u64,
    /// Per-client gate totals and fairness state, sorted by client id.
    pub clients: Vec<ClientStats>,
    /// Latency distributions (microseconds), sorted by name.
    pub latency: Vec<LatencySummary>,
}

/// One client's admission history and current fairness state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientStats {
    pub client_id: String,
    pub accepted: u64,
    pub rejected: u64,
    pub deadline_shed: u64,
    pub fairness_shed: u64,
    /// Tokens currently in the client's fairness bucket.
    pub tokens: f64,
    /// The client's fairness weight.
    pub weight: f64,
}

/// One latency histogram summarized: exact count/sum/min/max plus
/// deterministic percentiles, all in microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub name: String,
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
}

impl LatencySummary {
    /// Summarize a histogram. Percentiles are [`obs::Histogram::percentile`],
    /// so a summary of the merged live windows equals a summary of the
    /// rolled-up trace.
    pub fn from_hist(name: &str, h: &obs::Histogram) -> LatencySummary {
        LatencySummary {
            name: name.to_string(),
            count: h.count(),
            sum_us: h.sum(),
            min_us: h.min(),
            max_us: h.max(),
            p50_us: h.percentile(0.50),
            p90_us: h.percentile(0.90),
            p99_us: h.percentile(0.99),
            p999_us: h.percentile(0.999),
        }
    }
}

/// The [`Response::PongV2`] payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PongStatus {
    /// True when the server is accepting queries.
    pub ready: bool,
    /// True when a graceful drain is underway.
    pub draining: bool,
    /// Chunks queued in the worker pool right now.
    pub queue_depth: u64,
    /// Smoothed drain rate (reads/s); `0` until primed.
    pub drain_ewma_reads_per_s: f64,
    /// The store/index generation currently answering unpinned
    /// queries, so a load balancer can watch a rollout converge
    /// without a full `Stats` round trip.
    pub generation: u64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-read placements, aligned with the request's `reads`.
    Hits {
        /// Echo of the request's id.
        request_id: u64,
        /// The store/index generation that computed these placements —
        /// the request's pin, or whatever was active at admission. A
        /// batch never straddles a swap: every hit in this answer came
        /// from this one generation.
        generation: u64,
        /// `None` for reads that placed nowhere.
        hits: Vec<Option<Hit>>,
    },
    /// Probe answer.
    Pong {
        /// True when the server is accepting queries.
        ready: bool,
        /// True when a graceful drain is underway.
        draining: bool,
    },
    /// The batch was shed at an admission gate; nothing was processed.
    Overloaded {
        /// Echo of the request's id.
        request_id: u64,
        /// Which gate shed the batch.
        scope: ShedScope,
        /// Load observed at the gate.
        queued: u64,
        /// The gate's limit.
        limit: u64,
        /// When the same batch would likely be admitted.
        retry_after_ms: u32,
    },
    /// The server is draining and admits no new queries.
    Draining {
        /// Echo of the request's id.
        request_id: u64,
    },
    /// The request's deadline budget was spent before a worker saw it.
    DeadlineExceeded {
        /// Echo of the request's id.
        request_id: u64,
    },
    /// The server failed to process the batch.
    Error {
        /// Echo of the request's id.
        request_id: u64,
        /// Display of the server-side error.
        message: String,
    },
    /// Acknowledgement that a graceful drain has begun.
    ShutdownAck,
    /// Telemetry snapshot ([`Request::Stats`] answer).
    Stats(StatsSnapshot),
    /// Extended probe answer ([`Request::PingV2`] answer).
    PongV2(PongStatus),
    /// The query's authentication tag did not match the server's
    /// secret; nothing was processed and no fairness tokens were
    /// charged.
    AuthFailed {
        /// Echo of the request's id.
        request_id: u64,
    },
    /// Per-read candidate placements, aligned with a
    /// [`Request::ShardQuery`]'s `reads` — this shard's slice of the
    /// vote space, unfiltered and untruncated (see
    /// [`qserve::Candidate`]).
    ShardCandidates {
        /// Echo of the request's id.
        request_id: u64,
        /// The generation that voted these candidates (see
        /// [`Response::Hits`]); the router refuses to sum candidate
        /// sets from mismatched generations.
        generation: u64,
        /// One candidate list per read, in request order.
        candidates: Vec<Vec<Candidate>>,
    },
    /// The per-connection nonce answering [`Request::AuthHello`].
    AuthNonce {
        /// Nonce every later [`auth_tag`] on this connection must bind.
        nonce: u64,
    },
    /// A [`Request::Reload`] succeeded: the named generation is now
    /// active (or already was — a retried reload is idempotent).
    ReloadDone {
        /// Echo of the request's id.
        request_id: u64,
        /// The generation id now serving unpinned queries.
        generation: u64,
    },
    /// A [`Request::Reload`] failed and was rolled back: the previously
    /// active generation is still serving, untouched. Terminal for this
    /// reload attempt; the message names what failed validation.
    ReloadFailed {
        /// Echo of the request's id.
        request_id: u64,
        /// The generation id the reload targeted (`0` = manifest
        /// active).
        generation: u64,
        /// Display of the server-side [`qserve::GenError`].
        message: String,
    },
}

const TAG_QUERY: u8 = 1;
const TAG_PING: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;
const TAG_STATS_REQ: u8 = 4;
const TAG_PING_V2: u8 = 5;
const TAG_SHARD_QUERY: u8 = 6;
const TAG_AUTH_HELLO: u8 = 7;
const TAG_RELOAD: u8 = 8;

const TAG_HITS: u8 = 1;
const TAG_PONG: u8 = 2;
const TAG_OVERLOADED: u8 = 3;
const TAG_DRAINING: u8 = 4;
const TAG_DEADLINE: u8 = 5;
const TAG_ERROR: u8 = 6;
const TAG_SHUTDOWN_ACK: u8 = 7;
const TAG_STATS: u8 = 8;
const TAG_PONG_V2: u8 = 9;
const TAG_AUTH_FAILED: u8 = 10;
const TAG_SHARD_CANDIDATES: u8 = 11;
const TAG_AUTH_NONCE: u8 = 12;
const TAG_RELOAD_DONE: u8 = 13;
const TAG_RELOAD_FAILED: u8 = 14;

/// Largest `clients`/`latency` list length accepted in a snapshot.
const MAX_STATS_ROWS: usize = 1 << 16;

/// Longest client id / error message accepted on the wire.
const MAX_STRING_BYTES: usize = 4096;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append `seq` 2-bit packed: base count, then `ceil(len/4)` bytes with
/// the earliest base in the low bits.
fn put_seq(out: &mut Vec<u8>, seq: &PackedSeq) {
    let codes = seq.to_codes();
    put_u32(out, codes.len() as u32);
    let mut byte = 0u8;
    for (i, code) in codes.iter().enumerate() {
        byte |= (code & 3) << (2 * (i % 4));
        if i % 4 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !codes.is_empty() && codes.len() % 4 != 0 {
        out.push(byte);
    }
}

/// Bounds-checked reader over a decoded frame payload; every overrun is
/// a `Corrupt` error naming the peer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    peer: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], peer: &'a str) -> Self {
        Cursor { buf, pos: 0, peer }
    }

    fn corrupt(&self, detail: impl Into<String>) -> QnetError {
        QnetError::Corrupt {
            peer: self.peer.to_string(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> crate::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(self.corrupt(format!(
                "message truncated reading {what}: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> crate::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> crate::Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> crate::Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> crate::Result<String> {
        let len = self.u32(what)? as usize;
        if len > MAX_STRING_BYTES {
            return Err(self.corrupt(format!("{what} length {len} exceeds {MAX_STRING_BYTES}")));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt(format!("{what} is not valid UTF-8")))
    }

    fn seq(&mut self) -> crate::Result<PackedSeq> {
        let n_bases = self.u32("read length")? as usize;
        let n_bytes = n_bases.div_ceil(4);
        let packed = self.take(n_bytes, "read bases")?;
        let mut codes = Vec::with_capacity(n_bases);
        for i in 0..n_bases {
            codes.push((packed[i / 4] >> (2 * (i % 4))) & 3);
        }
        Ok(PackedSeq::from_codes(&codes))
    }

    fn finish(&self) -> crate::Result<()> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after message end",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Request {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                request_id,
                deadline_ms,
                client_id,
                reads,
                auth_seq,
                auth_tag,
                generation,
            } => {
                out.push(TAG_QUERY);
                put_u64(&mut out, *request_id);
                put_u32(&mut out, *deadline_ms);
                put_str(&mut out, client_id);
                put_u32(&mut out, reads.len() as u32);
                for r in reads {
                    put_seq(&mut out, r);
                }
                put_u64(&mut out, *auth_seq);
                put_u64(&mut out, *auth_tag);
                put_u64(&mut out, *generation);
            }
            Request::ShardQuery {
                request_id,
                deadline_ms,
                client_id,
                reads,
                auth_seq,
                auth_tag,
                generation,
            } => {
                out.push(TAG_SHARD_QUERY);
                put_u64(&mut out, *request_id);
                put_u32(&mut out, *deadline_ms);
                put_str(&mut out, client_id);
                put_u32(&mut out, reads.len() as u32);
                for r in reads {
                    put_seq(&mut out, r);
                }
                put_u64(&mut out, *auth_seq);
                put_u64(&mut out, *auth_tag);
                put_u64(&mut out, *generation);
            }
            Request::Ping => out.push(TAG_PING),
            Request::Shutdown => out.push(TAG_SHUTDOWN),
            Request::Stats => out.push(TAG_STATS_REQ),
            Request::PingV2 => out.push(TAG_PING_V2),
            Request::AuthHello => out.push(TAG_AUTH_HELLO),
            Request::Reload {
                request_id,
                generation,
            } => {
                out.push(TAG_RELOAD);
                put_u64(&mut out, *request_id);
                put_u64(&mut out, *generation);
            }
        }
        out
    }

    /// Parse a frame payload received from `peer`.
    pub fn decode(buf: &[u8], peer: &str) -> crate::Result<Request> {
        let mut c = Cursor::new(buf, peer);
        let req = match c.u8("request tag")? {
            tag @ (TAG_QUERY | TAG_SHARD_QUERY) => {
                let request_id = c.u64("request id")?;
                let deadline_ms = c.u32("deadline")?;
                let client_id = c.string("client id")?;
                let n = c.u32("read count")? as usize;
                let mut reads = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    reads.push(c.seq()?);
                }
                let auth_seq = c.u64("auth seq")?;
                let auth_tag = c.u64("auth tag")?;
                let generation = c.u64("generation pin")?;
                if tag == TAG_QUERY {
                    Request::Query {
                        request_id,
                        deadline_ms,
                        client_id,
                        reads,
                        auth_seq,
                        auth_tag,
                        generation,
                    }
                } else {
                    Request::ShardQuery {
                        request_id,
                        deadline_ms,
                        client_id,
                        reads,
                        auth_seq,
                        auth_tag,
                        generation,
                    }
                }
            }
            TAG_PING => Request::Ping,
            TAG_SHUTDOWN => Request::Shutdown,
            TAG_STATS_REQ => Request::Stats,
            TAG_PING_V2 => Request::PingV2,
            TAG_AUTH_HELLO => Request::AuthHello,
            TAG_RELOAD => Request::Reload {
                request_id: c.u64("request id")?,
                generation: c.u64("generation")?,
            },
            t => return Err(c.corrupt(format!("unknown request tag {t}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

fn put_scope(out: &mut Vec<u8>, scope: ShedScope) {
    out.push(match scope {
        ShedScope::Queue => 0,
        ShedScope::Fairness => 1,
    });
}

impl Response {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Hits {
                request_id,
                generation,
                hits,
            } => {
                out.push(TAG_HITS);
                put_u64(&mut out, *request_id);
                put_u64(&mut out, *generation);
                put_u32(&mut out, hits.len() as u32);
                for h in hits {
                    match h {
                        None => out.push(0),
                        Some(h) => {
                            out.push(1);
                            put_u32(&mut out, h.contig);
                            put_u32(&mut out, h.offset);
                            out.push(h.reverse as u8);
                            put_u32(&mut out, h.mismatches);
                            put_u32(&mut out, h.votes);
                        }
                    }
                }
            }
            Response::Pong { ready, draining } => {
                out.push(TAG_PONG);
                out.push(*ready as u8);
                out.push(*draining as u8);
            }
            Response::Overloaded {
                request_id,
                scope,
                queued,
                limit,
                retry_after_ms,
            } => {
                out.push(TAG_OVERLOADED);
                put_u64(&mut out, *request_id);
                put_scope(&mut out, *scope);
                put_u64(&mut out, *queued);
                put_u64(&mut out, *limit);
                put_u32(&mut out, *retry_after_ms);
            }
            Response::Draining { request_id } => {
                out.push(TAG_DRAINING);
                put_u64(&mut out, *request_id);
            }
            Response::DeadlineExceeded { request_id } => {
                out.push(TAG_DEADLINE);
                put_u64(&mut out, *request_id);
            }
            Response::Error {
                request_id,
                message,
            } => {
                out.push(TAG_ERROR);
                put_u64(&mut out, *request_id);
                put_str(&mut out, message);
            }
            Response::ShutdownAck => out.push(TAG_SHUTDOWN_ACK),
            Response::Stats(s) => {
                out.push(TAG_STATS);
                put_u32(&mut out, s.version);
                put_u64(&mut out, s.uptime_ms);
                out.push(s.draining as u8);
                put_u64(&mut out, s.inflight);
                put_u64(&mut out, s.queue_depth);
                put_u64(&mut out, s.drained_reads);
                // f64 travels as raw IEEE bits so the snapshot a client
                // decodes is bit-identical to what the server measured.
                put_u64(&mut out, s.drain_ewma_reads_per_s.to_bits());
                put_u64(&mut out, s.accepted);
                put_u64(&mut out, s.rejected);
                put_u64(&mut out, s.deadline_shed);
                put_u64(&mut out, s.fairness_shed);
                put_u64(&mut out, s.force_closed);
                put_u64(&mut out, s.generation);
                put_u64(&mut out, s.reloads);
                put_u64(&mut out, s.rollbacks);
                put_u32(&mut out, s.clients.len() as u32);
                for cl in &s.clients {
                    put_str(&mut out, &cl.client_id);
                    put_u64(&mut out, cl.accepted);
                    put_u64(&mut out, cl.rejected);
                    put_u64(&mut out, cl.deadline_shed);
                    put_u64(&mut out, cl.fairness_shed);
                    put_u64(&mut out, cl.tokens.to_bits());
                    put_u64(&mut out, cl.weight.to_bits());
                }
                put_u32(&mut out, s.latency.len() as u32);
                for lat in &s.latency {
                    put_str(&mut out, &lat.name);
                    put_u64(&mut out, lat.count);
                    put_u64(&mut out, lat.sum_us);
                    put_u64(&mut out, lat.min_us);
                    put_u64(&mut out, lat.max_us);
                    put_u64(&mut out, lat.p50_us);
                    put_u64(&mut out, lat.p90_us);
                    put_u64(&mut out, lat.p99_us);
                    put_u64(&mut out, lat.p999_us);
                }
            }
            Response::PongV2(p) => {
                out.push(TAG_PONG_V2);
                out.push(p.ready as u8);
                out.push(p.draining as u8);
                put_u64(&mut out, p.queue_depth);
                put_u64(&mut out, p.drain_ewma_reads_per_s.to_bits());
                put_u64(&mut out, p.generation);
            }
            Response::AuthFailed { request_id } => {
                out.push(TAG_AUTH_FAILED);
                put_u64(&mut out, *request_id);
            }
            Response::ShardCandidates {
                request_id,
                generation,
                candidates,
            } => {
                out.push(TAG_SHARD_CANDIDATES);
                put_u64(&mut out, *request_id);
                put_u64(&mut out, *generation);
                put_u32(&mut out, candidates.len() as u32);
                for per_read in candidates {
                    put_u32(&mut out, per_read.len() as u32);
                    for cand in per_read {
                        put_u32(&mut out, cand.contig);
                        put_u32(&mut out, cand.offset);
                        out.push(cand.reverse as u8);
                        put_u32(&mut out, cand.votes);
                        match cand.mismatches {
                            None => out.push(0),
                            Some(mm) => {
                                out.push(1);
                                put_u32(&mut out, mm);
                            }
                        }
                    }
                }
            }
            Response::AuthNonce { nonce } => {
                out.push(TAG_AUTH_NONCE);
                put_u64(&mut out, *nonce);
            }
            Response::ReloadDone {
                request_id,
                generation,
            } => {
                out.push(TAG_RELOAD_DONE);
                put_u64(&mut out, *request_id);
                put_u64(&mut out, *generation);
            }
            Response::ReloadFailed {
                request_id,
                generation,
                message,
            } => {
                out.push(TAG_RELOAD_FAILED);
                put_u64(&mut out, *request_id);
                put_u64(&mut out, *generation);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Parse a frame payload received from `peer`.
    pub fn decode(buf: &[u8], peer: &str) -> crate::Result<Response> {
        let mut c = Cursor::new(buf, peer);
        let resp = match c.u8("response tag")? {
            TAG_HITS => {
                let request_id = c.u64("request id")?;
                let generation = c.u64("generation")?;
                let n = c.u32("hit count")? as usize;
                let mut hits = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    match c.u8("hit presence")? {
                        0 => hits.push(None),
                        1 => {
                            let contig = c.u32("hit contig")?;
                            let offset = c.u32("hit offset")?;
                            let reverse = match c.u8("hit strand")? {
                                0 => false,
                                1 => true,
                                b => return Err(c.corrupt(format!("bad strand byte {b}"))),
                            };
                            let mismatches = c.u32("hit mismatches")?;
                            let votes = c.u32("hit votes")?;
                            hits.push(Some(Hit {
                                contig,
                                offset,
                                reverse,
                                mismatches,
                                votes,
                            }));
                        }
                        b => return Err(c.corrupt(format!("bad hit presence byte {b}"))),
                    }
                }
                Response::Hits {
                    request_id,
                    generation,
                    hits,
                }
            }
            TAG_PONG => {
                let ready = c.u8("ready flag")? != 0;
                let draining = c.u8("draining flag")? != 0;
                Response::Pong { ready, draining }
            }
            TAG_OVERLOADED => {
                let request_id = c.u64("request id")?;
                let scope = match c.u8("shed scope")? {
                    0 => ShedScope::Queue,
                    1 => ShedScope::Fairness,
                    b => return Err(c.corrupt(format!("bad shed scope {b}"))),
                };
                let queued = c.u64("queued")?;
                let limit = c.u64("limit")?;
                let retry_after_ms = c.u32("retry_after_ms")?;
                Response::Overloaded {
                    request_id,
                    scope,
                    queued,
                    limit,
                    retry_after_ms,
                }
            }
            TAG_DRAINING => Response::Draining {
                request_id: c.u64("request id")?,
            },
            TAG_DEADLINE => Response::DeadlineExceeded {
                request_id: c.u64("request id")?,
            },
            TAG_ERROR => {
                let request_id = c.u64("request id")?;
                let message = c.string("error message")?;
                Response::Error {
                    request_id,
                    message,
                }
            }
            TAG_SHUTDOWN_ACK => Response::ShutdownAck,
            TAG_STATS => {
                let version = c.u32("stats version")?;
                let uptime_ms = c.u64("uptime")?;
                let draining = c.u8("draining flag")? != 0;
                let inflight = c.u64("inflight")?;
                let queue_depth = c.u64("queue depth")?;
                let drained_reads = c.u64("drained reads")?;
                let drain_ewma_reads_per_s = f64::from_bits(c.u64("drain ewma")?);
                let accepted = c.u64("accepted")?;
                let rejected = c.u64("rejected")?;
                let deadline_shed = c.u64("deadline shed")?;
                let fairness_shed = c.u64("fairness shed")?;
                let force_closed = c.u64("force closed")?;
                let generation = c.u64("generation")?;
                let reloads = c.u64("reloads")?;
                let rollbacks = c.u64("rollbacks")?;
                let n_clients = c.u32("client count")? as usize;
                if n_clients > MAX_STATS_ROWS {
                    return Err(c.corrupt(format!("client count {n_clients} is absurd")));
                }
                let mut clients = Vec::with_capacity(n_clients);
                for _ in 0..n_clients {
                    clients.push(ClientStats {
                        client_id: c.string("client id")?,
                        accepted: c.u64("client accepted")?,
                        rejected: c.u64("client rejected")?,
                        deadline_shed: c.u64("client deadline shed")?,
                        fairness_shed: c.u64("client fairness shed")?,
                        tokens: f64::from_bits(c.u64("client tokens")?),
                        weight: f64::from_bits(c.u64("client weight")?),
                    });
                }
                let n_lat = c.u32("latency count")? as usize;
                if n_lat > MAX_STATS_ROWS {
                    return Err(c.corrupt(format!("latency count {n_lat} is absurd")));
                }
                let mut latency = Vec::with_capacity(n_lat);
                for _ in 0..n_lat {
                    latency.push(LatencySummary {
                        name: c.string("latency name")?,
                        count: c.u64("latency count")?,
                        sum_us: c.u64("latency sum")?,
                        min_us: c.u64("latency min")?,
                        max_us: c.u64("latency max")?,
                        p50_us: c.u64("latency p50")?,
                        p90_us: c.u64("latency p90")?,
                        p99_us: c.u64("latency p99")?,
                        p999_us: c.u64("latency p999")?,
                    });
                }
                Response::Stats(StatsSnapshot {
                    version,
                    uptime_ms,
                    draining,
                    inflight,
                    queue_depth,
                    drained_reads,
                    drain_ewma_reads_per_s,
                    accepted,
                    rejected,
                    deadline_shed,
                    fairness_shed,
                    force_closed,
                    generation,
                    reloads,
                    rollbacks,
                    clients,
                    latency,
                })
            }
            TAG_PONG_V2 => {
                let ready = c.u8("ready flag")? != 0;
                let draining = c.u8("draining flag")? != 0;
                let queue_depth = c.u64("queue depth")?;
                let drain_ewma_reads_per_s = f64::from_bits(c.u64("drain ewma")?);
                let generation = c.u64("generation")?;
                Response::PongV2(PongStatus {
                    ready,
                    draining,
                    queue_depth,
                    drain_ewma_reads_per_s,
                    generation,
                })
            }
            TAG_AUTH_FAILED => Response::AuthFailed {
                request_id: c.u64("request id")?,
            },
            TAG_SHARD_CANDIDATES => {
                let request_id = c.u64("request id")?;
                let generation = c.u64("generation")?;
                let n = c.u32("candidate list count")? as usize;
                let mut candidates = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let m = c.u32("candidate count")? as usize;
                    let mut per_read = Vec::with_capacity(m.min(1 << 20));
                    for _ in 0..m {
                        let contig = c.u32("candidate contig")?;
                        let offset = c.u32("candidate offset")?;
                        let reverse = match c.u8("candidate strand")? {
                            0 => false,
                            1 => true,
                            b => return Err(c.corrupt(format!("bad strand byte {b}"))),
                        };
                        let votes = c.u32("candidate votes")?;
                        let mismatches = match c.u8("candidate verdict")? {
                            0 => None,
                            1 => Some(c.u32("candidate mismatches")?),
                            b => return Err(c.corrupt(format!("bad verdict byte {b}"))),
                        };
                        per_read.push(Candidate {
                            contig,
                            offset,
                            reverse,
                            votes,
                            mismatches,
                        });
                    }
                    candidates.push(per_read);
                }
                Response::ShardCandidates {
                    request_id,
                    generation,
                    candidates,
                }
            }
            TAG_AUTH_NONCE => Response::AuthNonce {
                nonce: c.u64("auth nonce")?,
            },
            TAG_RELOAD_DONE => Response::ReloadDone {
                request_id: c.u64("request id")?,
                generation: c.u64("generation")?,
            },
            TAG_RELOAD_FAILED => {
                let request_id = c.u64("request id")?;
                let generation = c.u64("generation")?;
                let message = c.string("reload failure message")?;
                Response::ReloadFailed {
                    request_id,
                    generation,
                    message,
                }
            }
            t => return Err(c.corrupt(format!("unknown response tag {t}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(bases: &str) -> PackedSeq {
        bases.parse().expect("valid bases")
    }

    fn roundtrip_req(req: &Request) -> Request {
        Request::decode(&req.encode(), "test-peer").expect("decodes")
    }

    fn roundtrip_resp(resp: &Response) -> Response {
        Response::decode(&resp.encode(), "test-peer").expect("decodes")
    }

    #[test]
    fn requests_roundtrip_including_unaligned_read_lengths() {
        // Lengths 1..=9 cross every packing remainder (len % 4).
        let reads: Vec<PackedSeq> = [
            "A",
            "AC",
            "ACG",
            "ACGT",
            "ACGTA",
            "ACGTAC",
            "ACGTACG",
            "ACGTACGT",
            "ACGTACGTA",
        ]
        .iter()
        .map(|s| seq(s))
        .collect();
        let req = Request::Query {
            request_id: 0xDEAD_BEEF_0123,
            deadline_ms: 1500,
            client_id: "assembler-7".to_string(),
            reads: reads.clone(),
            auth_seq: 3,
            auth_tag: auth_tag(
                "hunter2",
                AUTH_KIND_QUERY,
                0x1234,
                3,
                0xDEAD_BEEF_0123,
                1500,
                "assembler-7",
                &reads,
            ),
            generation: 3,
        };
        assert_eq!(roundtrip_req(&req), req);
        let shard = Request::ShardQuery {
            request_id: 0xBEEF,
            deadline_ms: 900,
            client_id: "router-0".to_string(),
            reads: reads.clone(),
            auth_seq: 0,
            auth_tag: 0,
            generation: 0,
        };
        assert_eq!(roundtrip_req(&shard), shard);
        assert_eq!(roundtrip_req(&Request::Ping), Request::Ping);
        assert_eq!(roundtrip_req(&Request::Shutdown), Request::Shutdown);
        assert_eq!(roundtrip_req(&Request::Stats), Request::Stats);
        assert_eq!(roundtrip_req(&Request::PingV2), Request::PingV2);
        assert_eq!(roundtrip_req(&Request::AuthHello), Request::AuthHello);
        let reload = Request::Reload {
            request_id: 19,
            generation: 4,
        };
        assert_eq!(roundtrip_req(&reload), reload);

        // Empty batch is legal on the wire (the server sheds it cheaply).
        let empty = Request::Query {
            request_id: 1,
            deadline_ms: 0,
            client_id: String::new(),
            reads: Vec::new(),
            auth_seq: 0,
            auth_tag: 0,
            generation: 0,
        };
        assert_eq!(roundtrip_req(&empty), empty);
    }

    #[test]
    fn auth_tag_binds_every_field_and_the_secret() {
        let reads = vec![seq("ACGTACGT")];
        let tag = |secret: &str,
                   kind: u8,
                   nonce: u64,
                   seq_no: u64,
                   rid: u64,
                   dl: u32,
                   cid: &str,
                   reads: &[PackedSeq]| {
            auth_tag(secret, kind, nonce, seq_no, rid, dl, cid, reads)
        };
        let base = tag("s3cret", AUTH_KIND_QUERY, 11, 2, 7, 100, "alpha", &reads);
        // Same inputs, same tag: replay-from-seed depends on this.
        assert_eq!(
            base,
            tag("s3cret", AUTH_KIND_QUERY, 11, 2, 7, 100, "alpha", &reads)
        );
        // Changing any single input must change the tag.
        assert_ne!(
            base,
            tag("other", AUTH_KIND_QUERY, 11, 2, 7, 100, "alpha", &reads)
        );
        assert_ne!(
            base,
            tag(
                "s3cret",
                AUTH_KIND_SHARD_QUERY,
                11,
                2,
                7,
                100,
                "alpha",
                &reads
            )
        );
        assert_ne!(
            base,
            tag("s3cret", AUTH_KIND_QUERY, 12, 2, 7, 100, "alpha", &reads)
        );
        assert_ne!(
            base,
            tag("s3cret", AUTH_KIND_QUERY, 11, 3, 7, 100, "alpha", &reads)
        );
        assert_ne!(
            base,
            tag("s3cret", AUTH_KIND_QUERY, 11, 2, 8, 100, "alpha", &reads)
        );
        assert_ne!(
            base,
            tag("s3cret", AUTH_KIND_QUERY, 11, 2, 7, 101, "alpha", &reads)
        );
        assert_ne!(
            base,
            tag("s3cret", AUTH_KIND_QUERY, 11, 2, 7, 100, "beta", &reads)
        );
        assert_ne!(
            base,
            tag(
                "s3cret",
                AUTH_KIND_QUERY,
                11,
                2,
                7,
                100,
                "alpha",
                &[seq("ACGTACGA")]
            )
        );
    }

    #[test]
    fn responses_roundtrip() {
        let hits = Response::Hits {
            request_id: 42,
            generation: 2,
            hits: vec![
                None,
                Some(Hit {
                    contig: 7,
                    offset: 1234,
                    reverse: true,
                    mismatches: 2,
                    votes: 91,
                }),
                Some(Hit {
                    contig: 0,
                    offset: 0,
                    reverse: false,
                    mismatches: 0,
                    votes: 1,
                }),
            ],
        };
        assert_eq!(roundtrip_resp(&hits), hits);
        for resp in [
            Response::Pong {
                ready: true,
                draining: false,
            },
            Response::Overloaded {
                request_id: 9,
                scope: ShedScope::Fairness,
                queued: 120_000,
                limit: 20_000,
                retry_after_ms: 450,
            },
            Response::Draining { request_id: 3 },
            Response::DeadlineExceeded { request_id: 4 },
            Response::Error {
                request_id: 5,
                message: "index corrupt: bad magic".to_string(),
            },
            Response::ShutdownAck,
            Response::AuthFailed { request_id: 6 },
            Response::AuthNonce { nonce: 0xA1B2_C3D4 },
            Response::ReloadDone {
                request_id: 7,
                generation: 3,
            },
            Response::ReloadFailed {
                request_id: 8,
                generation: 9,
                message: "generation 9: store checksum mismatch".to_string(),
            },
        ] {
            assert_eq!(roundtrip_resp(&resp), resp);
        }
    }

    #[test]
    fn shard_candidates_roundtrip_including_unverified_placements() {
        use qserve::Candidate;
        let resp = Response::ShardCandidates {
            request_id: 77,
            generation: 1,
            candidates: vec![
                Vec::new(), // a read with no votes on this shard
                vec![
                    Candidate {
                        contig: 3,
                        offset: 128,
                        reverse: false,
                        votes: 5,
                        mismatches: Some(1),
                    },
                    Candidate {
                        contig: 9,
                        offset: 0,
                        reverse: true,
                        votes: 1,
                        mismatches: None, // blew the mismatch budget
                    },
                ],
            ],
        };
        assert_eq!(roundtrip_resp(&resp), resp);
    }

    #[test]
    fn stats_and_pong_v2_roundtrip_with_exact_floats() {
        let snap = StatsSnapshot {
            version: STATS_VERSION,
            uptime_ms: 123_456,
            draining: true,
            inflight: 3,
            queue_depth: 17,
            drained_reads: 1_000_000,
            drain_ewma_reads_per_s: 0.1 + 0.2, // not representable cleanly
            accepted: 999_983,
            rejected: 12,
            deadline_shed: 4,
            fairness_shed: 1,
            force_closed: 2,
            generation: 5,
            reloads: 4,
            rollbacks: 1,
            clients: vec![
                ClientStats {
                    client_id: "alpha".into(),
                    accepted: 500_000,
                    rejected: 12,
                    deadline_shed: 0,
                    fairness_shed: 1,
                    tokens: 19_999.875,
                    weight: 2.0,
                },
                ClientStats {
                    client_id: "beta".into(),
                    accepted: 499_983,
                    rejected: 0,
                    deadline_shed: 4,
                    fairness_shed: 0,
                    tokens: 1.0 / 3.0,
                    weight: 1.0,
                },
            ],
            latency: vec![LatencySummary {
                name: "qnet.latency.total".into(),
                count: 999_983,
                sum_us: 88_123_456,
                min_us: 12,
                max_us: 91_011,
                p50_us: 70,
                p90_us: 150,
                p99_us: 4_200,
                p999_us: 88_064,
            }],
        };
        let resp = Response::Stats(snap.clone());
        assert_eq!(roundtrip_resp(&resp), resp);

        // An empty snapshot (fresh server) is legal too.
        let empty = Response::Stats(StatsSnapshot {
            version: STATS_VERSION,
            uptime_ms: 0,
            draining: false,
            inflight: 0,
            queue_depth: 0,
            drained_reads: 0,
            drain_ewma_reads_per_s: 0.0,
            accepted: 0,
            rejected: 0,
            deadline_shed: 0,
            fairness_shed: 0,
            force_closed: 0,
            generation: 0,
            reloads: 0,
            rollbacks: 0,
            clients: Vec::new(),
            latency: Vec::new(),
        });
        assert_eq!(roundtrip_resp(&empty), empty);

        let pong = Response::PongV2(PongStatus {
            ready: true,
            draining: false,
            queue_depth: 42,
            drain_ewma_reads_per_s: 10_000.25,
            generation: 6,
        });
        assert_eq!(roundtrip_resp(&pong), pong);
    }

    #[test]
    fn latency_summary_matches_the_histogram_it_came_from() {
        let mut h = obs::Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = LatencySummary::from_hist("lat", &h);
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 1000);
        assert_eq!(s.p50_us, h.percentile(0.50));
        assert_eq!(s.p90_us, h.percentile(0.90));
        assert_eq!(s.p99_us, h.percentile(0.99));
        assert_eq!(s.p999_us, h.percentile(0.999));
        assert!(s.p50_us <= s.p90_us && s.p90_us <= s.p99_us && s.p99_us <= s.p999_us);
    }

    #[test]
    fn decode_rejects_garbage_with_errors_naming_the_peer() {
        let cases: Vec<(Vec<u8>, &str)> = vec![
            (vec![], "empty payload"),
            (vec![99], "unknown request tag"),
            (vec![TAG_QUERY, 1, 2], "truncated query"),
        ];
        for (buf, what) in cases {
            let err = Request::decode(&buf, "10.0.0.9:5000").expect_err(what);
            match err {
                QnetError::Corrupt { peer, .. } => assert_eq!(peer, "10.0.0.9:5000"),
                other => panic!("expected Corrupt for {what}, got {other:?}"),
            }
        }

        // Trailing bytes after a well-formed message are corruption too.
        let mut buf = Request::Ping.encode();
        buf.push(0);
        let err = Request::decode(&buf, "p").expect_err("trailing byte");
        assert!(matches!(err, QnetError::Corrupt { .. }));

        // A read-count that promises more data than the payload holds
        // must fail cleanly rather than allocate or panic.
        let mut buf = Vec::new();
        buf.push(TAG_QUERY);
        put_u64(&mut buf, 1);
        put_u32(&mut buf, 100);
        put_str(&mut buf, "c");
        put_u32(&mut buf, u32::MAX);
        put_u64(&mut buf, 0);
        let err = Request::decode(&buf, "p").expect_err("absurd read count");
        assert!(matches!(err, QnetError::Corrupt { .. }));
    }

    #[test]
    fn oversized_client_id_is_rejected() {
        let req = Request::Query {
            request_id: 1,
            deadline_ms: 10,
            client_id: "x".repeat(MAX_STRING_BYTES + 1),
            reads: Vec::new(),
            auth_seq: 0,
            auth_tag: 0,
            generation: 0,
        };
        let err = Request::decode(&req.encode(), "p").expect_err("oversized id");
        match err {
            QnetError::Corrupt { detail, .. } => {
                assert!(detail.contains("client id"), "detail: {detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
