//! Wire protocol for the query service: tagged binary messages inside
//! checksummed [`gstream::frame`]s.
//!
//! Every numeric field is little-endian. Reads travel 2-bit packed
//! (four bases per byte, the same packing the contig store uses on
//! disk), so a 10k-read batch of 100-mers is ~250 KiB on the wire, not
//! a megabyte. Each request carries a `request_id` that the response
//! must echo; the client rejects any response whose id does not match
//! the request it just sent, so a desynchronized or replayed stream can
//! never produce a misattributed answer — it produces
//! [`QnetError::Corrupt`](crate::QnetError::Corrupt) and a reconnect.
//!
//! Decoding is strict: unknown tags, truncated fields, over-long
//! strings, and trailing bytes are all `Corrupt` naming the peer. The
//! framing layer has already checksummed the payload, so a decode
//! failure here means a protocol bug or a hostile peer, not line noise.

use crate::QnetError;
use genome::PackedSeq;
use qserve::Hit;

/// Which admission gate shed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedScope {
    /// The shared worker queue was full ([`qserve::QserveError::Overloaded`]).
    Queue,
    /// The per-client token bucket was empty ([`qserve::FairShed`]).
    Fairness,
}

impl std::fmt::Display for ShedScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedScope::Queue => write!(f, "queue"),
            ShedScope::Fairness => write!(f, "per-client fairness"),
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up a batch of reads against the contig index.
    Query {
        /// Client-chosen id echoed verbatim in the response.
        request_id: u64,
        /// Remaining deadline budget in milliseconds; `0` means the
        /// budget is already spent and the batch must be shed.
        deadline_ms: u32,
        /// Stable client identity used for fair admission and
        /// per-client trace attribution.
        client_id: String,
        /// The reads to place.
        reads: Vec<PackedSeq>,
    },
    /// Health/readiness probe; always answered, even mid-drain.
    Ping,
    /// Ask the server to begin a graceful drain.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Per-read placements, aligned with the request's `reads`.
    Hits {
        /// Echo of the request's id.
        request_id: u64,
        /// `None` for reads that placed nowhere.
        hits: Vec<Option<Hit>>,
    },
    /// Probe answer.
    Pong {
        /// True when the server is accepting queries.
        ready: bool,
        /// True when a graceful drain is underway.
        draining: bool,
    },
    /// The batch was shed at an admission gate; nothing was processed.
    Overloaded {
        /// Echo of the request's id.
        request_id: u64,
        /// Which gate shed the batch.
        scope: ShedScope,
        /// Load observed at the gate.
        queued: u64,
        /// The gate's limit.
        limit: u64,
        /// When the same batch would likely be admitted.
        retry_after_ms: u32,
    },
    /// The server is draining and admits no new queries.
    Draining {
        /// Echo of the request's id.
        request_id: u64,
    },
    /// The request's deadline budget was spent before a worker saw it.
    DeadlineExceeded {
        /// Echo of the request's id.
        request_id: u64,
    },
    /// The server failed to process the batch.
    Error {
        /// Echo of the request's id.
        request_id: u64,
        /// Display of the server-side error.
        message: String,
    },
    /// Acknowledgement that a graceful drain has begun.
    ShutdownAck,
}

const TAG_QUERY: u8 = 1;
const TAG_PING: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;

const TAG_HITS: u8 = 1;
const TAG_PONG: u8 = 2;
const TAG_OVERLOADED: u8 = 3;
const TAG_DRAINING: u8 = 4;
const TAG_DEADLINE: u8 = 5;
const TAG_ERROR: u8 = 6;
const TAG_SHUTDOWN_ACK: u8 = 7;

/// Longest client id / error message accepted on the wire.
const MAX_STRING_BYTES: usize = 4096;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append `seq` 2-bit packed: base count, then `ceil(len/4)` bytes with
/// the earliest base in the low bits.
fn put_seq(out: &mut Vec<u8>, seq: &PackedSeq) {
    let codes = seq.to_codes();
    put_u32(out, codes.len() as u32);
    let mut byte = 0u8;
    for (i, code) in codes.iter().enumerate() {
        byte |= (code & 3) << (2 * (i % 4));
        if i % 4 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !codes.is_empty() && codes.len() % 4 != 0 {
        out.push(byte);
    }
}

/// Bounds-checked reader over a decoded frame payload; every overrun is
/// a `Corrupt` error naming the peer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    peer: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], peer: &'a str) -> Self {
        Cursor { buf, pos: 0, peer }
    }

    fn corrupt(&self, detail: impl Into<String>) -> QnetError {
        QnetError::Corrupt {
            peer: self.peer.to_string(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> crate::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(self.corrupt(format!(
                "message truncated reading {what}: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> crate::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> crate::Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> crate::Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> crate::Result<String> {
        let len = self.u32(what)? as usize;
        if len > MAX_STRING_BYTES {
            return Err(self.corrupt(format!("{what} length {len} exceeds {MAX_STRING_BYTES}")));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt(format!("{what} is not valid UTF-8")))
    }

    fn seq(&mut self) -> crate::Result<PackedSeq> {
        let n_bases = self.u32("read length")? as usize;
        let n_bytes = n_bases.div_ceil(4);
        let packed = self.take(n_bytes, "read bases")?;
        let mut codes = Vec::with_capacity(n_bases);
        for i in 0..n_bases {
            codes.push((packed[i / 4] >> (2 * (i % 4))) & 3);
        }
        Ok(PackedSeq::from_codes(&codes))
    }

    fn finish(&self) -> crate::Result<()> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after message end",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Request {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Query {
                request_id,
                deadline_ms,
                client_id,
                reads,
            } => {
                out.push(TAG_QUERY);
                put_u64(&mut out, *request_id);
                put_u32(&mut out, *deadline_ms);
                put_str(&mut out, client_id);
                put_u32(&mut out, reads.len() as u32);
                for r in reads {
                    put_seq(&mut out, r);
                }
            }
            Request::Ping => out.push(TAG_PING),
            Request::Shutdown => out.push(TAG_SHUTDOWN),
        }
        out
    }

    /// Parse a frame payload received from `peer`.
    pub fn decode(buf: &[u8], peer: &str) -> crate::Result<Request> {
        let mut c = Cursor::new(buf, peer);
        let req = match c.u8("request tag")? {
            TAG_QUERY => {
                let request_id = c.u64("request id")?;
                let deadline_ms = c.u32("deadline")?;
                let client_id = c.string("client id")?;
                let n = c.u32("read count")? as usize;
                let mut reads = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    reads.push(c.seq()?);
                }
                Request::Query {
                    request_id,
                    deadline_ms,
                    client_id,
                    reads,
                }
            }
            TAG_PING => Request::Ping,
            TAG_SHUTDOWN => Request::Shutdown,
            t => return Err(c.corrupt(format!("unknown request tag {t}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

fn put_scope(out: &mut Vec<u8>, scope: ShedScope) {
    out.push(match scope {
        ShedScope::Queue => 0,
        ShedScope::Fairness => 1,
    });
}

impl Response {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Hits { request_id, hits } => {
                out.push(TAG_HITS);
                put_u64(&mut out, *request_id);
                put_u32(&mut out, hits.len() as u32);
                for h in hits {
                    match h {
                        None => out.push(0),
                        Some(h) => {
                            out.push(1);
                            put_u32(&mut out, h.contig);
                            put_u32(&mut out, h.offset);
                            out.push(h.reverse as u8);
                            put_u32(&mut out, h.mismatches);
                            put_u32(&mut out, h.votes);
                        }
                    }
                }
            }
            Response::Pong { ready, draining } => {
                out.push(TAG_PONG);
                out.push(*ready as u8);
                out.push(*draining as u8);
            }
            Response::Overloaded {
                request_id,
                scope,
                queued,
                limit,
                retry_after_ms,
            } => {
                out.push(TAG_OVERLOADED);
                put_u64(&mut out, *request_id);
                put_scope(&mut out, *scope);
                put_u64(&mut out, *queued);
                put_u64(&mut out, *limit);
                put_u32(&mut out, *retry_after_ms);
            }
            Response::Draining { request_id } => {
                out.push(TAG_DRAINING);
                put_u64(&mut out, *request_id);
            }
            Response::DeadlineExceeded { request_id } => {
                out.push(TAG_DEADLINE);
                put_u64(&mut out, *request_id);
            }
            Response::Error {
                request_id,
                message,
            } => {
                out.push(TAG_ERROR);
                put_u64(&mut out, *request_id);
                put_str(&mut out, message);
            }
            Response::ShutdownAck => out.push(TAG_SHUTDOWN_ACK),
        }
        out
    }

    /// Parse a frame payload received from `peer`.
    pub fn decode(buf: &[u8], peer: &str) -> crate::Result<Response> {
        let mut c = Cursor::new(buf, peer);
        let resp = match c.u8("response tag")? {
            TAG_HITS => {
                let request_id = c.u64("request id")?;
                let n = c.u32("hit count")? as usize;
                let mut hits = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    match c.u8("hit presence")? {
                        0 => hits.push(None),
                        1 => {
                            let contig = c.u32("hit contig")?;
                            let offset = c.u32("hit offset")?;
                            let reverse = match c.u8("hit strand")? {
                                0 => false,
                                1 => true,
                                b => return Err(c.corrupt(format!("bad strand byte {b}"))),
                            };
                            let mismatches = c.u32("hit mismatches")?;
                            let votes = c.u32("hit votes")?;
                            hits.push(Some(Hit {
                                contig,
                                offset,
                                reverse,
                                mismatches,
                                votes,
                            }));
                        }
                        b => return Err(c.corrupt(format!("bad hit presence byte {b}"))),
                    }
                }
                Response::Hits { request_id, hits }
            }
            TAG_PONG => {
                let ready = c.u8("ready flag")? != 0;
                let draining = c.u8("draining flag")? != 0;
                Response::Pong { ready, draining }
            }
            TAG_OVERLOADED => {
                let request_id = c.u64("request id")?;
                let scope = match c.u8("shed scope")? {
                    0 => ShedScope::Queue,
                    1 => ShedScope::Fairness,
                    b => return Err(c.corrupt(format!("bad shed scope {b}"))),
                };
                let queued = c.u64("queued")?;
                let limit = c.u64("limit")?;
                let retry_after_ms = c.u32("retry_after_ms")?;
                Response::Overloaded {
                    request_id,
                    scope,
                    queued,
                    limit,
                    retry_after_ms,
                }
            }
            TAG_DRAINING => Response::Draining {
                request_id: c.u64("request id")?,
            },
            TAG_DEADLINE => Response::DeadlineExceeded {
                request_id: c.u64("request id")?,
            },
            TAG_ERROR => {
                let request_id = c.u64("request id")?;
                let message = c.string("error message")?;
                Response::Error {
                    request_id,
                    message,
                }
            }
            TAG_SHUTDOWN_ACK => Response::ShutdownAck,
            t => return Err(c.corrupt(format!("unknown response tag {t}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(bases: &str) -> PackedSeq {
        bases.parse().expect("valid bases")
    }

    fn roundtrip_req(req: &Request) -> Request {
        Request::decode(&req.encode(), "test-peer").expect("decodes")
    }

    fn roundtrip_resp(resp: &Response) -> Response {
        Response::decode(&resp.encode(), "test-peer").expect("decodes")
    }

    #[test]
    fn requests_roundtrip_including_unaligned_read_lengths() {
        // Lengths 1..=9 cross every packing remainder (len % 4).
        let reads: Vec<PackedSeq> = [
            "A",
            "AC",
            "ACG",
            "ACGT",
            "ACGTA",
            "ACGTAC",
            "ACGTACG",
            "ACGTACGT",
            "ACGTACGTA",
        ]
        .iter()
        .map(|s| seq(s))
        .collect();
        let req = Request::Query {
            request_id: 0xDEAD_BEEF_0123,
            deadline_ms: 1500,
            client_id: "assembler-7".to_string(),
            reads: reads.clone(),
        };
        assert_eq!(roundtrip_req(&req), req);
        assert_eq!(roundtrip_req(&Request::Ping), Request::Ping);
        assert_eq!(roundtrip_req(&Request::Shutdown), Request::Shutdown);

        // Empty batch is legal on the wire (the server sheds it cheaply).
        let empty = Request::Query {
            request_id: 1,
            deadline_ms: 0,
            client_id: String::new(),
            reads: Vec::new(),
        };
        assert_eq!(roundtrip_req(&empty), empty);
    }

    #[test]
    fn responses_roundtrip() {
        let hits = Response::Hits {
            request_id: 42,
            hits: vec![
                None,
                Some(Hit {
                    contig: 7,
                    offset: 1234,
                    reverse: true,
                    mismatches: 2,
                    votes: 91,
                }),
                Some(Hit {
                    contig: 0,
                    offset: 0,
                    reverse: false,
                    mismatches: 0,
                    votes: 1,
                }),
            ],
        };
        assert_eq!(roundtrip_resp(&hits), hits);
        for resp in [
            Response::Pong {
                ready: true,
                draining: false,
            },
            Response::Overloaded {
                request_id: 9,
                scope: ShedScope::Fairness,
                queued: 120_000,
                limit: 20_000,
                retry_after_ms: 450,
            },
            Response::Draining { request_id: 3 },
            Response::DeadlineExceeded { request_id: 4 },
            Response::Error {
                request_id: 5,
                message: "index corrupt: bad magic".to_string(),
            },
            Response::ShutdownAck,
        ] {
            assert_eq!(roundtrip_resp(&resp), resp);
        }
    }

    #[test]
    fn decode_rejects_garbage_with_errors_naming_the_peer() {
        let cases: Vec<(Vec<u8>, &str)> = vec![
            (vec![], "empty payload"),
            (vec![99], "unknown request tag"),
            (vec![TAG_QUERY, 1, 2], "truncated query"),
        ];
        for (buf, what) in cases {
            let err = Request::decode(&buf, "10.0.0.9:5000").expect_err(what);
            match err {
                QnetError::Corrupt { peer, .. } => assert_eq!(peer, "10.0.0.9:5000"),
                other => panic!("expected Corrupt for {what}, got {other:?}"),
            }
        }

        // Trailing bytes after a well-formed message are corruption too.
        let mut buf = Request::Ping.encode();
        buf.push(0);
        let err = Request::decode(&buf, "p").expect_err("trailing byte");
        assert!(matches!(err, QnetError::Corrupt { .. }));

        // A read-count that promises more data than the payload holds
        // must fail cleanly rather than allocate or panic.
        let mut buf = Vec::new();
        buf.push(TAG_QUERY);
        put_u64(&mut buf, 1);
        put_u32(&mut buf, 100);
        put_str(&mut buf, "c");
        put_u32(&mut buf, u32::MAX);
        let err = Request::decode(&buf, "p").expect_err("absurd read count");
        assert!(matches!(err, QnetError::Corrupt { .. }));
    }

    #[test]
    fn oversized_client_id_is_rejected() {
        let req = Request::Query {
            request_id: 1,
            deadline_ms: 10,
            client_id: "x".repeat(MAX_STRING_BYTES + 1),
            reads: Vec::new(),
        };
        let err = Request::decode(&req.encode(), "p").expect_err("oversized id");
        match err {
            QnetError::Corrupt { detail, .. } => {
                assert!(detail.contains("client id"), "detail: {detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
