//! Reduce phase: overlap detection and greedy graph building (Section
//! III-C, Algorithm 2).
//!
//! For each overlap length `l` (processed in **descending** order so the
//! greedy rule keeps the longest overlap per vertex), the sorted suffix and
//! prefix partitions are streamed through co-advancing windows. The windows
//! are resized to cover the same key range (`LOWER_BOUND` of the smaller of
//! the two last keys), then the device computes for every suffix
//! fingerprint its lower bound `L`, upper bound `U`, and count `C = U − L`
//! in the prefix window, and the host walks `C` adding candidate edges
//! `(suffix-vertex, prefix-vertex, l)` through the bit-vector guard.
//!
//! One corner the paper's pseudo-code elides ("this check is omitted from
//! the pseudo-code for brevity"): when an entire window holds a single
//! fingerprint, the `LOWER_BOUND` resize makes no progress. We then gather
//! *all* occurrences of that fingerprint from both streams (they number
//! ~coverage, far below any window) and join them directly.

use crate::config::AssemblyConfig;
use crate::graph::StringGraph;
use crate::Result;
use genome::readset::VertexId;
use gstream::spill::{PartitionKind, SpillDir};
use gstream::{HostMem, KvPair, RecordReader};
use serde::{Deserialize, Serialize};
use vgpu::Device;

/// Outcome of the reduce phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReducePhaseReport {
    /// Candidate edges offered to the graph.
    pub candidates: u64,
    /// Edges accepted (complement pairs count once here).
    pub accepted: u64,
    /// Per-length `(candidates, accepted)` in descending length order.
    pub per_length: Vec<(u32, u64, u64)>,
}

/// Stream one window's worth of pairs, tracking exhaustion.
struct Window<'a> {
    buf: Vec<KvPair>,
    reader: &'a mut RecordReader,
}

impl<'a> Window<'a> {
    fn new(reader: &'a mut RecordReader) -> Self {
        Window {
            buf: Vec::new(),
            reader,
        }
    }

    fn refill(&mut self, target: usize) -> Result<()> {
        if self.buf.len() < target {
            let more = self.reader.next_chunk(target - self.buf.len())?;
            self.buf.extend(more);
        }
        Ok(())
    }

    fn exhausted(&self) -> bool {
        self.reader.remaining() == 0
    }

    fn last_key(&self) -> u128 {
        self.buf.last().expect("non-empty window").key
    }

    /// Extend the window until its last key differs from `key` or the
    /// stream ends (the all-equal-window escape hatch).
    fn gather_all_of(&mut self, key: u128, step: usize) -> Result<()> {
        while !self.exhausted() && self.last_key() == key {
            let more = self.reader.next_chunk(step.max(1))?;
            if more.is_empty() {
                break;
            }
            self.buf.extend(more);
        }
        Ok(())
    }
}

/// Join one sorted suffix/prefix partition pair, invoking `on_candidate`
/// for every fingerprint match `(suffix-vertex, prefix-vertex)` in stream
/// order. Returns the candidate count. The callback form lets the
/// single-node reduce feed the graph directly while the distributed reduce
/// collects candidates to apply under the bit-vector token (Section
/// III-E3).
pub fn join_partition(
    device: &Device,
    sfx: &mut RecordReader,
    pfx: &mut RecordReader,
    window_pairs: usize,
    on_candidate: impl FnMut(VertexId, VertexId),
) -> Result<u64> {
    let mut advances = 0u64;
    join_partition_counting(device, sfx, pfx, window_pairs, &mut advances, on_candidate)
}

/// [`join_partition`] that also counts co-advancing window rounds into
/// `advances` (one per `LOWER_BOUND` cut), for the reduce phase's
/// `reduce.window_advances` counter.
fn join_partition_counting(
    device: &Device,
    sfx: &mut RecordReader,
    pfx: &mut RecordReader,
    window_pairs: usize,
    advances: &mut u64,
    mut on_candidate: impl FnMut(VertexId, VertexId),
) -> Result<u64> {
    let half = (window_pairs / 2).max(2);
    let mut ws = Window::new(sfx);
    let mut wp = Window::new(pfx);
    let mut candidates = 0u64;

    loop {
        ws.refill(half)?;
        wp.refill(half)?;
        if ws.buf.is_empty() || wp.buf.is_empty() {
            // No further matches are possible: suffixes without prefixes
            // (or vice versa) produce no edges.
            break;
        }
        *advances += 1;

        // f ← MIN_KEY(S_{M/2}, P_{M/2}); cut both windows at LOWER_BOUND(f).
        let f = ws.last_key().min(wp.last_key());
        let mut cut_s = ws.buf.partition_point(|p| p.key < f);
        let mut cut_p = wp.buf.partition_point(|p| p.key < f);

        // Deferring the trailing run of f to the next round is only valid
        // while more of f may still arrive. Include f now when (a) the
        // stream owning the run is exhausted, or (b) neither cut made
        // progress (both windows are a single fingerprint). Either way the
        // *complete* run of f must enter both windows, so gather it from
        // any stream that still ends in f.
        let include_f = (ws.exhausted() && ws.last_key() == f)
            || (wp.exhausted() && wp.last_key() == f)
            || (cut_s == 0 && cut_p == 0);
        if include_f {
            ws.gather_all_of(f, half)?;
            wp.gather_all_of(f, half)?;
            cut_s = ws.buf.partition_point(|p| p.key <= f);
            cut_p = wp.buf.partition_point(|p| p.key <= f);
        }

        if cut_s > 0 && cut_p > 0 {
            candidates += join_windows(
                device,
                &ws.buf[..cut_s],
                &wp.buf[..cut_p],
                &mut on_candidate,
            )?;
        }
        ws.buf.drain(..cut_s);
        wp.buf.drain(..cut_p);
    }
    Ok(candidates)
}

/// Lines 8-17 of Algorithm 2: vectorized bounds on the device, candidate
/// emission on the host.
///
/// Windows normally fit the device, but the all-equal-fingerprint escape
/// hatch can grow them arbitrarily (a fingerprint shared by thousands of
/// reads at high coverage), so both sides are tiled: the prefix window is
/// split into contiguous segments, each loaded once, and occurrence counts
/// are summed across segments (bounds in a segmented sorted array are
/// additive).
fn join_windows(
    device: &Device,
    s: &[KvPair],
    p: &[KvPair],
    on_candidate: &mut impl FnMut(VertexId, VertexId),
) -> Result<u64> {
    // Per resident pair: 16 B suffix key + 16 B prefix key + 3×4 B bounds
    // outputs; budget 80% of the free device memory, split evenly.
    let free = device.capacity().saturating_sub(device.stats().mem_used) as usize;
    let tile = (free * 8 / 10 / 2 / 28).max(16);

    let mut candidates = 0u64;
    for p_seg in p.chunks(tile.max(1)) {
        let p_keys: Vec<u128> = p_seg.iter().map(|kv| kv.key).collect();
        let dp = device.h2d(&p_keys)?;
        for s_chunk in s.chunks(tile.max(1)) {
            let s_keys: Vec<u128> = s_chunk.iter().map(|kv| kv.key).collect();
            let ds = device.h2d(&s_keys)?;
            let lower = device.vec_lower_bound(&ds, &dp)?;
            let upper = device.vec_upper_bound(&ds, &dp)?;
            let diff = device.vec_difference(&upper, &lower)?;
            let lower = device.d2h(&lower);
            let counts = device.d2h(&diff);
            for (i, kv) in s_chunk.iter().enumerate() {
                let c = counts[i];
                if c == 0 {
                    continue;
                }
                let u: VertexId = kv.val;
                for j in lower[i]..lower[i] + c {
                    let v: VertexId = p_seg[j as usize].val;
                    candidates += 1;
                    on_candidate(u, v);
                }
            }
        }
    }
    Ok(candidates)
}

/// Window budget for the reduce join: the paper reads M/2 pairs per side
/// with M sized to working memory, and both windows are loaded into the
/// device for the vectorized bounds (keys 2×16 B plus three u32 outputs
/// per suffix, doubled for headroom ⇒ ~88 B per resident pair). Reduce
/// uses far less host memory than sort (Tables IV/V), so a quarter of the
/// host budget caps the host side.
pub fn window_budget(host: &HostMem, device: &Device) -> usize {
    let host_cap = host.capacity() as usize / KvPair::BYTES / 4;
    let device_cap = device.capacity() as usize / 88;
    host_cap.min(device_cap).max(4)
}

/// Run the reduce phase over all partitions, longest overlaps first.
pub fn run(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    graph: &mut StringGraph,
) -> Result<ReducePhaseReport> {
    run_traced(
        device,
        host,
        spill,
        config,
        graph,
        &obs::Recorder::disabled(),
    )
}

/// [`run`] with structured events: each overlap length joins under its
/// own span (`len_00045`, …) carrying `reduce.candidates`,
/// `reduce.accepted`, `reduce.rejected` (guard-refused edges), and
/// `reduce.window_advances`.
pub fn run_traced(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    graph: &mut StringGraph,
    rec: &obs::Recorder,
) -> Result<ReducePhaseReport> {
    let window_pairs = window_budget(host, device);
    let mut report = ReducePhaseReport::default();

    for len in (config.l_min..config.l_max).rev() {
        let s_path = spill.path(PartitionKind::Suffix, len);
        let p_path = spill.path(PartitionKind::Prefix, len);
        if !s_path.exists() || !p_path.exists() {
            continue;
        }
        let span = rec.span(&format!("len_{len:05}"));
        let _guard = host.reserve((window_pairs * KvPair::BYTES) as u64)?;
        let mut sfx = spill.reader(PartitionKind::Suffix, len)?;
        let mut pfx = spill.reader(PartitionKind::Prefix, len)?;
        let mut accepted = 0u64;
        let mut advances = 0u64;
        let c = join_partition_counting(
            device,
            &mut sfx,
            &mut pfx,
            window_pairs,
            &mut advances,
            |u, v| {
                if graph.try_add_edge(u, v, len).is_ok() {
                    accepted += 1;
                }
            },
        )?;
        // The join stops as soon as one stream runs dry, which can leave a
        // tail of the other stream unread; drain both so corruption
        // anywhere in a partition fails loudly here rather than flowing
        // silently into the assembly.
        sfx.verify_to_end()?;
        pfx.verify_to_end()?;
        rec.counter_on(span.id(), "reduce.candidates", c);
        rec.counter_on(span.id(), "reduce.accepted", accepted);
        rec.counter_on(span.id(), "reduce.rejected", c - accepted);
        rec.counter_on(span.id(), "reduce.window_advances", advances);
        drop(span);
        report.candidates += c;
        report.accepted += accepted;
        report.per_length.push((len, c, accepted));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::IoStats;
    use proptest::prelude::*;
    use vgpu::GpuProfile;

    fn setup() -> (tempfile::TempDir, Device, HostMem, SpillDir) {
        let dir = tempfile::tempdir().unwrap();
        let spill = SpillDir::create(dir.path(), IoStats::default()).unwrap();
        let device = Device::new(GpuProfile::k40());
        let host = HostMem::new(1 << 20);
        (dir, device, host, spill)
    }

    fn write_sorted(spill: &SpillDir, kind: PartitionKind, len: u32, pairs: &[(u128, u32)]) {
        let mut sorted = pairs.to_vec();
        sorted.sort();
        let mut w = spill.writer(kind, len).unwrap();
        for (k, v) in sorted {
            w.write(KvPair::new(k, v)).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn matching_fingerprints_become_edges() {
        let (_g, device, host, spill) = setup();
        write_sorted(&spill, PartitionKind::Suffix, 5, &[(100, 0), (200, 2)]);
        write_sorted(&spill, PartitionKind::Prefix, 5, &[(100, 4), (300, 6)]);
        let config = AssemblyConfig::for_dataset(5, 6);
        let mut graph = StringGraph::new(8);
        let report = run(&device, &host, &spill, &config, &mut graph).unwrap();
        assert_eq!(report.candidates, 1);
        assert_eq!(report.accepted, 1);
        assert_eq!(graph.out(0).unwrap().to, 4);
        assert_eq!(graph.out(0).unwrap().overlap, 5);
        graph.check_invariants().unwrap();
    }

    #[test]
    fn longer_overlaps_win_over_shorter_ones() {
        let (_g, device, host, spill) = setup();
        // Vertex 0 matches vertex 4 at length 7 and vertex 6 at length 5.
        write_sorted(&spill, PartitionKind::Suffix, 7, &[(1, 0)]);
        write_sorted(&spill, PartitionKind::Prefix, 7, &[(1, 4)]);
        write_sorted(&spill, PartitionKind::Suffix, 5, &[(2, 0)]);
        write_sorted(&spill, PartitionKind::Prefix, 5, &[(2, 6)]);
        let config = AssemblyConfig::for_dataset(5, 8);
        let mut graph = StringGraph::new(8);
        run(&device, &host, &spill, &config, &mut graph).unwrap();
        assert_eq!(graph.out(0).unwrap().to, 4);
        assert_eq!(graph.out(0).unwrap().overlap, 7);
    }

    #[test]
    fn duplicate_fingerprints_fan_out_candidates_but_greedy_keeps_one() {
        let (_g, device, host, spill) = setup();
        write_sorted(&spill, PartitionKind::Suffix, 5, &[(9, 0)]);
        write_sorted(&spill, PartitionKind::Prefix, 5, &[(9, 2), (9, 4), (9, 6)]);
        let config = AssemblyConfig::for_dataset(5, 6);
        let mut graph = StringGraph::new(8);
        let report = run(&device, &host, &spill, &config, &mut graph).unwrap();
        assert_eq!(report.candidates, 3);
        assert_eq!(report.accepted, 1);
        assert!(graph.out(0).is_some());
    }

    #[test]
    fn all_equal_fingerprint_windows_make_progress() {
        let (_g, device, _host, spill) = setup();
        // Far more occurrences of one fingerprint than a window holds.
        let suffixes: Vec<(u128, u32)> = (0..50).map(|i| (7u128, i * 2)).collect();
        let prefixes: Vec<(u128, u32)> = (0..50).map(|i| (7u128, 100 + i * 2)).collect();
        write_sorted(&spill, PartitionKind::Suffix, 5, &suffixes);
        write_sorted(&spill, PartitionKind::Prefix, 5, &prefixes);
        let config = AssemblyConfig::for_dataset(5, 6);
        // Tiny host budget → window of 4 pairs forces the gather path.
        let host = HostMem::new(16 * KvPair::BYTES as u64 * 4);
        let mut graph = StringGraph::new(256);
        let report = run(&device, &host, &spill, &config, &mut graph).unwrap();
        assert_eq!(report.candidates, 2500);
        assert!(report.accepted >= 50, "accepted {}", report.accepted);
    }

    #[test]
    fn empty_partitions_produce_no_edges() {
        let (_g, device, host, spill) = setup();
        write_sorted(&spill, PartitionKind::Suffix, 5, &[]);
        write_sorted(&spill, PartitionKind::Prefix, 5, &[(1, 0)]);
        let config = AssemblyConfig::for_dataset(5, 6);
        let mut graph = StringGraph::new(4);
        let report = run(&device, &host, &spill, &config, &mut graph).unwrap();
        assert_eq!(report.candidates, 0);
        assert_eq!(graph.edge_count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn join_matches_naive_hash_join(
            s in prop::collection::vec((0u128..30, 0u32..100), 0..60),
            p in prop::collection::vec((0u128..30, 0u32..100), 0..60),
            window_budget in 4usize..32,
        ) {
            let (_g, device, _host, spill) = setup();
            // Vertices must be distinct across the two sides to avoid
            // degenerate self-edges clouding the count; remap.
            let s: Vec<(u128, u32)> = s.iter().map(|&(k, v)| (k, v * 4)).collect();
            let p: Vec<(u128, u32)> = p.iter().map(|&(k, v)| (k, v * 4 + 2)).collect();
            write_sorted(&spill, PartitionKind::Suffix, 5, &s);
            write_sorted(&spill, PartitionKind::Prefix, 5, &p);

            let mut sfx = spill.reader(PartitionKind::Suffix, 5).unwrap();
            let mut pfx = spill.reader(PartitionKind::Prefix, 5).unwrap();
            let mut graph = StringGraph::new(512);
            let candidates = join_partition(&device, &mut sfx, &mut pfx, window_budget, |u, v| {
                let _ = graph.try_add_edge(u, v, 5);
            })
            .unwrap();

            let mut naive = 0u64;
            for (ks, _) in &s {
                naive += p.iter().filter(|(kp, _)| kp == ks).count() as u64;
            }
            prop_assert_eq!(candidates, naive);
            graph.check_invariants().unwrap();
        }
    }
}
