//! Map phase: fingerprint generation and length partitioning (Section
//! III-A).
//!
//! Batches of reads are staged on the device; each read *and its reverse
//! complement* (vertices `2i` / `2i+1`) is fingerprinted — all prefixes via
//! the Hillis-Steele scan, all suffixes derived from them — and the
//! `(fingerprint, vertex)` tuples are routed into per-length partition
//! files. Lengths below `l_min` and the full read length are dropped (the
//! latter would create self-loops).

use crate::config::AssemblyConfig;
use crate::Result;
use fingerprint::{batch_fingerprints, truncate_bits, RabinKarp};
use genome::ReadSet;
use gstream::spill::{PartitionKind, PartitionSet, SpillDir};
use gstream::{HostMem, KvPair};
use std::collections::BTreeMap;
use vgpu::Device;

/// Per-length record counts produced by the map phase.
pub type PartitionCounts = BTreeMap<u32, (u64, u64)>;

/// Run the map phase over all reads: returns
/// `(length → (suffix records, prefix records))`.
pub fn run(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    reads: &ReadSet,
) -> Result<PartitionCounts> {
    run_range(device, host, spill, config, reads, 0, reads.len())
}

/// [`run`] with structured events: `map.batches` plus the per-length
/// `spill.tuples.*` / `spill.bytes` counters on the current span.
pub fn run_traced(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    reads: &ReadSet,
    rec: &obs::Recorder,
) -> Result<PartitionCounts> {
    run_range_traced(device, host, spill, config, reads, 0, reads.len(), rec)
}

/// Map a contiguous block of reads `[start, end)`. Vertex ids stay global
/// (`2 · read-index + strand`), which is what lets the distributed map
/// assign blocks to arbitrary nodes (Section III-E1).
pub fn run_range(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    reads: &ReadSet,
    start: usize,
    end: usize,
) -> Result<PartitionCounts> {
    run_range_traced(
        device,
        host,
        spill,
        config,
        reads,
        start,
        end,
        &obs::Recorder::disabled(),
    )
}

/// [`run_range`] with structured events.
#[allow(clippy::too_many_arguments)]
pub fn run_range_traced(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    reads: &ReadSet,
    start: usize,
    end: usize,
    rec: &obs::Recorder,
) -> Result<PartitionCounts> {
    config.validate()?;
    let n = reads.read_len();
    if n != config.l_max as usize {
        return Err(crate::LasagnaError::BadConfig(format!(
            "reads have length {n} but config.l_max is {}",
            config.l_max
        )));
    }
    if start > end || end > reads.len() {
        return Err(crate::LasagnaError::BadConfig(format!(
            "block [{start}, {end}) out of range for {} reads",
            reads.len()
        )));
    }
    let rk = RabinKarp::new(n);
    let mut partitions =
        PartitionSet::create_split(spill, config.l_min, config.l_max, config.range_split)?;

    // Batch sizing. On the host a batch stages forward + reverse codes
    // (2n bytes per read); on the device it holds those codes plus the
    // prefix and suffix fingerprints of both orientations (2·2·n·16 B per
    // read). The paper allocates "a fixed amount of device memory for each
    // phase regardless of the data size, and the device memory assigned is
    // fully utilized" (Section IV-C2) — so the batch grows until it fills
    // 90% of the device, bounded by half the host budget.
    let per_read_device_bytes = 2 * n + 2 * 2 * n * 16;
    let device_cap = (device.capacity() as usize * 9 / 10 / per_read_device_bytes).max(1);
    let host_cap = (host.capacity() as usize / (n * 2) / 2).max(1);
    let batch_reads = config.map_batch_reads.min(host_cap).min(device_cap);
    let mut codes_buf: Vec<u8> = Vec::new();
    let mut batch: Vec<Vec<u8>> = Vec::with_capacity(batch_reads * 2);

    let mut batches = 0u64;
    let mut read_idx = start;
    while read_idx < end {
        batches += 1;
        let batch_end = (read_idx + batch_reads).min(end);
        // Host staging buffer for the batch: forward + reverse codes; the
        // device holds the batch plus its fingerprint outputs.
        let _host_guard = host.reserve(((batch_end - read_idx) * n * 2) as u64)?;
        let _device_staging = device.alloc::<u8>((batch_end - read_idx) * per_read_device_bytes)?;

        batch.clear();
        for i in read_idx..batch_end {
            reads.read_codes_into(i, &mut codes_buf);
            batch.push(codes_buf.clone()); // vertex 2i (forward)
            let rc: Vec<u8> = codes_buf.iter().rev().map(|&c| c ^ 3).collect();
            batch.push(rc); // vertex 2i + 1 (reverse complement)
        }

        // The reads travel to the device 2-bit packed; the kept tuples come
        // back as (16 B fingerprint + 4 B vertex) per partition entry.
        let kept_lengths = (config.l_max - config.l_min) as u64;
        device.charge_transfer(
            (batch.len() * n) as u64 / 4,
            batch.len() as u64 * kept_lengths * 2 * KvPair::BYTES as u64,
        );

        let out = batch_fingerprints(device, &rk, &batch, config.fingerprint_scheme);

        for (b, (prefix, suffix)) in out.prefix.iter().zip(out.suffix.iter()).enumerate() {
            let vertex = ((read_idx + b / 2) * 2 + (b & 1)) as u32;
            for l in config.l_min..config.l_max {
                // Suffix of length l starts at position n − l; prefix of
                // length l ends at position l − 1.
                let sfx = truncate_bits(suffix[n - l as usize], config.fingerprint_bits);
                let pfx = truncate_bits(prefix[l as usize - 1], config.fingerprint_bits);
                partitions.write(PartitionKind::Suffix, l, KvPair::new(sfx, vertex))?;
                partitions.write(PartitionKind::Prefix, l, KvPair::new(pfx, vertex))?;
            }
        }
        read_idx = batch_end;
    }

    if rec.is_enabled() && batches > 0 {
        rec.counter("map.batches", batches);
    }
    Ok(partitions.finish_traced(rec)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::{GenomeSim, ShotgunSim};
    use gstream::IoStats;
    use vgpu::GpuProfile;

    fn setup() -> (tempfile::TempDir, Device, HostMem, SpillDir) {
        let dir = tempfile::tempdir().unwrap();
        let spill = SpillDir::create(dir.path(), IoStats::default()).unwrap();
        let device = Device::new(GpuProfile::k40());
        let host = HostMem::new(64 << 20);
        (dir, device, host, spill)
    }

    fn tiny_reads() -> ReadSet {
        let genome = GenomeSim::uniform(400, 5).generate();
        ShotgunSim::error_free(20, 4.0, 6).sample(&genome)
    }

    #[test]
    fn map_creates_partitions_with_one_tuple_per_vertex_per_length() {
        let (_g, device, host, spill) = setup();
        let reads = tiny_reads();
        let config = AssemblyConfig::for_dataset(12, 20);
        let counts = run(&device, &host, &spill, &config, &reads).unwrap();
        assert_eq!(counts.len(), 8); // lengths 12..20
        let vertices = reads.vertex_count() as u64;
        for (len, (s, p)) in &counts {
            assert_eq!(*s, vertices, "suffix count at length {len}");
            assert_eq!(*p, vertices, "prefix count at length {len}");
        }
    }

    #[test]
    fn partition_tuples_hash_the_right_substrings() {
        let (_g, device, host, spill) = setup();
        let mut reads = ReadSet::new(8);
        reads.push(&"ACGTACGT".parse().unwrap()).unwrap();
        reads.push(&"TTACGTAC".parse().unwrap()).unwrap();
        let config = AssemblyConfig::for_dataset(5, 8);
        run(&device, &host, &spill, &config, &reads).unwrap();

        let rk = RabinKarp::new(8);
        // Suffix partition at length 6: vertex 0's tuple must equal the
        // direct fingerprint of the last 6 bases of read 0.
        let sfx: Vec<KvPair> = spill
            .reader(PartitionKind::Suffix, 6)
            .unwrap()
            .read_all()
            .unwrap();
        let read0 = reads.read(0).to_codes();
        let expect = rk.fingerprint(&read0[2..]);
        let v0 = sfx.iter().find(|p| p.val == 0).unwrap();
        assert_eq!(v0.key, expect);

        // Prefix partition at length 6: vertex 3 (reverse of read 1).
        let pfx: Vec<KvPair> = spill
            .reader(PartitionKind::Prefix, 6)
            .unwrap()
            .read_all()
            .unwrap();
        let rc1 = reads.read(1).reverse_complement().to_codes();
        let expect = rk.fingerprint(&rc1[..6]);
        let v3 = pfx.iter().find(|p| p.val == 3).unwrap();
        assert_eq!(v3.key, expect);
    }

    #[test]
    fn overlapping_reads_share_fingerprints_across_partitions() {
        let (_g, device, host, spill) = setup();
        let mut reads = ReadSet::new(8);
        // read1's 5-suffix "CGTAC" == read2's 5-prefix.
        reads.push(&"TAACGTAC".parse().unwrap()).unwrap();
        reads.push(&"CGTACTTA".parse().unwrap()).unwrap();
        let config = AssemblyConfig::for_dataset(5, 8);
        run(&device, &host, &spill, &config, &reads).unwrap();
        let sfx = spill
            .reader(PartitionKind::Suffix, 5)
            .unwrap()
            .read_all()
            .unwrap();
        let pfx = spill
            .reader(PartitionKind::Prefix, 5)
            .unwrap()
            .read_all()
            .unwrap();
        let s0 = sfx.iter().find(|p| p.val == 0).unwrap();
        let p2 = pfx.iter().find(|p| p.val == 2).unwrap();
        assert_eq!(s0.key, p2.key, "matching overlap must share a fingerprint");
    }

    #[test]
    fn wrong_read_length_is_rejected() {
        let (_g, device, host, spill) = setup();
        let reads = tiny_reads(); // length 20
        let config = AssemblyConfig::for_dataset(12, 21);
        assert!(run(&device, &host, &spill, &config, &reads).is_err());
    }

    #[test]
    fn empty_read_set_produces_empty_partitions() {
        let (_g, device, host, spill) = setup();
        let reads = ReadSet::new(20);
        let config = AssemblyConfig::for_dataset(12, 20);
        let counts = run(&device, &host, &spill, &config, &reads).unwrap();
        assert!(counts.values().all(|&(s, p)| s == 0 && p == 0));
    }

    #[test]
    fn truncated_fingerprints_lose_low_bits() {
        let (_g, device, host, spill) = setup();
        let reads = tiny_reads();
        let mut config = AssemblyConfig::for_dataset(12, 20);
        config.fingerprint_bits = 16;
        run(&device, &host, &spill, &config, &reads).unwrap();
        let sfx = spill
            .reader(PartitionKind::Suffix, 12)
            .unwrap()
            .read_all()
            .unwrap();
        assert!(sfx.iter().all(|p| p.key < (1 << 16)));
    }

    #[test]
    fn map_charges_device_kernels_and_transfers() {
        let (_g, device, host, spill) = setup();
        let reads = tiny_reads();
        let config = AssemblyConfig::for_dataset(12, 20);
        run(&device, &host, &spill, &config, &reads).unwrap();
        let stats = device.stats();
        assert!(stats.kernel_launches > 0);
        assert!(stats.h2d_bytes > 0);
        assert!(stats.d2h_bytes > 0);
    }
}
