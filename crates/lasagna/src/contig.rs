//! Contig generation (second stage of Section III-D, Fig. 7).
//!
//! Paths are laid out with device scans: an exclusive prefix scan over path
//! lengths gives each path's offset in the flat step array; a scan over
//! overhang lengths gives each step's offset within the contig buffer and
//! each contig's total size. Each `(offset, overhang)` tuple is then routed
//! to the slot of its read-id (the paper's *gather* with the read-id array
//! as stencil), and finally the reads are streamed once, each depositing
//! the first `overhang` bases of its oriented sequence at its offset.

use crate::traverse::Path;
use crate::Result;
use genome::{PackedSeq, ReadSet};
use serde::{Deserialize, Serialize};
use vgpu::Device;

/// Summary statistics over the produced contigs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ContigStats {
    /// Number of contigs (including single-read contigs).
    pub count: u64,
    /// Contigs spelled from ≥ 2 reads.
    pub multi_read: u64,
    /// Total bases across contigs.
    pub total_bases: u64,
    /// Longest contig.
    pub max_len: u64,
    /// N50: length L such that contigs ≥ L cover half the total bases.
    pub n50: u64,
}

impl ContigStats {
    /// Compute statistics from contig lengths.
    pub fn from_lengths(lengths: &[u64], multi_read: u64) -> Self {
        let total: u64 = lengths.iter().sum();
        let mut sorted = lengths.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        let mut n50 = 0u64;
        for &l in &sorted {
            acc += l;
            if acc * 2 >= total {
                n50 = l;
                break;
            }
        }
        ContigStats {
            count: lengths.len() as u64,
            multi_read,
            total_bases: total,
            max_len: sorted.first().copied().unwrap_or(0),
            n50,
        }
    }
}

/// Exclusive prefix scan over an arbitrarily long host array, executed as
/// device-chunk scans stitched with a carry — the same streaming treatment
/// every other phase gives data larger than the device. Returns the total.
fn chunked_exclusive_scan(device: &Device, values: &mut [u64]) -> Result<u64> {
    // The device scan allocates a same-sized scratch buffer; halve again
    // for headroom under other resident allocations.
    let chunk = device.elements_that_fit::<u64>(0.5).max(16) / 2;
    let mut carry = 0u64;
    for seg in values.chunks_mut(chunk.max(1)) {
        let mut buf = device.h2d(&*seg)?;
        let seg_total = device.exclusive_scan(&mut buf)?;
        let scanned = device.d2h(&buf);
        for (dst, v) in seg.iter_mut().zip(scanned) {
            *dst = v + carry;
        }
        carry += seg_total;
    }
    Ok(carry)
}

/// Spell contigs from paths.
pub fn generate_contigs(
    device: &Device,
    host: &gstream::HostMem,
    reads: &ReadSet,
    paths: &[Path],
) -> Result<(Vec<PackedSeq>, ContigStats)> {
    // Host working set of this phase: the per-vertex placement table
    // (13 B/vertex) plus the contig output buffers (1 B/base before
    // packing) — the "memory allocated for contigs" of Section III-D.
    let contig_bytes: u64 = paths.iter().map(|p| p.contig_len()).sum();
    let _host_guard = host.reserve(reads.vertex_count() as u64 * 13 + contig_bytes)?;
    // Fig. 7 step 1: offsets of paths in the flat tuple array (exclusive
    // scan over path lengths).
    let mut path_lens: Vec<u64> = paths.iter().map(|p| p.steps.len() as u64).collect();
    let total_steps = chunked_exclusive_scan(device, &mut path_lens)? as usize;

    // Fig. 7 step 2: per-step offsets inside the contig space (exclusive
    // scan over overhangs, restarted per path — equivalently a scan over
    // the flat array with per-path rebasing on the host).
    let mut flat_overhangs: Vec<u64> = Vec::with_capacity(total_steps);
    let mut flat_vertices: Vec<u32> = Vec::with_capacity(total_steps);
    for p in paths {
        for s in &p.steps {
            flat_overhangs.push(s.overhang as u64);
            flat_vertices.push(s.vertex);
        }
    }
    let mut global_offsets = flat_overhangs;
    chunked_exclusive_scan(device, &mut global_offsets)?;

    // Per-vertex placement table, built with a scatter keyed by vertex id
    // ("each overhang-offset tuple is copied to the unique location
    // corresponding to its read-ID"). The table itself lives on the host —
    // like the graph, it is a per-vertex structure that outgrows the
    // device — so the scatter is charged as streamed device work.
    let vertex_count = reads.vertex_count() as usize;
    let mut placement: Vec<Option<(usize, u64, u32)>> = vec![None; vertex_count];
    device.charge_kernel(
        "scatter",
        vgpu::KernelCost::new(
            flat_vertices.len() as u64,
            flat_vertices.len() as u64 * (12 * 2 + 4),
        ),
    );
    let mut step_cursor = 0usize;
    for (pi, p) in paths.iter().enumerate() {
        for s in &p.steps {
            let global = global_offsets[step_cursor];
            placement[s.vertex as usize] = Some((pi, global, s.overhang));
            step_cursor += 1;
        }
    }

    // Rebase global offsets to per-contig offsets and size the buffers.
    let mut contig_base: Vec<u64> = Vec::with_capacity(paths.len());
    {
        let mut cursor = 0u64;
        for p in paths {
            contig_base.push(cursor);
            cursor += p.contig_len();
        }
    }
    let mut contig_codes: Vec<Vec<u8>> = paths
        .iter()
        .map(|p| vec![0u8; p.contig_len() as usize])
        .collect();

    // Final pass: stream the reads, placing each oriented overhang.
    for i in 0..reads.len() {
        for strand in 0..2u32 {
            let v = (i as u32) * 2 + strand;
            if let Some((pi, global, overhang)) = placement[v as usize] {
                let seq = reads.vertex_seq(v);
                let local = (global - contig_base[pi]) as usize;
                let out = &mut contig_codes[pi];
                for (k, b) in seq.iter().take(overhang as usize).enumerate() {
                    out[local + k] = b.code();
                }
            }
        }
    }

    let contigs: Vec<PackedSeq> = contig_codes
        .into_iter()
        .map(|c| PackedSeq::from_codes(&c))
        .collect();
    let lengths: Vec<u64> = contigs.iter().map(|c| c.len() as u64).collect();
    let multi = paths.iter().filter(|p| p.steps.len() > 1).count() as u64;
    Ok((contigs, ContigStats::from_lengths(&lengths, multi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::PathStep;
    use vgpu::GpuProfile;

    fn device() -> Device {
        Device::new(GpuProfile::k40())
    }

    fn host() -> gstream::HostMem {
        gstream::HostMem::new(64 << 20)
    }

    fn reads_of(strs: &[&str]) -> ReadSet {
        ReadSet::from_reads(strs[0].len(), strs.iter().map(|s| s.parse().unwrap())).unwrap()
    }

    #[test]
    fn two_read_overlap_spells_merged_contig() {
        // ACGTAC and TACGGA overlap by 3 (suffix TAC == prefix TAC).
        let reads = reads_of(&["ACGTAC", "TACGGA"]);
        let paths = vec![Path {
            steps: vec![
                PathStep {
                    vertex: 0,
                    overhang: 3,
                },
                PathStep {
                    vertex: 2,
                    overhang: 6,
                },
            ],
        }];
        let (contigs, stats) = generate_contigs(&device(), &host(), &reads, &paths).unwrap();
        assert_eq!(contigs.len(), 1);
        assert_eq!(contigs[0].to_string(), "ACGTACGGA");
        assert_eq!(stats.total_bases, 9);
        assert_eq!(stats.multi_read, 1);
    }

    #[test]
    fn reverse_strand_vertices_contribute_revcomp_sequence() {
        // Vertex 1 = revcomp of read 0.
        let reads = reads_of(&["ACGTAA"]);
        let paths = vec![Path {
            steps: vec![PathStep {
                vertex: 1,
                overhang: 6,
            }],
        }];
        let (contigs, _) = generate_contigs(&device(), &host(), &reads, &paths).unwrap();
        assert_eq!(contigs[0].to_string(), "TTACGT");
    }

    #[test]
    fn multiple_paths_generate_independent_contigs() {
        let reads = reads_of(&["AAAACC", "CCGGGG", "TTTTTT"]);
        let paths = vec![
            Path {
                steps: vec![
                    PathStep {
                        vertex: 0,
                        overhang: 4,
                    },
                    PathStep {
                        vertex: 2,
                        overhang: 6,
                    },
                ],
            },
            Path {
                steps: vec![PathStep {
                    vertex: 4,
                    overhang: 6,
                }],
            },
        ];
        let (contigs, stats) = generate_contigs(&device(), &host(), &reads, &paths).unwrap();
        assert_eq!(contigs.len(), 2);
        assert_eq!(contigs[0].to_string(), "AAAACCGGGG");
        assert_eq!(contigs[1].to_string(), "TTTTTT");
        assert_eq!(stats.count, 2);
        assert_eq!(stats.max_len, 10);
    }

    #[test]
    fn empty_paths_produce_no_contigs() {
        let reads = reads_of(&["ACGTAA"]);
        let (contigs, stats) = generate_contigs(&device(), &host(), &reads, &[]).unwrap();
        assert!(contigs.is_empty());
        assert_eq!(stats, ContigStats::from_lengths(&[], 0));
    }

    #[test]
    fn n50_definition() {
        // Lengths 10, 5, 3, 2 (total 20): cumulative 10 ≥ 10 → N50 = 10.
        let s = ContigStats::from_lengths(&[5, 10, 2, 3], 0);
        assert_eq!(s.n50, 10);
        // Lengths 5,5,5,5 (total 20): cumulative 10 at the second → N50 = 5.
        let s = ContigStats::from_lengths(&[5, 5, 5, 5], 0);
        assert_eq!(s.n50, 5);
        let s = ContigStats::from_lengths(&[], 0);
        assert_eq!(s.n50, 0);
        assert_eq!(s.max_len, 0);
    }

    #[test]
    fn contig_generation_charges_device_scans() {
        let dev = device();
        let reads = reads_of(&["ACGTAA"]);
        let paths = vec![Path {
            steps: vec![PathStep {
                vertex: 0,
                overhang: 6,
            }],
        }];
        generate_contigs(&dev, &host(), &reads, &paths).unwrap();
        let stats = dev.stats();
        assert!(stats.per_kernel.contains_key("inclusive_scan"));
        assert!(stats.per_kernel.contains_key("scatter"));
    }
}
