//! Pipeline configuration.

use fingerprint::FingerprintScheme;
use gstream::SortConfig;
use serde::{Deserialize, Serialize};

/// Tunables of one assembly run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AssemblyConfig {
    /// Minimum overlap length l_min; partitions below it are discarded.
    pub l_min: u32,
    /// Read length l_max (all reads must have this length; the l_max
    /// partition is dropped to avoid self-loops).
    pub l_max: u32,
    /// Reads fingerprinted per device batch in the map phase.
    pub map_batch_reads: usize,
    /// Kernel organization for fingerprinting (the paper's block-per-read
    /// vs the thread-per-read strawman).
    #[serde(skip, default = "default_scheme")]
    pub fingerprint_scheme: FingerprintScheme,
    /// Explicit sort block sizes; `None` derives them from the budgets
    /// (the paper's default of maximizing host memory use).
    pub sort: Option<SortConfig>,
    /// Fingerprint width in bits (128 = the paper's dual 64-bit hashes;
    /// smaller values emulate weaker fingerprints for the false-positive
    /// ablation).
    pub fingerprint_bits: u32,
    /// Number of fingerprint ranges each length partition is split into
    /// (1 = the paper's by-length partitioning; >1 enables the future-work
    /// by-fingerprint partitioning of the distributed reduce).
    pub range_split: u32,
    /// Extract paths with the bulk-synchronous pointer-jumping traversal
    /// (the paper's future work) instead of the sequential walk. Both
    /// produce identical paths.
    pub bsp_traversal: bool,
}

fn default_scheme() -> FingerprintScheme {
    FingerprintScheme::BlockPerRead
}

impl AssemblyConfig {
    /// The paper's defaults for a dataset with minimum overlap `l_min` and
    /// read length `l_max`.
    pub fn for_dataset(l_min: u32, l_max: u32) -> Self {
        AssemblyConfig {
            l_min,
            l_max,
            map_batch_reads: 4096,
            fingerprint_scheme: FingerprintScheme::BlockPerRead,
            sort: None,
            fingerprint_bits: 128,
            range_split: 1,
            bsp_traversal: false,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> crate::Result<()> {
        if self.l_min == 0 || self.l_min >= self.l_max {
            return Err(crate::LasagnaError::BadConfig(format!(
                "l_min {} must be in [1, l_max {})",
                self.l_min, self.l_max
            )));
        }
        if self.map_batch_reads == 0 {
            return Err(crate::LasagnaError::BadConfig(
                "map batch must hold at least one read".into(),
            ));
        }
        if self.fingerprint_bits == 0 || self.fingerprint_bits > 128 {
            return Err(crate::LasagnaError::BadConfig(format!(
                "fingerprint width {} outside 1..=128",
                self.fingerprint_bits
            )));
        }
        if self.range_split == 0 {
            return Err(crate::LasagnaError::BadConfig(
                "range_split must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// Number of overlap-length partitions (`[l_min, l_max)`).
    pub fn partition_count(&self) -> u32 {
        self.l_max - self.l_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let c = AssemblyConfig::for_dataset(63, 101);
        c.validate().unwrap();
        assert_eq!(c.partition_count(), 38);
        assert_eq!(c.fingerprint_bits, 128);
    }

    #[test]
    fn bad_overlap_ranges_are_rejected() {
        assert!(AssemblyConfig::for_dataset(0, 100).validate().is_err());
        assert!(AssemblyConfig::for_dataset(100, 100).validate().is_err());
        assert!(AssemblyConfig::for_dataset(101, 100).validate().is_err());
    }

    #[test]
    fn zero_batch_and_bad_fp_width_are_rejected() {
        let mut c = AssemblyConfig::for_dataset(63, 101);
        c.map_batch_reads = 0;
        assert!(c.validate().is_err());
        let mut c = AssemblyConfig::for_dataset(63, 101);
        c.fingerprint_bits = 0;
        assert!(c.validate().is_err());
        c.fingerprint_bits = 129;
        assert!(c.validate().is_err());
    }
}
