//! The full (non-greedy) string graph — Section II-A2 implemented.
//!
//! The paper *describes* Myers' string graph — all overlap edges, removal
//! of contained reads, transitive reduction, contigs from unambiguous
//! paths — and then sidesteps it with the greedy heuristic ("only one
//! outgoing edge corresponding to the read with the longest overlap").
//! This module implements the described construction as an extension, so
//! the greedy shortcut can be evaluated against the real thing:
//!
//! * [`MultiGraph`] keeps *every* candidate edge;
//! * [`MultiGraph::remove_duplicates`] is contained-read removal for
//!   uniform-length reads (a same-length read is contained iff identical);
//! * [`MultiGraph::transitive_reduction`] removes edges implied by
//!   two-hop paths: with uniform length `L`, `v→x` is transitive iff some
//!   `v→w→x` exists with `overlap(v,x) = overlap(v,w) + overlap(w,x) − L`;
//! * [`MultiGraph::unambiguous_paths`] spells contigs only along vertices
//!   whose remaining degree is unambiguous, stopping at branches instead
//!   of guessing through repeats like the greedy graph does.

use crate::config::AssemblyConfig;
use crate::traverse::{Path, PathStep};
use crate::Result;
use genome::readset::VertexId;
use genome::ReadSet;
use gstream::spill::{PartitionKind, SpillDir};
use gstream::HostMem;
use std::collections::HashMap;
use vgpu::Device;

/// An overlap edge in the full graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MultiEdge {
    to: VertexId,
    overlap: u32,
    deleted: bool,
}

/// The full string graph: every suffix-prefix overlap of length ≥ l_min.
#[derive(Debug, Clone)]
pub struct MultiGraph {
    read_len: u32,
    out: Vec<Vec<MultiEdge>>,
    in_degree: Vec<u32>,
    /// Vertices removed as contained reads: they no longer participate in
    /// the graph and are not spelled into contigs.
    dead: Vec<bool>,
}

impl MultiGraph {
    /// An empty graph over `vertex_count` vertices of `read_len`-bp reads.
    pub fn new(vertex_count: u32, read_len: u32) -> Self {
        MultiGraph {
            read_len,
            out: vec![Vec::new(); vertex_count as usize],
            in_degree: vec![0; vertex_count as usize],
            dead: vec![false; vertex_count as usize],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        self.out.len() as u32
    }

    /// Add an overlap edge (self-loops and fold-backs are ignored, like
    /// the greedy graph's degenerate rejections).
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, overlap: u32) {
        if from == to || to == from ^ 1 {
            return;
        }
        // Duplicate candidates (same pair at the same length reachable via
        // two fingerprint routes) are idempotent.
        if self.out[from as usize]
            .iter()
            .any(|e| e.to == to && e.overlap == overlap)
        {
            return;
        }
        self.out[from as usize].push(MultiEdge {
            to,
            overlap,
            deleted: false,
        });
        self.in_degree[to as usize] += 1;
    }

    /// Live out-edges of `v` as `(target, overlap)`.
    pub fn out_edges(&self, v: VertexId) -> Vec<(VertexId, u32)> {
        self.out[v as usize]
            .iter()
            .filter(|e| !e.deleted)
            .map(|e| (e.to, e.overlap))
            .collect()
    }

    /// Live edge count.
    pub fn edge_count(&self) -> u64 {
        self.out
            .iter()
            .map(|es| es.iter().filter(|e| !e.deleted).count() as u64)
            .sum()
    }

    fn delete_edge(&mut self, from: VertexId, to: VertexId, overlap: u32) {
        if let Some(e) = self.out[from as usize]
            .iter_mut()
            .find(|e| !e.deleted && e.to == to && e.overlap == overlap)
        {
            e.deleted = true;
            self.in_degree[to as usize] -= 1;
        }
    }

    /// Contained-read removal. With uniform-length reads a read is
    /// contained in another iff their sequences are identical; all copies
    /// but the smallest vertex id are dropped (their edges deleted).
    /// Returns the number of removed *reads*.
    pub fn remove_duplicates(&mut self, reads: &ReadSet) -> u64 {
        let mut canonical: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut removed = 0u64;
        let mut buf = Vec::new();
        for i in 0..reads.len() {
            reads.read_codes_into(i, &mut buf);
            // Canonical form: the lexicographically smaller of the read
            // and its reverse complement, so duplicate detection is
            // strand-independent.
            let rc: Vec<u8> = buf.iter().rev().map(|&c| c ^ 3).collect();
            let key = if buf <= rc { buf.clone() } else { rc };
            match canonical.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => {
                    self.dead[i * 2] = true;
                    self.dead[i * 2 + 1] = true;
                    removed += 1;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i as u32);
                }
            }
        }
        // Drop all edges touching dead vertices.
        for v in 0..self.out.len() {
            if self.dead[v] {
                let edges = std::mem::take(&mut self.out[v]);
                for e in edges.iter().filter(|e| !e.deleted) {
                    self.in_degree[e.to as usize] -= 1;
                }
            } else {
                let targets: Vec<(u32, u32)> = self.out[v]
                    .iter()
                    .filter(|e| !e.deleted && self.dead[e.to as usize])
                    .map(|e| (e.to, e.overlap))
                    .collect();
                for (to, overlap) in targets {
                    self.delete_edge(v as u32, to, overlap);
                }
            }
        }
        removed
    }

    /// Myers-style transitive reduction: delete `v→x` whenever some
    /// `v→w→x` spells the same offset, i.e.
    /// `overlap(v,x) == overlap(v,w) + overlap(w,x) − L`.
    /// Returns the number of deleted edges.
    pub fn transitive_reduction(&mut self) -> u64 {
        let l = self.read_len;
        let mut removed = 0u64;
        for v in 0..self.out.len() {
            // Direct targets of v with their overlaps.
            let direct: Vec<(u32, u32)> = self.out_edges(v as u32);
            if direct.len() < 2 {
                continue;
            }
            let lookup: HashMap<(u32, u32), ()> =
                direct.iter().map(|&(t, o)| ((t, o), ())).collect();
            let mut to_delete = Vec::new();
            for &(w, ovw) in &direct {
                for (x, owx) in self.out_edges(w) {
                    let implied = (ovw + owx).checked_sub(l);
                    if let Some(ovx) = implied {
                        if ovx > 0 && lookup.contains_key(&(x, ovx)) && x != v as u32 {
                            to_delete.push((x, ovx));
                        }
                    }
                }
            }
            to_delete.sort_unstable();
            to_delete.dedup();
            for (x, ovx) in to_delete {
                self.delete_edge(v as u32, x, ovx);
                removed += 1;
            }
        }
        removed
    }

    /// Keep only the longest-overlap edge between each vertex pair (two
    /// reads can overlap at several lengths when the genome is periodic);
    /// a conservative cleanup usually run before reduction.
    pub fn keep_best_per_pair(&mut self) -> u64 {
        let mut removed = 0u64;
        for v in 0..self.out.len() {
            let mut best: HashMap<u32, u32> = HashMap::new();
            for e in self.out[v].iter().filter(|e| !e.deleted) {
                let slot = best.entry(e.to).or_insert(e.overlap);
                if e.overlap > *slot {
                    *slot = e.overlap;
                }
            }
            let worse: Vec<(u32, u32)> = self.out[v]
                .iter()
                .filter(|e| !e.deleted && best[&e.to] > e.overlap)
                .map(|e| (e.to, e.overlap))
                .collect();
            for (to, overlap) in worse {
                self.delete_edge(v as u32, to, overlap);
                removed += 1;
            }
        }
        removed
    }

    /// Spell paths along unambiguous vertices: a path extends from `v` to
    /// `w` only when `v`'s out-degree is 1 and `w`'s in-degree is 1. Every
    /// vertex appears in exactly one path (complement mirrors deduplicated,
    /// as in the greedy traversal).
    pub fn unambiguous_paths(&self) -> Vec<Path> {
        let n = self.vertex_count();
        let next = |v: u32| -> Option<(u32, u32)> {
            let es = self.out_edges(v);
            match es.as_slice() {
                [(w, o)] if self.in_degree[*w as usize] == 1 => Some((*w, *o)),
                _ => None,
            }
        };
        let is_path_start = |v: u32| -> bool {
            // v starts a path if nothing unambiguously precedes it.
            let p = v ^ 1;
            !matches!(self.out_edges(p).as_slice(),
                [(w, _)] if self.in_degree[*w as usize] == 1)
        };

        let mut visited = self.dead.clone();
        let mut paths = Vec::new();
        for v in 0..n {
            if visited[v as usize] || !is_path_start(v) {
                continue;
            }
            // Walk the chain.
            let mut steps = Vec::new();
            let mut cur = v;
            loop {
                visited[cur as usize] = true;
                visited[(cur ^ 1) as usize] = true;
                match next(cur) {
                    Some((w, o)) if !visited[w as usize] => {
                        steps.push(PathStep {
                            vertex: cur,
                            overhang: self.read_len - o,
                        });
                        cur = w;
                    }
                    _ => {
                        steps.push(PathStep {
                            vertex: cur,
                            overhang: self.read_len,
                        });
                        break;
                    }
                }
            }
            // Deduplicate the mirror: keep the orientation with the
            // smaller endpoint id.
            let mirror_start = steps.last().expect("nonempty").vertex ^ 1;
            if v <= mirror_start {
                paths.push(Path { steps });
            }
        }
        // Cover any unvisited cycle remnants.
        for v in 0..n {
            if !visited[v as usize] {
                let mut steps = Vec::new();
                let mut cur = v;
                loop {
                    visited[cur as usize] = true;
                    visited[(cur ^ 1) as usize] = true;
                    match next(cur) {
                        Some((w, o)) if !visited[w as usize] => {
                            steps.push(PathStep {
                                vertex: cur,
                                overhang: self.read_len - o,
                            });
                            cur = w;
                        }
                        _ => {
                            steps.push(PathStep {
                                vertex: cur,
                                overhang: self.read_len,
                            });
                            break;
                        }
                    }
                }
                paths.push(Path { steps });
            }
        }
        paths
    }
}

/// Build the full string graph from sorted partitions: the same map/sort
/// output the greedy reduce consumes, but *every* candidate becomes an
/// edge. Call after [`crate::map::run`] and [`crate::sortphase::run`].
pub fn reduce_full(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    reads: &ReadSet,
) -> Result<MultiGraph> {
    let window = crate::reduce::window_budget(host, device);
    let mut graph = MultiGraph::new(reads.vertex_count(), config.l_max);
    for len in (config.l_min..config.l_max).rev() {
        let s_path = spill.path(PartitionKind::Suffix, len);
        let p_path = spill.path(PartitionKind::Prefix, len);
        if !s_path.exists() || !p_path.exists() {
            continue;
        }
        let mut sfx = spill.reader(PartitionKind::Suffix, len)?;
        let mut pfx = spill.reader(PartitionKind::Prefix, len)?;
        crate::reduce::join_partition(device, &mut sfx, &mut pfx, window, |u, v| {
            graph.add_edge(u, v, len)
        })?;
    }
    Ok(graph)
}

/// The full-graph assembly recipe: all candidates → duplicate removal →
/// best-per-pair → transitive reduction → unambiguous paths. Returns the
/// reduced graph and its paths.
pub fn assemble_full(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    reads: &ReadSet,
) -> Result<(MultiGraph, Vec<Path>)> {
    crate::map::run(device, host, spill, config, reads)?;
    crate::sortphase::run(device, host, spill, config)?;
    let mut graph = reduce_full(device, host, spill, config, reads)?;
    graph.remove_duplicates(reads);
    graph.keep_best_per_pair();
    graph.transitive_reduction();
    let paths = graph.unambiguous_paths();
    Ok((graph, paths))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with(edges: &[(u32, u32, u32)], vertices: u32, read_len: u32) -> MultiGraph {
        let mut g = MultiGraph::new(vertices, read_len);
        for &(u, v, l) in edges {
            g.add_edge(u, v, l);
        }
        g
    }

    #[test]
    fn add_edge_rejects_degenerates_and_duplicates() {
        let mut g = MultiGraph::new(4, 10);
        g.add_edge(0, 0, 5);
        g.add_edge(0, 1, 5);
        g.add_edge(0, 2, 5);
        g.add_edge(0, 2, 5);
        assert_eq!(g.edge_count(), 1);
        g.add_edge(0, 2, 6); // different length: legitimate second edge
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn transitive_reduction_removes_the_implied_edge() {
        // Reads of length 10: 0→2 (overlap 8), 2→4 (overlap 7),
        // transitive 0→4 must have overlap 8+7-10 = 5.
        let mut g = graph_with(&[(0, 2, 8), (2, 4, 7), (0, 4, 5)], 6, 10);
        let removed = g.transitive_reduction();
        assert_eq!(removed, 1);
        assert_eq!(g.out_edges(0), vec![(2, 8)]);
        assert_eq!(g.out_edges(2), vec![(4, 7)]);
    }

    #[test]
    fn non_consistent_edges_survive_reduction() {
        // 0→4 with overlap 6 is NOT the implied 5: a genuine alternative.
        let mut g = graph_with(&[(0, 2, 8), (2, 4, 7), (0, 4, 6)], 6, 10);
        assert_eq!(g.transitive_reduction(), 0);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn reduction_of_a_clique_leaves_a_chain() {
        // Perfectly tiled reads: 0→2 (9), 2→4 (9), 4→6 (9), plus all
        // transitive: 0→4 (8), 2→6 (8), 0→6 (7).
        let mut g = graph_with(
            &[
                (0, 2, 9),
                (2, 4, 9),
                (4, 6, 9),
                (0, 4, 8),
                (2, 6, 8),
                (0, 6, 7),
            ],
            8,
            10,
        );
        let removed = g.transitive_reduction();
        assert!(removed >= 3, "removed {removed}");
        assert_eq!(g.out_edges(0), vec![(2, 9)]);
        assert_eq!(g.out_edges(2), vec![(4, 9)]);
        assert_eq!(g.out_edges(4), vec![(6, 9)]);
    }

    #[test]
    fn unambiguous_paths_stop_at_branches() {
        // 0→2→4, but 4 branches to 6 and 8.
        let g = graph_with(&[(0, 2, 8), (2, 4, 8), (4, 6, 8), (4, 8, 7)], 10, 10);
        let paths = g.unambiguous_paths();
        // The chain 0→2→4 is one path; 6 and 8 are their own (branch
        // targets with ambiguous provenance stay separate).
        let chain = paths
            .iter()
            .find(|p| p.steps.first().unwrap().vertex == 0)
            .expect("chain from 0");
        let verts: Vec<u32> = chain.steps.iter().map(|s| s.vertex).collect();
        assert_eq!(verts, vec![0, 2, 4]);
        // No path may traverse the ambiguous 4→6 or 4→8 edge.
        for p in &paths {
            for w in p.steps.windows(2) {
                assert!(
                    !(w[0].vertex == 4 && (w[1].vertex == 6 || w[1].vertex == 8)),
                    "branch edge must not be spelled"
                );
            }
        }
    }

    #[test]
    fn keep_best_per_pair_prunes_periodic_double_edges() {
        let mut g = graph_with(&[(0, 2, 8), (0, 2, 5)], 4, 10);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.keep_best_per_pair(), 1);
        assert_eq!(g.out_edges(0), vec![(2, 8)]);
    }

    #[test]
    fn duplicate_reads_are_contained_and_removed() {
        use genome::ReadSet;
        let reads = ReadSet::from_reads(
            6,
            ["ACGTAC", "ACGTAC", "GTACGG", "GTACCC"]
                .iter()
                .map(|s| s.parse().unwrap()),
        )
        .unwrap();
        let mut g = MultiGraph::new(reads.vertex_count(), 6);
        // Edges from both copies of the duplicate read.
        g.add_edge(0, 4, 4);
        g.add_edge(2, 4, 4); // vertex 2 = duplicate copy
        g.add_edge(4, 6, 3);
        let removed = g.remove_duplicates(&reads);
        assert_eq!(removed, 1);
        assert_eq!(g.out_edges(2), vec![]);
        assert_eq!(g.out_edges(0), vec![(4, 4)]);
    }

    #[test]
    fn duplicate_detection_is_strand_independent() {
        use genome::ReadSet;
        // Read 1 is the reverse complement of read 0.
        let reads = ReadSet::from_reads(6, ["ACGTAA", "TTACGT"].iter().map(|s| s.parse().unwrap()))
            .unwrap();
        let mut g = MultiGraph::new(reads.vertex_count(), 6);
        assert_eq!(g.remove_duplicates(&reads), 1);
    }

    #[test]
    fn empty_graph_yields_singleton_paths_for_nothing() {
        let g = MultiGraph::new(0, 10);
        assert!(g.unambiguous_paths().is_empty());
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    /// Build a synthetic tiling graph from genomic offsets: vertex 2i sits
    /// at offset `positions[i]`; every pair within `l - l_min` distance
    /// overlaps consistently.
    fn tiling_graph(positions: &[u32], read_len: u32, l_min: u32) -> MultiGraph {
        let mut g = MultiGraph::new(2 * positions.len() as u32, read_len);
        for (i, &pi) in positions.iter().enumerate() {
            for (j, &pj) in positions.iter().enumerate() {
                if i == j {
                    continue;
                }
                if pj > pi && pj - pi < read_len {
                    let overlap = read_len - (pj - pi);
                    if overlap >= l_min {
                        g.add_edge(i as u32 * 2, j as u32 * 2, overlap);
                    }
                }
            }
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn reduction_of_a_consistent_tiling_leaves_nearest_neighbor_chains(
            mut offsets in prop::collection::btree_set(0u32..200, 2..25)
        ) {
            let positions: Vec<u32> = offsets.iter().copied().collect();
            offsets.clear();
            let read_len = 50u32;
            let mut g = tiling_graph(&positions, read_len, 10);
            g.transitive_reduction();
            // After reduction every vertex keeps exactly its nearest
            // overlapping successor (if one exists in range).
            for (i, &pi) in positions.iter().enumerate() {
                let nearest = positions
                    .iter()
                    .filter(|&&pj| pj > pi && pj - pi <= read_len - 10)
                    .min()
                    .copied();
                let out = g.out_edges(i as u32 * 2);
                match nearest {
                    Some(pj) => {
                        // The nearest edge must survive.
                        let expect_overlap = read_len - (pj - pi);
                        prop_assert!(
                            out.iter().any(|&(_, o)| o == expect_overlap),
                            "vertex {i} at {pi}: nearest overlap {expect_overlap} missing from {out:?}"
                        );
                        // Any other survivor must be non-transitive: no
                        // 2-hop witness through the nearest neighbor. For a
                        // dense consistent tiling gaps can legitimately
                        // leave extra edges, so only check the witness rule.
                        for &(t, o) in &out {
                            if o == expect_overlap {
                                continue;
                            }
                            let via: Vec<u32> = g
                                .out_edges(i as u32 * 2)
                                .iter()
                                .filter(|&&(w, ow)| w != t && ow + o >= read_len)
                                .filter(|&&(w, ow)| {
                                    g.out_edges(w)
                                        .iter()
                                        .any(|&(x, ox)| x == t && ow + ox == read_len + o)
                                })
                                .map(|&(w, _)| w)
                                .collect();
                            prop_assert!(
                                via.is_empty(),
                                "vertex {i}: surviving edge to {t} (overlap {o}) has witnesses {via:?}"
                            );
                        }
                    }
                    None => prop_assert!(out.is_empty(), "vertex {i}: {out:?}"),
                }
            }
        }

        #[test]
        fn reduction_is_idempotent(
            offsets in prop::collection::btree_set(0u32..150, 2..20)
        ) {
            let positions: Vec<u32> = offsets.iter().copied().collect();
            let mut g = tiling_graph(&positions, 40, 8);
            g.transitive_reduction();
            let after_first = g.edge_count();
            let removed_again = g.transitive_reduction();
            prop_assert_eq!(removed_again, 0, "second pass must remove nothing");
            prop_assert_eq!(g.edge_count(), after_first);
        }
    }
}
