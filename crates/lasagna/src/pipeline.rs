//! The assembly pipeline driver (paper Fig. 4).

use crate::config::AssemblyConfig;
use crate::contig::generate_contigs;
use crate::graph::StringGraph;
use crate::manifest::Manifest;
use crate::report::AssemblyReport;
use crate::traverse::{extract_paths_traced, Path, TraverseOptions};
use crate::{map, reduce, sortphase, Result};
use genome::{PackedSeq, ReadSet};
use gstream::spill::PartitionKind;
use gstream::{HostMem, IoStats, SpillDir, StreamError};
use vgpu::{Device, GpuProfile};

/// Everything an assembly produces.
#[derive(Debug)]
pub struct AssemblyOutput {
    /// The spelled contigs.
    pub contigs: Vec<PackedSeq>,
    /// The greedy string graph.
    pub graph: StringGraph,
    /// The unambiguous paths the contigs were spelled from.
    pub paths: Vec<Path>,
    /// Per-phase measurements.
    pub report: AssemblyReport,
}

/// A configured assembler: a device, a host-memory budget, a spill
/// directory, and the assembly parameters.
pub struct Pipeline {
    device: Device,
    host: HostMem,
    spill: SpillDir,
    config: AssemblyConfig,
    recorder: obs::Recorder,
    faults: faultsim::Faults,
}

impl Pipeline {
    /// Assemble with explicit budgets.
    pub fn new(
        device: Device,
        host: HostMem,
        spill: SpillDir,
        config: AssemblyConfig,
    ) -> Result<Self> {
        config.validate()?;
        let recorder = obs::Recorder::new();
        device.set_recorder(recorder.clone());
        Ok(Pipeline {
            device,
            host,
            spill,
            config,
            recorder,
            faults: faultsim::Faults::disabled(),
        })
    }

    /// A laptop-friendly setup: a K40-profile device capped at 64 MiB, a
    /// 256 MiB host budget, and a spill directory at `workdir`.
    pub fn laptop(config: AssemblyConfig, workdir: impl AsRef<std::path::Path>) -> Result<Self> {
        let device = Device::with_capacity(GpuProfile::k40(), 64 << 20);
        let host = HostMem::new(256 << 20);
        let spill = SpillDir::create(workdir.as_ref(), IoStats::default())?;
        Pipeline::new(device, host, spill, config)
    }

    /// The virtual device in use.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The host-memory budget in use.
    pub fn host(&self) -> &HostMem {
        &self.host
    }

    /// The spill directory in use.
    pub fn spill(&self) -> &SpillDir {
        &self.spill
    }

    /// The configuration in use.
    pub fn config(&self) -> &AssemblyConfig {
        &self.config
    }

    /// Swap in a different event recorder (e.g. one carrying a
    /// `--trace-out` JSONL sink). A disabled recorder is upgraded to a
    /// live one, because the [`AssemblyReport`] is rebuilt purely from
    /// recorded events — recording cannot be turned off.
    pub fn with_recorder(mut self, recorder: obs::Recorder) -> Self {
        self.recorder = if recorder.is_enabled() {
            recorder
        } else {
            obs::Recorder::new()
        };
        self.device.set_recorder(self.recorder.clone());
        self.faults.set_recorder(self.recorder.clone());
        self
    }

    /// Arm deterministic fault injection (see `faultsim` and
    /// ROBUSTNESS.md): the plan's failpoints are threaded into the spill
    /// writers/readers, the device kernel launches, and the manifest
    /// store, and every injected fault is recorded as a
    /// `fault.injected.*` event on this pipeline's recorder.
    pub fn with_faults(mut self, faults: faultsim::Faults) -> Self {
        faults.set_recorder(self.recorder.clone());
        self.spill.io().set_faults(faults.clone());
        self.device.set_faults(faults.clone());
        self.faults = faults;
        self
    }

    /// The fault-injection registry in use (disabled by default).
    pub fn faults(&self) -> &faultsim::Faults {
        &self.faults
    }

    /// The recorder capturing this pipeline's structured events.
    pub fn recorder(&self) -> &obs::Recorder {
        &self.recorder
    }

    /// Run `f` under a phase span, emitting the canonical per-phase
    /// `device.*`/`io.*` deltas plus peak gauges on the span. The report
    /// is later rolled up from exactly these events.
    pub(crate) fn phase<T>(&self, name: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let rec = &self.recorder;
        let span = rec.span(name);
        let dev0 = self.device.stats();
        let io0 = self.spill.io().snapshot();
        self.device.reset_peak();
        self.host.reset_peak();
        let out = f()?;
        let dev = self.device.stats();
        dev.since(&dev0).emit(rec, span.id());
        self.spill.io().snapshot().since(&io0).emit(rec, span.id());
        rec.gauge_on(span.id(), "host.peak_bytes", self.host.peak());
        rec.gauge_on(span.id(), "device.peak_bytes", dev.mem_peak);
        Ok(out)
    }

    /// Run the full pipeline on `reads`.
    pub fn assemble(&self, reads: &ReadSet) -> Result<AssemblyOutput> {
        self.assemble_inner(reads, false)
    }

    /// Run the pipeline, skipping phases a previous run already completed
    /// in this spill directory (as recorded by `manifest.json`). The
    /// manifest is keyed to the configuration and the dataset, so resuming
    /// with different reads or parameters starts from scratch. Built for
    /// the paper's regime — multi-hour assemblies — where losing a 12-hour
    /// sort to a crash is unacceptable.
    pub fn assemble_resumable(&self, reads: &ReadSet) -> Result<AssemblyOutput> {
        self.assemble_inner(reads, true)
    }

    /// Resume an interrupted assembly from this spill directory's
    /// checkpoint manifest: validates every artifact the manifest claims
    /// is durable (fails loudly with `Corrupt` on any mismatch), skips
    /// completed phases and already-sorted partitions, and recomputes the
    /// rest. Alias of [`Pipeline::assemble_resumable`].
    pub fn resume(&self, reads: &ReadSet) -> Result<AssemblyOutput> {
        self.assemble_inner(reads, true)
    }

    pub(crate) fn dataset_fingerprint(&self, reads: &ReadSet) -> u64 {
        // FNV-1a over the knobs that change on-disk artifacts.
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(self.config.l_min as u64);
        eat(self.config.l_max as u64);
        eat(self.config.fingerprint_bits as u64);
        eat(self.config.range_split as u64);
        eat(reads.len() as u64);
        eat(reads.total_bases());
        // Sample a few reads' first bases so a different dataset of the
        // same shape is still detected.
        for i in (0..reads.len()).step_by((reads.len() / 16).max(1)) {
            eat(reads.first_base(i).code() as u64);
        }
        h
    }

    /// The suffix/prefix partition pairs the single-node pipeline touches,
    /// in sort order — the iteration shared by sorting, checkpoint
    /// recording, and resume validation.
    pub(crate) fn partitions(&self) -> impl Iterator<Item = (PartitionKind, String, u32)> + '_ {
        (self.config.l_min..self.config.l_max).flat_map(|len| {
            [
                (PartitionKind::Suffix, "sfx"),
                (PartitionKind::Prefix, "pfx"),
            ]
            .into_iter()
            .map(move |(kind, tag_kind)| (kind, format!("{tag_kind}_{len:05}"), len))
        })
    }

    /// Record the footer of every existing partition file in the manifest.
    fn record_partitions(&self, manifest: &mut Manifest) -> Result<()> {
        for (kind, _tag, len) in self.partitions() {
            let path = self.spill.path(kind, len);
            if path.exists() {
                manifest.record_file(&path)?;
            }
        }
        Ok(())
    }

    /// Validate every artifact a resumed manifest claims is durable.
    ///
    /// Partitions already marked sorted must match their recorded footer
    /// *exactly* and drain-verify, so any bit flip since the checkpoint
    /// surfaces here as [`StreamError::Corrupt`] — not halfway through
    /// reduce. Partitions not yet marked sorted only self-verify
    /// (footer + payload checksum): the sort phase renames the sorted
    /// scratch over the original *before* the manifest updates, so a
    /// crash in that window legitimately leaves a valid file whose
    /// footer differs from the manifest entry; it simply gets re-sorted.
    fn validate_resume(&self, manifest: &Manifest) -> Result<()> {
        for (kind, tag, len) in self.partitions() {
            let path = self.spill.path(kind, len);
            if !path.exists() {
                if manifest.is_sorted(&tag) {
                    return Err(StreamError::Corrupt(format!(
                        "manifest lists sorted partition {tag} but {} is missing",
                        path.display()
                    ))
                    .into());
                }
                continue;
            }
            let mut r = gstream::RecordReader::open(&path, self.spill.io().clone())?;
            if manifest.is_sorted(&tag) && !manifest.file_matches(&path) {
                return Err(StreamError::Corrupt(format!(
                    "sorted partition {tag} at {} does not match its manifest checkpoint",
                    path.display()
                ))
                .into());
            }
            r.verify_to_end()?;
        }
        if manifest.is_done("reduce") {
            let graph_path = self.spill.root().join("graph.bin");
            let bytes = std::fs::read(&graph_path).map_err(StreamError::Io)?;
            if !manifest.raw_matches("graph.bin", &bytes) {
                return Err(StreamError::Corrupt(format!(
                    "{} does not match its manifest checkpoint",
                    graph_path.display()
                ))
                .into());
            }
        }
        Ok(())
    }

    /// Resolve the manifest to run under: a validated resume manifest, or
    /// a fresh one (stale artifacts purged, run identity durably recorded
    /// before any phase writes).
    fn prepare_manifest(&self, fingerprint: u64, resume: bool) -> Result<Manifest> {
        if resume {
            match Manifest::load(self.spill.root())? {
                // A different dataset/config is not an error — it is a
                // new run; restart silently (the old behavior).
                Some(m) if m.config_hash != fingerprint => {}
                // Nothing durable before map completes; restart.
                Some(m) if !m.is_done("map") => {}
                Some(m) => {
                    self.validate_resume(&m)?;
                    return Ok(m);
                }
                None => {}
            }
        }
        self.spill.clear()?;
        let _ = std::fs::remove_file(self.spill.root().join("graph.bin"));
        let manifest = Manifest::new(fingerprint);
        manifest.store(self.spill.root(), &self.faults)?;
        Ok(manifest)
    }

    fn assemble_inner(&self, reads: &ReadSet, resume: bool) -> Result<AssemblyOutput> {
        self.config.validate()?;
        let rec = &self.recorder;
        let fingerprint = self.dataset_fingerprint(reads);
        let mut manifest = self.prepare_manifest(fingerprint, resume)?;
        let graph_path = self.spill.root().join("graph.bin");

        let root = rec.span("assembly");

        // Load: stage the packed reads on disk (the dataset's resting
        // place) and stream them back in, charging the read I/O — the
        // "Load" row of Tables II/III.
        let staged_path = self.spill.root().join("reads.packed");
        let packed = reads.to_packed_bytes();
        std::fs::write(&staged_path, &packed).map_err(gstream::StreamError::from)?;
        // The sidecar records what `reads.packed` holds; delta assembly
        // (`assemble_delta`) needs it to reconstruct the corpus a work
        // directory was assembled from.
        crate::delta::ReadsMeta {
            read_len: reads.read_len() as u32,
            reads: reads.len() as u64,
        }
        .store(self.spill.root())?;
        let reads = self.phase("load", || {
            let bytes = std::fs::read(&staged_path).map_err(gstream::StreamError::from)?;
            self.spill.io().add_read(bytes.len() as u64);
            // The paper's datasets rest on disk as FASTQ (~3.2 B/base per
            // Table I); our staging file is 2-bit packed, so charge the
            // difference to model the real load volume.
            self.spill.io().add_read(reads.total_bases() * 3);
            let _guard = self.host.reserve(bytes.len() as u64)?;
            Ok(ReadSet::from_packed_bytes(
                reads.read_len(),
                reads.len(),
                &bytes,
            )?)
        })?;

        // Map: fingerprint generation + length partitioning.
        if manifest.is_done("map") {
            drop(rec.span("map (resumed)"));
        } else {
            self.phase("map", || {
                map::run_traced(
                    &self.device,
                    &self.host,
                    &self.spill,
                    &self.config,
                    &reads,
                    rec,
                )
            })?;
            manifest.mark_phase("map");
            self.record_partitions(&mut manifest)?;
            manifest.store(self.spill.root(), &self.faults)?;
        }

        // Sort: hybrid external sort of every partition. Each partition is
        // checkpointed as it lands, so a crash mid-sort loses at most one
        // partition's work (the paper's regime: sorting is >50% of a
        // multi-hour run).
        if manifest.is_done("sort") {
            drop(rec.span("sort (resumed)"));
        } else {
            let already: std::collections::HashSet<String> =
                manifest.sorted.iter().cloned().collect();
            self.phase("sort", || {
                sortphase::run_checkpointed(
                    &self.device,
                    &self.host,
                    &self.spill,
                    &self.config,
                    rec,
                    |tag| already.contains(tag),
                    &mut |tag, path| {
                        manifest.record_file(path)?;
                        manifest.mark_sorted(tag);
                        manifest.store(self.spill.root(), &self.faults)
                    },
                )
            })?;
            manifest.mark_phase("sort");
            manifest.store(self.spill.root(), &self.faults)?;
        }

        // Reduce: overlap detection into the greedy string graph. The
        // graph is host-resident (Section III-C: a human-genome graph is
        // ~12 GB, beyond any device), so its footprint reserves host
        // budget for the rest of the pipeline.
        let mut graph = StringGraph::new(reads.vertex_count());
        let _graph_guard = self.host.reserve(graph.memory_bytes())?;
        if manifest.is_done("reduce") && graph_path.exists() {
            let bytes = std::fs::read(&graph_path).map_err(gstream::StreamError::from)?;
            graph = StringGraph::from_bytes(&bytes).map_err(crate::LasagnaError::BadConfig)?;
            drop(rec.span("reduce (resumed)"));
        } else {
            self.phase("reduce", || {
                reduce::run_traced(
                    &self.device,
                    &self.host,
                    &self.spill,
                    &self.config,
                    &mut graph,
                    rec,
                )
            })?;
            let bytes = graph.to_bytes();
            std::fs::write(&graph_path, &bytes).map_err(gstream::StreamError::from)?;
            manifest.mark_phase("reduce");
            manifest.record_raw("graph.bin", &bytes);
            manifest.store(self.spill.root(), &self.faults)?;
        }

        // Compress: traverse paths and spell contigs.
        let (paths, contigs, contig_stats) = self.phase("compress", || {
            let paths = if self.config.bsp_traversal {
                crate::bsp::extract_paths_bsp(
                    &graph,
                    self.config.l_max,
                    TraverseOptions::default(),
                    Some(&self.device),
                )
            } else {
                extract_paths_traced(&graph, self.config.l_max, TraverseOptions::default(), rec)
            };
            let (contigs, stats) = generate_contigs(&self.device, &self.host, &reads, &paths)?;
            // Export the assembly to the serving layer's on-disk store.
            // `lasagna-cli index` / `query` and the qserve crate read it
            // back; write_blob gives it the same atomic-rename durability
            // as every spill artifact. ENOSPC (real, or injected via the
            // `qserve.store.write` failpoint) is recoverable exactly once,
            // like the sorter's run commits: the failed export wrote
            // nothing (the failpoint fires before the first byte; a torn
            // blob commit sheds its temp file), so the retry starts clean.
            // A second ENOSPC means the disk is genuinely full and
            // propagates as Io/StorageFull — CLI exit code 5 — never a
            // half-written store that passes footer validation.
            let store_path = self.spill.root().join(qserve::STORE_FILE);
            let mut retried = false;
            loop {
                match qserve::ContigStore::write(&store_path, &contigs, self.spill.io()) {
                    Ok(()) => break,
                    Err(gstream::StreamError::Io(e))
                        if e.kind() == std::io::ErrorKind::StorageFull && !retried =>
                    {
                        self.spill
                            .io()
                            .faults()
                            .record_retry(faultsim::QSERVE_STORE_WRITE);
                        retried = true;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Ok((paths, contigs, stats))
        })?;

        drop(root);

        // The report is a pure roll-up over the recorded events: totals
        // printed by the report and totals in the trace cannot disagree.
        let rollup = obs::Rollup::from_events(&rec.events());
        let mut report = AssemblyReport::from_trace(&rollup, "assembly");
        report.dataset = "custom".into();
        report.reads = reads.len() as u64;
        report.bases = reads.total_bases();
        report.graph_edges = graph.edge_count();
        report.graph_bytes = graph.memory_bytes();
        report.contig_stats = contig_stats;

        Ok(AssemblyOutput {
            contigs,
            graph,
            paths,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_contigs;
    use genome::{GenomeSim, ShotgunSim};

    fn assemble_genome(
        genome_len: usize,
        read_len: usize,
        coverage: f64,
        l_min: u32,
        seed: u64,
    ) -> (PackedSeq, AssemblyOutput) {
        let genome = GenomeSim::uniform(genome_len, seed).generate();
        let reads = ShotgunSim::error_free(read_len, coverage, seed + 1).sample(&genome);
        let dir = tempfile::tempdir().unwrap();
        let config = AssemblyConfig::for_dataset(l_min, read_len as u32);
        let pipeline = Pipeline::laptop(config, dir.path()).unwrap();
        let out = pipeline.assemble(&reads).unwrap();
        (genome, out)
    }

    #[test]
    fn end_to_end_small_genome_produces_exact_contigs() {
        let (genome, out) = assemble_genome(3000, 50, 15.0, 30, 42);
        assert!(out.graph.edge_count() > 0, "overlaps must be found");
        out.graph.check_invariants().unwrap();
        let report = verify_contigs(&genome, &out.contigs);
        assert!(
            report.all_exact(),
            "misassembled {} of {} contigs",
            report.misassembled,
            report.contigs
        );
        // Assembly must actually merge reads: N50 beyond read length.
        assert!(
            out.report.contig_stats.n50 > 50,
            "N50 {} not beyond read length",
            out.report.contig_stats.n50
        );
    }

    #[test]
    fn report_contains_all_five_phases_in_order() {
        let (_genome, out) = assemble_genome(1000, 40, 8.0, 25, 7);
        let names: Vec<&str> = out.report.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(names, vec!["load", "map", "sort", "reduce", "compress"]);
        for p in &out.report.phases {
            assert!(p.wall_seconds >= 0.0);
            assert!(p.modeled_seconds >= 0.0, "{}", p.phase);
        }
        // Sort must dominate modeled time among map/sort (paper: >50%).
        let sort = out.report.phase("sort").unwrap().modeled_seconds;
        assert!(sort > 0.0);
    }

    #[test]
    fn contigs_cover_most_of_the_genome() {
        let (genome, out) = assemble_genome(2000, 40, 20.0, 24, 99);
        let covered: u64 = out.report.contig_stats.total_bases;
        // Coverage 20× error-free: nearly every genome base should appear
        // in some contig.
        assert!(
            covered as f64 > genome.len() as f64 * 0.8,
            "covered {covered} of {}",
            genome.len()
        );
    }

    #[test]
    fn empty_read_set_produces_empty_assembly() {
        let reads = ReadSet::new(40);
        let dir = tempfile::tempdir().unwrap();
        let config = AssemblyConfig::for_dataset(25, 40);
        let pipeline = Pipeline::laptop(config, dir.path()).unwrap();
        let out = pipeline.assemble(&reads).unwrap();
        assert!(out.contigs.is_empty());
        assert_eq!(out.report.graph_edges, 0);
    }

    #[test]
    fn memory_peaks_are_recorded_per_phase() {
        let (_genome, out) = assemble_genome(1500, 40, 10.0, 25, 3);
        let sort = out.report.phase("sort").unwrap();
        assert!(sort.host_peak_bytes > 0);
        assert!(sort.device_peak_bytes > 0);
        let map = out.report.phase("map").unwrap();
        assert!(map.host_peak_bytes > 0);
    }

    #[test]
    fn every_read_appears_in_exactly_one_path() {
        let (_genome, out) = assemble_genome(1000, 40, 10.0, 25, 5);
        let mut seen = std::collections::HashSet::new();
        for p in &out.paths {
            for s in &p.steps {
                assert!(seen.insert(s.vertex / 2), "read {} twice", s.vertex / 2);
            }
        }
    }
}
