//! Per-phase metrics and the final assembly report.

use crate::contig::ContigStats;
use gstream::iostats::IoSnapshot;
use serde::{Deserialize, Serialize};
use vgpu::DeviceStats;

/// Measurements for one pipeline phase — the columns of Tables II-V.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Phase name ("map", "sort", "reduce", "compress", "load").
    pub phase: String,
    /// Real elapsed seconds on this machine.
    pub wall_seconds: f64,
    /// Modeled seconds (device kernels + transfers + disk), the quantity
    /// comparable across GPU profiles and block sizes.
    pub modeled_seconds: f64,
    /// Device activity during the phase.
    pub device: DeviceStats,
    /// Disk activity during the phase.
    pub io: IoSnapshot,
    /// Peak host bytes reserved during the phase (Tables IV/V).
    pub host_peak_bytes: u64,
    /// Peak device bytes allocated during the phase (Tables IV/V).
    pub device_peak_bytes: u64,
}

impl PhaseMetrics {
    /// Modeled seconds = device kernel/transfer time + disk time. Disk and
    /// device work overlap poorly in the paper's pipeline (it is I/O
    /// bound), so the sum is the honest model.
    pub fn compute_modeled(&mut self) {
        self.modeled_seconds = self.device.total_seconds() + self.io.total_seconds();
    }

    /// Fold another run of the same phase in (e.g. a resumed sort): times
    /// and traffic add, peaks keep the maximum, and the modeled total is
    /// recomputed.
    pub fn merge(&mut self, other: PhaseMetrics) {
        self.wall_seconds += other.wall_seconds;
        self.host_peak_bytes = self.host_peak_bytes.max(other.host_peak_bytes);
        self.device_peak_bytes = self.device_peak_bytes.max(other.device_peak_bytes);
        self.io.bytes_read += other.io.bytes_read;
        self.io.bytes_written += other.io.bytes_written;
        self.io.read_seconds += other.io.read_seconds;
        self.io.write_seconds += other.io.write_seconds;
        self.device.kernel_launches += other.device.kernel_launches;
        self.device.kernel_seconds += other.device.kernel_seconds;
        self.device.h2d_bytes += other.device.h2d_bytes;
        self.device.d2h_bytes += other.device.d2h_bytes;
        self.device.transfer_seconds += other.device.transfer_seconds;
        self.device.mem_used = self.device.mem_used.max(other.device.mem_used);
        self.device.mem_peak = self.device.mem_peak.max(other.device.mem_peak);
        for (name, stat) in other.device.per_kernel {
            let entry = self.device.per_kernel.entry(name).or_default();
            entry.launches += stat.launches;
            entry.flops += stat.flops;
            entry.bytes += stat.bytes;
            entry.seconds += stat.seconds;
        }
        self.compute_modeled();
    }
}

/// Everything measured during one assembly.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AssemblyReport {
    /// Dataset label (preset name or "custom").
    pub dataset: String,
    /// Number of input reads.
    pub reads: u64,
    /// Total input bases.
    pub bases: u64,
    /// Per-phase metrics in pipeline order.
    pub phases: Vec<PhaseMetrics>,
    /// Directed edges in the final string graph.
    pub graph_edges: u64,
    /// Host bytes of the final graph.
    pub graph_bytes: u64,
    /// Contig statistics.
    pub contig_stats: ContigStats,
}

impl AssemblyReport {
    /// Total wall seconds across phases.
    pub fn total_wall_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_seconds).sum()
    }

    /// Total modeled seconds across phases.
    pub fn total_modeled_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.modeled_seconds).sum()
    }

    /// Metrics for a phase by name (case-insensitive).
    pub fn phase(&self, name: &str) -> Option<&PhaseMetrics> {
        self.phases
            .iter()
            .find(|p| p.phase.eq_ignore_ascii_case(name))
    }

    /// Append phase metrics; a phase already present under the same name
    /// (case-insensitive) is [`PhaseMetrics::merge`]d instead of
    /// duplicated, so a resumed phase can never appear twice.
    pub fn push_phase(&mut self, metrics: PhaseMetrics) {
        match self
            .phases
            .iter_mut()
            .find(|p| p.phase.eq_ignore_ascii_case(&metrics.phase))
        {
            Some(existing) => existing.merge(metrics),
            None => self.phases.push(metrics),
        }
    }

    /// Phase names in pipeline order, checking the uniqueness invariant:
    /// panics if two phases share a name (case-insensitive), which means
    /// something bypassed [`AssemblyReport::push_phase`].
    pub fn phases_in_order(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        for p in &self.phases {
            assert!(
                seen.insert(p.phase.to_ascii_lowercase()),
                "duplicate phase {:?} in report — phases must be added via push_phase",
                p.phase
            );
        }
        self.phases.iter().map(|p| p.phase.as_str()).collect()
    }

    /// Rebuild per-phase metrics purely from a recorded trace: each child
    /// span of the most recent root span named `root_name` becomes one
    /// phase, with device/io totals taken from the subtree's canonical
    /// `device.*`/`io.*` events and peaks from the `host.peak_bytes` /
    /// `device.peak_bytes` gauges. Because this reads the same events a
    /// `--trace-out` sink writes, report totals and trace totals cannot
    /// disagree. Dataset/graph/contig fields are left for the caller.
    pub fn from_trace(rollup: &obs::Rollup, root_name: &str) -> AssemblyReport {
        let mut report = AssemblyReport::default();
        let Some(root) = rollup.root_named(root_name) else {
            return report;
        };
        for child in rollup.children(root.id) {
            let agg = rollup.subtree(child.id);
            let mut metrics = PhaseMetrics {
                phase: child.name.clone(),
                wall_seconds: child.wall_seconds,
                modeled_seconds: 0.0,
                device: DeviceStats::from_agg(&agg),
                io: IoSnapshot::from_agg(&agg),
                host_peak_bytes: agg.gauge("host.peak_bytes"),
                device_peak_bytes: agg.gauge("device.peak_bytes"),
            };
            metrics.compute_modeled();
            report.push_phase(metrics);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, wall: f64, modeled: f64) -> PhaseMetrics {
        PhaseMetrics {
            phase: name.into(),
            wall_seconds: wall,
            modeled_seconds: modeled,
            ..Default::default()
        }
    }

    #[test]
    fn totals_sum_over_phases() {
        let report = AssemblyReport {
            phases: vec![phase("map", 1.0, 10.0), phase("sort", 2.0, 30.0)],
            ..Default::default()
        };
        assert!((report.total_wall_seconds() - 3.0).abs() < 1e-12);
        assert!((report.total_modeled_seconds() - 40.0).abs() < 1e-12);
        assert!(report.phase("sort").is_some());
        assert!(report.phase("reduce").is_none());
    }

    #[test]
    fn compute_modeled_adds_device_and_disk() {
        let mut m = PhaseMetrics {
            device: DeviceStats {
                kernel_seconds: 2.0,
                transfer_seconds: 1.0,
                ..Default::default()
            },
            io: IoSnapshot {
                read_seconds: 3.0,
                write_seconds: 4.0,
                ..Default::default()
            },
            ..Default::default()
        };
        m.compute_modeled();
        assert!((m.modeled_seconds - 10.0).abs() < 1e-12);
    }

    #[test]
    fn phase_lookup_is_case_insensitive() {
        let report = AssemblyReport {
            phases: vec![phase("Sort", 1.0, 2.0)],
            ..Default::default()
        };
        assert!(report.phase("sort").is_some());
        assert!(report.phase("SORT").is_some());
        assert!(report.phase("reduce").is_none());
    }

    #[test]
    fn push_phase_merges_duplicates_instead_of_duplicating() {
        let mut report = AssemblyReport::default();
        let mut first = phase("sort", 1.0, 0.0);
        first.io.bytes_read = 100;
        first.host_peak_bytes = 50;
        report.push_phase(first);
        let mut resumed = phase("Sort", 2.0, 0.0);
        resumed.io.bytes_read = 40;
        resumed.host_peak_bytes = 30;
        report.push_phase(resumed);

        assert_eq!(report.phases.len(), 1);
        let merged = report.phase("sort").unwrap();
        assert!((merged.wall_seconds - 3.0).abs() < 1e-12);
        assert_eq!(merged.io.bytes_read, 140);
        assert_eq!(merged.host_peak_bytes, 50);
        assert_eq!(report.phases_in_order(), vec!["sort"]);
    }

    #[test]
    #[should_panic(expected = "duplicate phase")]
    fn phases_in_order_panics_on_duplicates() {
        let report = AssemblyReport {
            phases: vec![phase("sort", 1.0, 1.0), phase("SORT", 1.0, 1.0)],
            ..Default::default()
        };
        let _ = report.phases_in_order();
    }

    #[test]
    fn from_trace_rebuilds_phases_from_events() {
        let rec = obs::Recorder::new();
        {
            let _root = rec.span("assembly");
            {
                let map = rec.span("map");
                let io = IoSnapshot {
                    bytes_read: 100,
                    bytes_written: 200,
                    read_seconds: 0.5,
                    write_seconds: 0.25,
                };
                io.emit(&rec, map.id());
                let dev = DeviceStats {
                    kernel_launches: 3,
                    kernel_seconds: 1.5,
                    ..Default::default()
                };
                dev.emit(&rec, map.id());
                rec.gauge_on(map.id(), "host.peak_bytes", 4096);
                rec.gauge_on(map.id(), "device.peak_bytes", 512);
            }
        }
        let rollup = obs::Rollup::from_events(&rec.events());
        let report = AssemblyReport::from_trace(&rollup, "assembly");
        assert_eq!(report.phases_in_order(), vec!["map"]);
        let map = report.phase("map").unwrap();
        assert_eq!(map.io.bytes_read, 100);
        assert_eq!(map.io.bytes_written, 200);
        assert_eq!(map.device.kernel_launches, 3);
        assert_eq!(map.host_peak_bytes, 4096);
        assert_eq!(map.device_peak_bytes, 512);
        assert_eq!(map.modeled_seconds, 1.5 + 0.75);
        assert!(map.wall_seconds > 0.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = AssemblyReport {
            dataset: "H.Chr 14".into(),
            reads: 42,
            phases: vec![phase("map", 0.5, 1.5)],
            ..Default::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: AssemblyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dataset, "H.Chr 14");
        assert_eq!(back.phases.len(), 1);
    }
}

impl std::fmt::Display for PhaseMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} wall {:>9.3}s  modeled {:>10.6}s  host peak {:>10}  device peak {:>10}",
            self.phase,
            self.wall_seconds,
            self.modeled_seconds,
            obs::human_bytes(self.host_peak_bytes),
            obs::human_bytes(self.device_peak_bytes)
        )
    }
}

impl std::fmt::Display for AssemblyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} reads / {} bases",
            if self.dataset.is_empty() {
                "assembly"
            } else {
                &self.dataset
            },
            self.reads,
            self.bases
        )?;
        for p in &self.phases {
            writeln!(f, "  {p}")?;
        }
        writeln!(
            f,
            "  graph: {} edges ({}) | contigs: {} ({} multi-read), {} bases, N50 {}, max {}",
            self.graph_edges,
            obs::human_bytes(self.graph_bytes),
            self.contig_stats.count,
            self.contig_stats.multi_read,
            self.contig_stats.total_bases,
            self.contig_stats.n50,
            self.contig_stats.max_len
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn report_renders_every_phase_and_the_summary() {
        let report = AssemblyReport {
            dataset: "demo".into(),
            reads: 10,
            bases: 1000,
            phases: vec![PhaseMetrics {
                phase: "sort".into(),
                wall_seconds: 1.5,
                host_peak_bytes: 10_737_418_240,
                ..Default::default()
            }],
            graph_edges: 4,
            ..Default::default()
        };
        let text = report.to_string();
        assert!(text.contains("demo: 10 reads / 1000 bases"));
        assert!(text.contains("sort"));
        assert!(text.contains("graph: 4 edges"));
        // Peaks render human-readable, not as raw byte counts.
        assert!(text.contains("10.0 GiB"), "{text}");
        assert!(!text.contains("10737418240"), "{text}");
    }
}
