//! Per-phase metrics and the final assembly report.

use crate::contig::ContigStats;
use gstream::iostats::IoSnapshot;
use serde::{Deserialize, Serialize};
use vgpu::DeviceStats;

/// Measurements for one pipeline phase — the columns of Tables II-V.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Phase name ("map", "sort", "reduce", "compress", "load").
    pub phase: String,
    /// Real elapsed seconds on this machine.
    pub wall_seconds: f64,
    /// Modeled seconds (device kernels + transfers + disk), the quantity
    /// comparable across GPU profiles and block sizes.
    pub modeled_seconds: f64,
    /// Device activity during the phase.
    pub device: DeviceStats,
    /// Disk activity during the phase.
    pub io: IoSnapshot,
    /// Peak host bytes reserved during the phase (Tables IV/V).
    pub host_peak_bytes: u64,
    /// Peak device bytes allocated during the phase (Tables IV/V).
    pub device_peak_bytes: u64,
}

impl PhaseMetrics {
    /// Modeled seconds = device kernel/transfer time + disk time. Disk and
    /// device work overlap poorly in the paper's pipeline (it is I/O
    /// bound), so the sum is the honest model.
    pub fn compute_modeled(&mut self) {
        self.modeled_seconds = self.device.total_seconds() + self.io.total_seconds();
    }
}

/// Everything measured during one assembly.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AssemblyReport {
    /// Dataset label (preset name or "custom").
    pub dataset: String,
    /// Number of input reads.
    pub reads: u64,
    /// Total input bases.
    pub bases: u64,
    /// Per-phase metrics in pipeline order.
    pub phases: Vec<PhaseMetrics>,
    /// Directed edges in the final string graph.
    pub graph_edges: u64,
    /// Host bytes of the final graph.
    pub graph_bytes: u64,
    /// Contig statistics.
    pub contig_stats: ContigStats,
}

impl AssemblyReport {
    /// Total wall seconds across phases.
    pub fn total_wall_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_seconds).sum()
    }

    /// Total modeled seconds across phases.
    pub fn total_modeled_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.modeled_seconds).sum()
    }

    /// Metrics for a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseMetrics> {
        self.phases.iter().find(|p| p.phase == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, wall: f64, modeled: f64) -> PhaseMetrics {
        PhaseMetrics {
            phase: name.into(),
            wall_seconds: wall,
            modeled_seconds: modeled,
            ..Default::default()
        }
    }

    #[test]
    fn totals_sum_over_phases() {
        let report = AssemblyReport {
            phases: vec![phase("map", 1.0, 10.0), phase("sort", 2.0, 30.0)],
            ..Default::default()
        };
        assert!((report.total_wall_seconds() - 3.0).abs() < 1e-12);
        assert!((report.total_modeled_seconds() - 40.0).abs() < 1e-12);
        assert!(report.phase("sort").is_some());
        assert!(report.phase("reduce").is_none());
    }

    #[test]
    fn compute_modeled_adds_device_and_disk() {
        let mut m = PhaseMetrics {
            device: DeviceStats {
                kernel_seconds: 2.0,
                transfer_seconds: 1.0,
                ..Default::default()
            },
            io: IoSnapshot {
                read_seconds: 3.0,
                write_seconds: 4.0,
                ..Default::default()
            },
            ..Default::default()
        };
        m.compute_modeled();
        assert!((m.modeled_seconds - 10.0).abs() < 1e-12);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = AssemblyReport {
            dataset: "H.Chr 14".into(),
            reads: 42,
            phases: vec![phase("map", 0.5, 1.5)],
            ..Default::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: AssemblyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dataset, "H.Chr 14");
        assert_eq!(back.phases.len(), 1);
    }
}

impl std::fmt::Display for PhaseMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} wall {:>9.3}s  modeled {:>10.6}s  host peak {:>10}  device peak {:>10}",
            self.phase,
            self.wall_seconds,
            self.modeled_seconds,
            self.host_peak_bytes,
            self.device_peak_bytes
        )
    }
}

impl std::fmt::Display for AssemblyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} reads / {} bases",
            if self.dataset.is_empty() { "assembly" } else { &self.dataset },
            self.reads,
            self.bases
        )?;
        for p in &self.phases {
            writeln!(f, "  {p}")?;
        }
        writeln!(
            f,
            "  graph: {} edges ({} B) | contigs: {} ({} multi-read), {} bases, N50 {}, max {}",
            self.graph_edges,
            self.graph_bytes,
            self.contig_stats.count,
            self.contig_stats.multi_read,
            self.contig_stats.total_bases,
            self.contig_stats.n50,
            self.contig_stats.max_len
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn report_renders_every_phase_and_the_summary() {
        let report = AssemblyReport {
            dataset: "demo".into(),
            reads: 10,
            bases: 1000,
            phases: vec![PhaseMetrics {
                phase: "sort".into(),
                wall_seconds: 1.5,
                ..Default::default()
            }],
            graph_edges: 4,
            ..Default::default()
        };
        let text = report.to_string();
        assert!(text.contains("demo: 10 reads / 1000 bases"));
        assert!(text.contains("sort"));
        assert!(text.contains("graph: 4 edges"));
    }
}
