//! Assembly verification against a reference.
//!
//! With error-free simulated reads, every correctly spelled contig must be
//! an exact substring of the reference genome (on either strand). This
//! gives the integration tests — and users of the simulator — a decisive
//! ground truth the paper could not have (its datasets were real).

use genome::sim::is_substring_either_strand;
use genome::PackedSeq;
use serde::{Deserialize, Serialize};

/// Result of validating contigs against a reference.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Contigs checked.
    pub contigs: u64,
    /// Contigs that align exactly (either strand).
    pub exact: u64,
    /// Contigs that do not occur in the reference (misassemblies).
    pub misassembled: u64,
    /// Fraction of reference bases covered by exact contigs (coarse:
    /// sum of exact contig lengths / reference length, capped at 1).
    pub coverage_estimate: f64,
}

impl VerifyReport {
    /// `true` when no contig is misassembled.
    pub fn all_exact(&self) -> bool {
        self.misassembled == 0
    }
}

/// Count edges whose claimed overlap does not hold on the actual
/// sequences — the false positives that too-narrow fingerprints admit
/// (the paper: 128-bit fingerprints "yield zero false positive edges").
pub fn count_false_edges(graph: &crate::StringGraph, reads: &genome::ReadSet) -> u64 {
    let mut false_edges = 0u64;
    for e in graph.edges() {
        let l = e.overlap as usize;
        let u_seq = reads.vertex_seq(e.from);
        let v_seq = reads.vertex_seq(e.to);
        let n = u_seq.len();
        let suffix_matches = (0..l).all(|k| u_seq.get(n - l + k) == v_seq.get(k));
        if !suffix_matches {
            false_edges += 1;
        }
    }
    false_edges
}

/// Validate `contigs` against `reference`.
pub fn verify_contigs(reference: &PackedSeq, contigs: &[PackedSeq]) -> VerifyReport {
    let mut exact = 0u64;
    let mut exact_bases = 0u64;
    for c in contigs {
        if is_substring_either_strand(c, reference) {
            exact += 1;
            exact_bases += c.len() as u64;
        }
    }
    let misassembled = contigs.len() as u64 - exact;
    VerifyReport {
        contigs: contigs.len() as u64,
        exact,
        misassembled,
        coverage_estimate: (exact_bases as f64 / reference.len().max(1) as f64).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_contigs_pass() {
        let reference: PackedSeq = "ACGTACGTAAGGCC".parse().unwrap();
        let contigs = vec![
            "ACGTACGT".parse().unwrap(),
            "AAGGCC".parse().unwrap(),
            // Reverse strand contig.
            "GGCCTT".parse().unwrap(),
        ];
        let report = verify_contigs(&reference, &contigs);
        assert_eq!(report.exact, 3);
        assert!(report.all_exact());
        assert!(report.coverage_estimate > 0.9);
    }

    #[test]
    fn misassemblies_are_counted() {
        let reference: PackedSeq = "AAAAAAAAAA".parse().unwrap();
        let contigs = vec!["AAAA".parse().unwrap(), "CCCC".parse().unwrap()];
        let report = verify_contigs(&reference, &contigs);
        assert_eq!(report.exact, 1);
        assert_eq!(report.misassembled, 1);
        assert!(!report.all_exact());
    }

    #[test]
    fn false_edge_counter_flags_bogus_overlaps() {
        use crate::StringGraph;
        use genome::ReadSet;
        let reads = ReadSet::from_reads(
            6,
            ["ACGTAC", "TACGGA", "GGGGGG"]
                .iter()
                .map(|s| s.parse().unwrap()),
        )
        .unwrap();
        let mut g = StringGraph::new(reads.vertex_count());
        // Genuine: read0 suffix TAC == read1 prefix TAC (l = 3).
        g.try_add_edge(0, 2, 3).unwrap();
        assert_eq!(count_false_edges(&g, &reads), 0);
        // Bogus: read1 -> read2 with no real overlap.
        g.try_add_edge(2, 4, 3).unwrap();
        // The bogus edge and its complement are both false.
        assert_eq!(count_false_edges(&g, &reads), 2);
    }

    #[test]
    fn empty_contig_set_is_trivially_exact() {
        let reference: PackedSeq = "ACGT".parse().unwrap();
        let report = verify_contigs(&reference, &[]);
        assert_eq!(report.contigs, 0);
        assert!(report.all_exact());
        assert_eq!(report.coverage_estimate, 0.0);
    }
}
