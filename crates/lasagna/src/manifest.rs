//! Checkpoint manifest: durable progress record for resumable assembly.
//!
//! The pipeline writes `manifest.json` into the spill directory after every
//! completed phase *and* after every sorted partition inside the sort phase.
//! The manifest records which phases finished, which partitions are already
//! sorted, and the footer `(records, checksum)` of every durable artifact, so
//! a resumed run can validate its inputs before trusting them (ROBUSTNESS.md
//! §"Checkpoint / resume").
//!
//! The store path is crash-safe: serialize to `manifest.json.tmp`, fsync,
//! then atomically rename over `manifest.json`. A crash mid-store leaves the
//! previous manifest intact; a torn manifest is therefore always a sign of
//! external corruption and surfaces as [`gstream::StreamError::Corrupt`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::Result;
use gstream::spill::MANIFEST_NAME;
use gstream::StreamError;

/// Current manifest schema version. Bump on incompatible change; `load`
/// treats an unknown version as corruption (fail loudly, never guess).
pub const MANIFEST_VERSION: u32 = 1;

/// Footer summary of one durable artifact (spill partition, graph snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    /// Number of 20-byte records (or raw bytes for non-KV artifacts).
    pub records: u64,
    /// FNV-1a-64 checksum of the payload.
    pub checksum: u64,
}

/// Durable progress record for one assembly run.
///
/// The same schema serves two callers: the single-node pipeline keeps one
/// manifest per spill directory, and every rank of a distributed cluster
/// keeps one in its node directory (`node<i>/manifest.json`). The
/// distributed fields (`blocks`, `shuffled`, `joined`) default to empty so
/// single-node manifests — and manifests written before they existed —
/// parse unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Fingerprint of the input dataset + configuration; a mismatch on
    /// resume means "different run" and triggers a silent fresh restart.
    pub config_hash: u64,
    /// Completed phases, in completion order (`"map"`, `"sort"`, `"reduce"`).
    pub phases: Vec<String>,
    /// Partition tags (`sfx_00045`, …) whose sorted file is durable.
    pub sorted: Vec<String>,
    /// Footer summaries keyed by file name relative to the spill dir.
    pub files: BTreeMap<String, FileEntry>,
    /// Distributed only: input blocks this rank has durably mapped.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub blocks: Vec<u64>,
    /// Distributed only: partition tags this rank has durably shuffled
    /// (concatenated from every mapper's durable output, pre-sort).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub shuffled: Vec<String>,
    /// Distributed only: partition tags whose reduce-join candidate list
    /// (the superstep's graph delta) is durable on this rank's disk.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub joined: Vec<String>,
}

impl Manifest {
    /// Fresh manifest for a run with the given dataset/config fingerprint.
    pub fn new(config_hash: u64) -> Self {
        Manifest {
            version: MANIFEST_VERSION,
            config_hash,
            phases: Vec::new(),
            sorted: Vec::new(),
            files: BTreeMap::new(),
            blocks: Vec::new(),
            shuffled: Vec::new(),
            joined: Vec::new(),
        }
    }

    /// Load the manifest from `dir`, if one exists.
    ///
    /// Returns `Ok(None)` when the file is absent (nothing to resume);
    /// a present-but-unparseable manifest is corruption and fails loudly.
    pub fn load(dir: &Path) -> Result<Option<Manifest>> {
        let path = dir.join(MANIFEST_NAME);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StreamError::Io(e).into()),
        };
        let manifest: Manifest = serde_json::from_slice(&bytes).map_err(|e| {
            StreamError::Corrupt(format!("manifest {} is unreadable: {e}", path.display()))
        })?;
        if manifest.version != MANIFEST_VERSION {
            return Err(StreamError::Corrupt(format!(
                "manifest {} has unsupported version {}",
                path.display(),
                manifest.version
            ))
            .into());
        }
        Ok(Some(manifest))
    }

    /// Durably store the manifest in `dir` (temp file + fsync + rename).
    ///
    /// The `manifest.write` failpoint fires before any byte is written, so
    /// an injected crash here always leaves the previous manifest intact.
    pub fn store(&self, dir: &Path, faults: &faultsim::Faults) -> Result<()> {
        faults
            .hit(faultsim::MANIFEST_WRITE)
            .map_err(StreamError::Fault)?;
        let path = dir.join(MANIFEST_NAME);
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        let json = serde_json::to_vec_pretty(self)
            .map_err(|e| StreamError::BadConfig(format!("manifest serialization failed: {e}")))?;
        let mut file = std::fs::File::create(&tmp).map_err(StreamError::Io)?;
        file.write_all(&json).map_err(StreamError::Io)?;
        file.sync_all().map_err(StreamError::Io)?;
        drop(file);
        std::fs::rename(&tmp, &path).map_err(StreamError::Io)?;
        // The rename is only crash-durable once the directory entry is too.
        gstream::fsync_dir(dir).map_err(StreamError::Io)?;
        Ok(())
    }

    /// Whether `phase` already completed.
    pub fn is_done(&self, phase: &str) -> bool {
        self.phases.iter().any(|p| p == phase)
    }

    /// Mark `phase` completed (idempotent).
    pub fn mark_phase(&mut self, phase: &str) {
        if !self.is_done(phase) {
            self.phases.push(phase.to_string());
        }
    }

    /// Whether the partition `tag` (e.g. `sfx_00045`) is already sorted.
    pub fn is_sorted(&self, tag: &str) -> bool {
        self.sorted.iter().any(|t| t == tag)
    }

    /// Mark the partition `tag` sorted (idempotent).
    pub fn mark_sorted(&mut self, tag: &str) {
        if !self.is_sorted(tag) {
            self.sorted.push(tag.to_string());
        }
    }

    /// Whether this rank durably mapped input `block`.
    pub fn has_block(&self, block: u64) -> bool {
        self.blocks.contains(&block)
    }

    /// Mark input `block` durably mapped by this rank (idempotent).
    pub fn mark_block(&mut self, block: u64) {
        if !self.has_block(block) {
            self.blocks.push(block);
        }
    }

    /// Whether the partition `tag` is durably shuffled on this rank.
    pub fn is_shuffled(&self, tag: &str) -> bool {
        self.shuffled.iter().any(|t| t == tag)
    }

    /// Mark the partition `tag` durably shuffled (idempotent).
    pub fn mark_shuffled(&mut self, tag: &str) {
        if !self.is_shuffled(tag) {
            self.shuffled.push(tag.to_string());
        }
    }

    /// Whether the partition `tag`'s candidate list is durable here.
    pub fn is_joined(&self, tag: &str) -> bool {
        self.joined.iter().any(|t| t == tag)
    }

    /// Mark the partition `tag`'s candidate list durable (idempotent).
    pub fn mark_joined(&mut self, tag: &str) {
        if !self.is_joined(tag) {
            self.joined.push(tag.to_string());
        }
    }

    /// Record the footer of the spill file at `path` under its file name.
    pub fn record_file(&mut self, path: &Path) -> Result<()> {
        let footer = gstream::read_footer(path)?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        self.files.insert(
            name,
            FileEntry {
                records: footer.records,
                checksum: footer.checksum,
            },
        );
        Ok(())
    }

    /// Record a raw (non-KV) artifact by length and FNV-1a checksum.
    pub fn record_raw(&mut self, name: &str, bytes: &[u8]) {
        self.files.insert(
            name.to_string(),
            FileEntry {
                records: bytes.len() as u64,
                checksum: gstream::fnv1a(bytes),
            },
        );
    }

    /// Check a raw artifact against its recorded entry.
    pub fn raw_matches(&self, name: &str, bytes: &[u8]) -> bool {
        self.files
            .get(name)
            .is_some_and(|e| e.records == bytes.len() as u64 && e.checksum == gstream::fnv1a(bytes))
    }

    /// Check the spill file at `path` against its recorded footer entry.
    /// `false` means "not recorded or footer mismatch" — callers treat it
    /// as "do the work again", not as an error.
    pub fn file_matches(&self, path: &Path) -> bool {
        let name = match path.file_name() {
            Some(n) => n.to_string_lossy().into_owned(),
            None => return false,
        };
        let entry = match self.files.get(&name) {
            Some(e) => *e,
            None => return false,
        };
        match gstream::read_footer(path) {
            Ok(f) => f.records == entry.records && f.checksum == entry.checksum,
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_store_and_load() {
        let dir = tempfile::tempdir().unwrap();
        let mut m = Manifest::new(0xfeed);
        m.mark_phase("map");
        m.mark_sorted("sfx_00004");
        m.record_raw("graph.bin", b"hello");
        m.store(dir.path(), &faultsim::Faults::disabled()).unwrap();
        let back = Manifest::load(dir.path()).unwrap().unwrap();
        assert_eq!(back.config_hash, 0xfeed);
        assert!(back.is_done("map"));
        assert!(!back.is_done("sort"));
        assert!(back.is_sorted("sfx_00004"));
        assert!(back.raw_matches("graph.bin", b"hello"));
        assert!(!back.raw_matches("graph.bin", b"hellp"));
    }

    #[test]
    fn per_node_fields_roundtrip_and_default_empty() {
        let dir = tempfile::tempdir().unwrap();
        let mut m = Manifest::new(0xbeef);
        m.mark_block(3);
        m.mark_block(3); // idempotent
        m.mark_shuffled("sfx_00045");
        m.mark_joined("pfx_00045_r001");
        m.store(dir.path(), &faultsim::Faults::disabled()).unwrap();
        let back = Manifest::load(dir.path()).unwrap().unwrap();
        assert_eq!(back.blocks, vec![3]);
        assert!(back.is_shuffled("sfx_00045"));
        assert!(!back.is_shuffled("sfx_00046"));
        assert!(back.is_joined("pfx_00045_r001"));

        // A pre-distributed manifest (no per-node fields) still parses.
        let legacy = format!(
            "{{\"version\":{MANIFEST_VERSION},\"config_hash\":9,\
             \"phases\":[\"map\"],\"sorted\":[],\"files\":{{}}}}"
        );
        std::fs::write(dir.path().join(MANIFEST_NAME), legacy).unwrap();
        let back = Manifest::load(dir.path()).unwrap().unwrap();
        assert!(back.blocks.is_empty());
        assert!(back.shuffled.is_empty());
        assert!(back.joined.is_empty());
        assert!(back.is_done("map"));
    }

    #[test]
    fn missing_manifest_loads_as_none() {
        let dir = tempfile::tempdir().unwrap();
        assert!(Manifest::load(dir.path()).unwrap().is_none());
    }

    #[test]
    fn garbage_manifest_fails_loudly() {
        let dir = tempfile::tempdir().unwrap();
        std::fs::write(dir.path().join(MANIFEST_NAME), b"{not json").unwrap();
        let err = Manifest::load(dir.path()).unwrap_err();
        assert!(format!("{err}").contains("unreadable"), "{err}");
    }

    #[test]
    fn unknown_version_fails_loudly() {
        let dir = tempfile::tempdir().unwrap();
        let mut m = Manifest::new(1);
        m.version = 99;
        m.store(dir.path(), &faultsim::Faults::disabled()).unwrap();
        assert!(Manifest::load(dir.path()).is_err());
    }

    #[test]
    fn injected_manifest_fault_leaves_previous_manifest_intact() {
        let dir = tempfile::tempdir().unwrap();
        let faults = faultsim::Faults::from_plan(
            &faultsim::FaultPlan::new().fail_at(faultsim::MANIFEST_WRITE, 2),
        );
        let mut m = Manifest::new(7);
        m.store(dir.path(), &faults).unwrap();
        m.mark_phase("map");
        assert!(m.store(dir.path(), &faults).is_err());
        // The previous (phase-less) manifest is still what's on disk.
        let back = Manifest::load(dir.path()).unwrap().unwrap();
        assert!(back.phases.is_empty());
        // One-shot arm: a retry succeeds.
        m.store(dir.path(), &faults).unwrap();
        assert!(Manifest::load(dir.path()).unwrap().unwrap().is_done("map"));
    }

    #[test]
    fn file_matches_tracks_footer_changes() {
        let dir = tempfile::tempdir().unwrap();
        let io = gstream::IoStats::default();
        let path = dir.path().join("part.kv");
        let mut w = gstream::RecordWriter::create(&path, io.clone()).unwrap();
        w.write(gstream::KvPair::new(5, 1)).unwrap();
        w.finish().unwrap();

        let mut m = Manifest::new(1);
        m.record_file(&path).unwrap();
        assert!(m.file_matches(&path));

        // Rewrite with different contents: footer no longer matches.
        let mut w = gstream::RecordWriter::create(&path, io).unwrap();
        w.write(gstream::KvPair::new(6, 1)).unwrap();
        w.finish().unwrap();
        assert!(!m.file_matches(&path));
    }
}
