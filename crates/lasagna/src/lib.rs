//! # lasagna — the paper's assembly pipeline
//!
//! This crate is the primary contribution of *GPU-Accelerated Large-Scale
//! Genome Assembly* (Goswami et al., IPDPS 2018): a string-graph assembler
//! that handles datasets far larger than device memory through a two-level
//! semi-streaming model. The pipeline (paper Fig. 4):
//!
//! 1. [`map`] — batch reads onto the device, fingerprint every prefix and
//!    suffix of each read and its reverse complement, partition the
//!    `(fingerprint, vertex)` tuples by overlap length into spill files;
//! 2. [`sortphase`] — externally sort every partition by fingerprint with
//!    the hybrid host/device scheme (`gstream::extsort`);
//! 3. [`reduce`] — stream co-sorted suffix/prefix partitions in descending
//!    length order, find fingerprint matches with vectorized bounds on the
//!    device, and greedily add edges to the host-resident [`StringGraph`];
//! 4. [`traverse`] + [`contig`] — extract unambiguous paths and spell
//!    contigs with prefix-scan/gather layout on the device.
//!
//! [`pipeline::Pipeline`] wires the phases together and produces an
//! [`report::AssemblyReport`] with per-phase wall time, modeled device/disk
//! time, and peak memory — the quantities behind the paper's Tables II-V.
//!
//! ```no_run
//! use genome::{GenomeSim, ShotgunSim};
//! use lasagna::{AssemblyConfig, Pipeline};
//!
//! let genome = GenomeSim::uniform(50_000, 1).generate();
//! let reads = ShotgunSim::error_free(100, 20.0, 2).sample(&genome);
//! let config = AssemblyConfig::for_dataset(63, 100);
//! let pipeline = Pipeline::laptop(config, "/tmp/lasagna-work").unwrap();
//! let out = pipeline.assemble(&reads).unwrap();
//! println!("{} contigs, N50 {}", out.contigs.len(), out.report.contig_stats.n50);
//! ```

pub mod bsp;
pub mod config;
pub mod contig;
pub mod delta;
pub mod fullgraph;
pub mod graph;
pub mod manifest;
pub mod map;
pub mod pipeline;
pub mod reduce;
pub mod report;
pub mod sortphase;
pub mod traverse;
pub mod verify;

pub use config::AssemblyConfig;
pub use contig::ContigStats;
pub use delta::ReadsMeta;
pub use fullgraph::MultiGraph;
pub use graph::{Edge, StringGraph};
pub use manifest::Manifest;
pub use pipeline::{AssemblyOutput, Pipeline};
pub use report::{AssemblyReport, PhaseMetrics};
pub use traverse::{Path, PathStep};

/// Errors from the assembly pipeline.
#[derive(Debug)]
pub enum LasagnaError {
    /// Streaming / disk failure.
    Stream(gstream::StreamError),
    /// Virtual-device failure.
    Device(vgpu::DeviceError),
    /// Input sequence problem.
    Genome(genome::GenomeError),
    /// Invalid configuration.
    BadConfig(String),
}

impl std::fmt::Display for LasagnaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LasagnaError::Stream(e) => write!(f, "stream: {e}"),
            LasagnaError::Device(e) => write!(f, "device: {e}"),
            LasagnaError::Genome(e) => write!(f, "genome: {e}"),
            LasagnaError::BadConfig(m) => write!(f, "bad config: {m}"),
        }
    }
}

impl std::error::Error for LasagnaError {}

impl From<gstream::StreamError> for LasagnaError {
    fn from(e: gstream::StreamError) -> Self {
        LasagnaError::Stream(e)
    }
}

impl From<vgpu::DeviceError> for LasagnaError {
    fn from(e: vgpu::DeviceError) -> Self {
        LasagnaError::Device(e)
    }
}

impl From<genome::GenomeError> for LasagnaError {
    fn from(e: genome::GenomeError) -> Self {
        LasagnaError::Genome(e)
    }
}

impl From<gstream::HostMemError> for LasagnaError {
    fn from(e: gstream::HostMemError) -> Self {
        LasagnaError::Stream(gstream::StreamError::HostMem(e))
    }
}

/// Convenience alias for fallible pipeline operations.
pub type Result<T> = std::result::Result<T, LasagnaError>;
