//! Sort phase: per-partition external sorting (Section III-B).
//!
//! Every suffix and prefix partition is sorted by fingerprint with the
//! hybrid host/device external sorter. Partitions are independent, and the
//! per-partition [`gstream::SortReport`]s aggregate into the phase totals
//! (the paper: sorting is "more than 50% of the total execution time").

use crate::config::AssemblyConfig;
use crate::Result;
use gstream::spill::{PartitionKind, SpillDir};
use gstream::{ExternalSorter, HostMem, SortConfig, SortReport};
use serde::{Deserialize, Serialize};
use std::path::Path;
use vgpu::Device;

/// Aggregated outcome of the sort phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SortPhaseReport {
    /// Per-partition reports, `(length, kind, report)` with kind
    /// `"sfx"`/`"pfx"`.
    pub partitions: Vec<(u32, String, SortReport)>,
    /// Total pairs sorted across partitions.
    pub total_pairs: u64,
    /// Maximum disk passes any partition needed.
    pub max_disk_passes: u32,
}

/// Sort every partition in `[l_min, l_max)` in place (each partition file
/// is replaced by its sorted version).
pub fn run(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
) -> Result<SortPhaseReport> {
    run_traced(device, host, spill, config, &obs::Recorder::disabled())
}

/// [`run`] with structured events: each partition sorts under its own
/// span (`sfx_00045`, `pfx_00045`, …) carrying the sorter's `sort.*`
/// counters, so a trace shows exactly which partition paid for which
/// merge passes.
pub fn run_traced(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    rec: &obs::Recorder,
) -> Result<SortPhaseReport> {
    run_checkpointed(device, host, spill, config, rec, |_| false, &mut |_, _| {
        Ok(())
    })
}

/// [`run_traced`] with per-partition resume support.
///
/// Partitions whose tag (`sfx_00045`, …) satisfies `skip` are already
/// durably sorted from a previous run: their footer record count still feeds
/// the report totals, but they are not re-sorted and emit **no** span (so a
/// trace of a resumed run shows exactly which partitions were redone). After
/// each freshly sorted partition lands under its final name, `on_sorted(tag,
/// path)` runs before the next partition starts — the pipeline uses it to
/// checkpoint the manifest, bounding lost work to one partition.
pub fn run_checkpointed(
    device: &Device,
    host: &HostMem,
    spill: &SpillDir,
    config: &AssemblyConfig,
    rec: &obs::Recorder,
    skip: impl Fn(&str) -> bool,
    on_sorted: &mut dyn FnMut(&str, &Path) -> Result<()>,
) -> Result<SortPhaseReport> {
    let sort_config = config
        .sort
        .unwrap_or_else(|| SortConfig::from_budgets(host, device));
    let sorter =
        ExternalSorter::new(device.clone(), host.clone(), sort_config)?.with_recorder(rec.clone());

    let mut report = SortPhaseReport::default();
    for len in config.l_min..config.l_max {
        for (kind, tag_kind) in [
            (PartitionKind::Suffix, "sfx"),
            (PartitionKind::Prefix, "pfx"),
        ] {
            let input = spill.path(kind, len);
            if !input.exists() {
                continue;
            }
            let tag = format!("{tag_kind}_{len:05}");
            if skip(&tag) {
                let footer = gstream::read_footer(&input)?;
                report.total_pairs += footer.records;
                report.partitions.push((
                    len,
                    tag_kind.to_string(),
                    SortReport {
                        pairs: footer.records,
                        ..SortReport::default()
                    },
                ));
                continue;
            }
            let span = rec.span(&tag);
            let sorted = spill.scratch_path(&format!("{tag_kind}_{len}_sorted"));
            let r = sorter.sort_file(spill, &input, &sorted)?;
            // Replace the unsorted partition with the sorted file.
            std::fs::rename(&sorted, &input).map_err(gstream::StreamError::from)?;
            drop(span);
            on_sorted(&tag, &input)?;
            report.total_pairs += r.pairs;
            report.max_disk_passes = report.max_disk_passes.max(r.disk_passes);
            report.partitions.push((len, tag_kind.to_string(), r));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::{IoStats, KvPair};
    use vgpu::GpuProfile;

    fn setup(host_bytes: u64) -> (tempfile::TempDir, Device, HostMem, SpillDir) {
        let dir = tempfile::tempdir().unwrap();
        let spill = SpillDir::create(dir.path(), IoStats::default()).unwrap();
        let device = Device::with_capacity(GpuProfile::k40(), 16 << 10);
        let host = HostMem::new(host_bytes);
        (dir, device, host, spill)
    }

    fn write_partition(spill: &SpillDir, kind: PartitionKind, len: u32, keys: &[u128]) {
        let mut w = spill.writer(kind, len).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            w.write(KvPair::new(k, i as u32)).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn all_partitions_end_up_sorted_in_place() {
        let (_g, device, host, spill) = setup(8 << 10);
        for len in 3..6u32 {
            write_partition(&spill, PartitionKind::Suffix, len, &[9, 2, 7, 1]);
            write_partition(&spill, PartitionKind::Prefix, len, &[5, 5, 0]);
        }
        let config = AssemblyConfig::for_dataset(3, 6);
        let report = run(&device, &host, &spill, &config).unwrap();
        assert_eq!(report.partitions.len(), 6);
        assert_eq!(report.total_pairs, 3 * 7);
        for len in 3..6u32 {
            let got: Vec<u128> = spill
                .reader(PartitionKind::Suffix, len)
                .unwrap()
                .read_all()
                .unwrap()
                .iter()
                .map(|p| p.key)
                .collect();
            assert_eq!(got, vec![1, 2, 7, 9]);
        }
    }

    #[test]
    fn missing_partitions_are_skipped() {
        let (_g, device, host, spill) = setup(8 << 10);
        write_partition(&spill, PartitionKind::Suffix, 4, &[3, 1]);
        let config = AssemblyConfig::for_dataset(3, 6);
        let report = run(&device, &host, &spill, &config).unwrap();
        assert_eq!(report.partitions.len(), 1);
    }

    #[test]
    fn small_host_budget_forces_multiple_disk_passes() {
        // 600-byte budget → m_h = 15 pairs; 60 pairs → 4 runs → 3 passes.
        let (_g, device, host, spill) = setup(600);
        let keys: Vec<u128> = (0..60u32).rev().map(|i| i as u128).collect();
        write_partition(&spill, PartitionKind::Suffix, 5, &keys);
        let config = AssemblyConfig::for_dataset(5, 6);
        let report = run(&device, &host, &spill, &config).unwrap();
        assert!(
            report.max_disk_passes >= 3,
            "passes: {}",
            report.max_disk_passes
        );
        let got: Vec<u128> = spill
            .reader(PartitionKind::Suffix, 5)
            .unwrap()
            .read_all()
            .unwrap()
            .iter()
            .map(|p| p.key)
            .collect();
        assert_eq!(got, (0..60).map(|i| i as u128).collect::<Vec<_>>());
    }

    #[test]
    fn respects_explicit_sort_config() {
        let (_g, device, host, spill) = setup(64 << 10);
        write_partition(&spill, PartitionKind::Prefix, 3, &[2, 1]);
        let mut config = AssemblyConfig::for_dataset(3, 4);
        config.sort = Some(SortConfig {
            host_block_pairs: 4,
            device_block_pairs: 2,
            kway: false,
        });
        let report = run(&device, &host, &spill, &config).unwrap();
        assert_eq!(report.partitions.len(), 1);
    }

    #[test]
    fn empty_spill_dir_is_a_no_op() {
        let (_g, device, host, spill) = setup(8 << 10);
        let config = AssemblyConfig::for_dataset(3, 6);
        let report = run(&device, &host, &spill, &config).unwrap();
        assert!(report.partitions.is_empty());
        assert_eq!(report.total_pairs, 0);
    }

    #[test]
    fn checkpointed_run_skips_sorted_partitions_and_reports_each_fresh_one() {
        let (_g, device, host, spill) = setup(8 << 10);
        for len in 3..6u32 {
            write_partition(&spill, PartitionKind::Suffix, len, &[9, 2, 7, 1]);
        }
        let config = AssemblyConfig::for_dataset(3, 6);
        let rec = obs::Recorder::new();
        let mut sorted_tags = Vec::new();
        let report = run_checkpointed(
            &device,
            &host,
            &spill,
            &config,
            &rec,
            |tag| tag == "sfx_00004",
            &mut |tag, path| {
                assert!(path.exists());
                sorted_tags.push(tag.to_string());
                Ok(())
            },
        )
        .unwrap();
        // Skipped partition still counts toward totals but is not re-sorted.
        assert_eq!(report.partitions.len(), 3);
        assert_eq!(report.total_pairs, 3 * 4);
        assert_eq!(sorted_tags, vec!["sfx_00003", "sfx_00005"]);
        // And it emits no span: only the two fresh partitions appear.
        let names: Vec<String> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                obs::Event::SpanStart { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"sfx_00003".to_string()));
        assert!(!names.contains(&"sfx_00004".to_string()));
    }

    #[test]
    fn writer_dropped_mid_write_yields_corrupt_error_on_sort() {
        let (_g, device, host, spill) = setup(8 << 10);
        // Hand-craft a truncated partition file.
        let path = spill.path(PartitionKind::Suffix, 4);
        std::fs::write(&path, [0u8; KvPair::BYTES + 7]).unwrap();
        let config = AssemblyConfig::for_dataset(4, 5);
        assert!(run(&device, &host, &spill, &config).is_err());
    }
}
