//! Incremental (delta) assembly: fold new reads into an already
//! assembled work directory without re-sorting the old corpus.
//!
//! The external sort is >50% of a full run (the paper's Tables II/III),
//! and it is the one phase whose output is reusable verbatim: the sorted
//! suffix/prefix partitions of the old corpus. A delta run therefore
//!
//! 1. **maps** only the new reads into a scratch spill (`delta/`),
//!    emitting their `(fingerprint, vertex)` tuples with *local* vertex
//!    ids,
//! 2. **sorts** just those tuples (tiny next to the corpus), and
//! 3. **merges** each delta partition into the corresponding live
//!    partition in one sequential pass, offsetting the new vertex ids by
//!    `2 · n_old` so they land after the old corpus's vertices — exactly
//!    the ids a from-scratch run over `old ++ new` would assign.
//!
//! Reduce and compress then re-run over the merged partitions via the
//! ordinary resume path. That replay is what buys **bit-identity**: the
//! merged partition files are byte-identical to what a from-scratch sort
//! of the union would produce (the device radix sort is stable and map
//! emits one tuple per vertex in ascending vertex order, so sorted
//! partition order *is* `(fingerprint, vertex)` order — a two-way merge
//! on that key reproduces it exactly), and everything downstream of the
//! partitions is deterministic. The golden in `tests/` holds this line:
//! delta output must equal `assemble(old ++ new)` byte for byte, from
//! graph to contig store.
//!
//! The resulting store/index are exported *beside* the live ones as a
//! new generation under `generations.json` (see `qserve::generations`
//! and SERVING.md, "Generations & hot reload") — the producing half of
//! the zero-downtime swap.

use crate::manifest::Manifest;
use crate::pipeline::{AssemblyOutput, Pipeline};
use crate::{map, sortphase, LasagnaError, Result};
use genome::{PackedSeq, ReadSet};
use gstream::{KvPair, RecordReader, RecordWriter, SpillDir, StreamError};
use qserve::{GenEntry, GenKind, GenManifest};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Sidecar file recording what `reads.packed` holds, written by every
/// assembly; delta runs read it back to reconstruct the old corpus.
pub const READS_META_FILE: &str = "reads.meta.json";

/// Records per merge buffer refill (20 B each — ~640 KiB per stream).
const MERGE_CHUNK: usize = 1 << 15;

/// The `reads.meta.json` sidecar: enough to rehydrate `reads.packed`
/// (the packed staging format carries no header of its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadsMeta {
    /// Length of every read in the staged corpus.
    pub read_len: u32,
    /// Number of reads staged.
    pub reads: u64,
}

impl ReadsMeta {
    /// Read the sidecar from `dir`, `None` if absent (a work directory
    /// that predates delta assembly).
    pub fn load(dir: &Path) -> Result<Option<ReadsMeta>> {
        let path = dir.join(READS_META_FILE);
        if !path.is_file() {
            return Ok(None);
        }
        let bytes = std::fs::read(&path).map_err(StreamError::from)?;
        let meta = serde_json::from_slice(&bytes).map_err(|e| {
            LasagnaError::Stream(StreamError::Corrupt(format!("{}: {e}", path.display())))
        })?;
        Ok(Some(meta))
    }

    /// Write the sidecar into `dir`.
    pub fn store(&self, dir: &Path) -> Result<()> {
        let body = serde_json::to_vec_pretty(self).expect("meta serializes");
        std::fs::write(dir.join(READS_META_FILE), body).map_err(StreamError::from)?;
        Ok(())
    }
}

/// A buffered sequential cursor over one partition file's records.
struct Cursor {
    reader: RecordReader,
    buf: Vec<KvPair>,
    idx: usize,
}

impl Cursor {
    fn open(path: &Path, io: gstream::IoStats) -> Result<Cursor> {
        Ok(Cursor {
            reader: RecordReader::open(path, io)?,
            buf: Vec::new(),
            idx: 0,
        })
    }

    fn peek(&mut self) -> Result<Option<KvPair>> {
        if self.idx == self.buf.len() {
            if self.reader.remaining() == 0 {
                return Ok(None);
            }
            self.buf = self.reader.next_chunk(MERGE_CHUNK)?;
            self.idx = 0;
            if self.buf.is_empty() {
                return Ok(None);
            }
        }
        Ok(Some(self.buf[self.idx]))
    }

    fn advance(&mut self) {
        self.idx += 1;
    }
}

/// Merge `delta`'s sorted partition into the live spill's, offsetting
/// delta vertex ids by `offset`. Writes through `RecordWriter`'s
/// tmp-then-rename commit, so a crash mid-merge leaves the old partition
/// intact and re-runnable.
fn merge_partition(
    spill: &SpillDir,
    delta: &SpillDir,
    kind: gstream::PartitionKind,
    len: u32,
    offset: u32,
) -> Result<()> {
    let live_path = spill.path(kind, len);
    let delta_path = delta.path(kind, len);
    if !delta_path.exists() {
        return Ok(()); // No new tuples at this length; live file already final.
    }
    let mut old = if live_path.exists() {
        Some(Cursor::open(&live_path, spill.io().clone())?)
    } else {
        None
    };
    let mut new = Cursor::open(&delta_path, delta.io().clone())?;
    let mut w = RecordWriter::create(&live_path, spill.io().clone())?;
    loop {
        let a = match &mut old {
            Some(c) => c.peek()?,
            None => None,
        };
        let b = new.peek()?.map(|p| KvPair::new(p.key, p.val + offset));
        match (a, b) {
            (None, None) => break,
            (Some(x), None) => {
                w.write(x)?;
                old.as_mut().expect("peeked").advance();
            }
            (None, Some(y)) => {
                w.write(y)?;
                new.advance();
            }
            (Some(x), Some(y)) => {
                // Old vertex ids all sit below `offset`, so on equal
                // fingerprints the old record always orders first — the
                // same `(key, val)` order the stable union sort yields.
                if x <= y {
                    w.write(x)?;
                    old.as_mut().expect("peeked").advance();
                } else {
                    w.write(y)?;
                    new.advance();
                }
            }
        }
    }
    w.finish()?;
    Ok(())
}

impl Pipeline {
    /// Fold `new_reads` into this spill directory's completed assembly
    /// and re-derive the downstream artifacts, reusing the old corpus's
    /// sorted partitions instead of re-sorting them. The output — graph,
    /// paths, contigs, and the exported `contigs.store` — is
    /// **bit-identical** to a from-scratch [`assemble`] of
    /// `old reads ++ new_reads`.
    ///
    /// Requires a directory previously assembled by this pipeline's
    /// exact configuration (the manifest's fingerprint is checked);
    /// fails with [`LasagnaError::BadConfig`] otherwise.
    ///
    /// [`assemble`]: Pipeline::assemble
    pub fn assemble_delta(&self, new_reads: &ReadSet) -> Result<AssemblyOutput> {
        self.config().validate()?;
        let bad = |m: String| Err(LasagnaError::BadConfig(m));
        if self.config().range_split != 1 {
            return bad("delta assembly requires range_split = 1".into());
        }
        let root = self.spill().root().to_path_buf();
        let Some(meta) = ReadsMeta::load(&root)? else {
            return bad(format!(
                "{} has no {READS_META_FILE}; run a full assembly here first",
                root.display()
            ));
        };
        if meta.read_len as usize != new_reads.read_len() {
            return bad(format!(
                "delta reads are {} bp but the assembled corpus is {} bp",
                new_reads.read_len(),
                meta.read_len
            ));
        }
        let packed = std::fs::read(root.join("reads.packed")).map_err(StreamError::from)?;
        let old = ReadSet::from_packed_bytes(meta.read_len as usize, meta.reads as usize, &packed)?;
        let old_fingerprint = self.dataset_fingerprint(&old);
        let manifest = match Manifest::load(&root)? {
            Some(m) => m,
            None => {
                return bad(format!(
                    "{} has no assembly manifest; run a full assembly here first",
                    root.display()
                ))
            }
        };
        if manifest.config_hash != old_fingerprint {
            return bad(
                "the work directory was assembled with a different corpus or \
                 configuration; delta assembly would corrupt it"
                    .into(),
            );
        }
        if !manifest.is_done("map") || !manifest.is_done("sort") {
            return bad("the existing assembly never finished map+sort; resume it first".into());
        }

        let n_old = old.len();
        let offset = (n_old as u32) * 2;
        let mut union = old;
        for read in new_reads.iter() {
            union.push(&read)?;
        }

        let rec = self.recorder().clone();
        let span = rec.span("delta");

        // Map + sort only the new reads, into a scratch spill beside the
        // live partitions. The scratch shares the pipeline's IoStats so
        // the delta's I/O lands in the same accounting.
        let delta_root = root.join("delta");
        let delta_spill = if delta_root.exists() {
            SpillDir::open(&delta_root, self.spill().io().clone())?
        } else {
            SpillDir::create(&delta_root, self.spill().io().clone())?
        };
        delta_spill.clear()?;
        self.phase("map-delta", || {
            map::run_traced(
                self.device(),
                self.host(),
                &delta_spill,
                self.config(),
                new_reads,
                &rec,
            )
        })?;
        self.phase("sort-delta", || {
            sortphase::run_checkpointed(
                self.device(),
                self.host(),
                &delta_spill,
                self.config(),
                &rec,
                |_| false,
                &mut |_, _| Ok(()),
            )
        })?;

        // One sequential pass per partition: merge the delta tuples into
        // the live sorted file at their union positions.
        self.phase("merge-delta", || {
            for (kind, _tag, len) in self.partitions() {
                merge_partition(self.spill(), &delta_spill, kind, len, offset)?;
            }
            Ok(())
        })?;
        delta_spill.clear()?;

        // Re-key the manifest to the union corpus with map+sort complete
        // and every merged partition checkpointed — exactly the state a
        // from-scratch union run leaves after its sort phase — then let
        // the ordinary resume path replay reduce and compress.
        let union_fingerprint = self.dataset_fingerprint(&union);
        let mut next = Manifest::new(union_fingerprint);
        next.mark_phase("map");
        for (kind, tag, _len) in self.partitions() {
            let path = self.spill().path(kind, _len);
            if path.exists() {
                next.record_file(&path)?;
                next.mark_sorted(&tag);
            }
        }
        next.mark_phase("sort");
        next.store(&root, self.faults())?;
        drop(span);

        self.assemble_resumable(&union)
    }

    /// Export `contigs` as a new generation in this work directory:
    /// `gen-NNNNNN.store` + `gen-NNNNNN.mdx` written atomically beside
    /// the live generation, checksum-bound, and activated in
    /// `generations.json`. Returns the new generation id. Serving
    /// processes pick it up via the `Reload` wire command
    /// (SERVING.md, "Generations & hot reload").
    pub fn export_generation(
        &self,
        contigs: &[PackedSeq],
        reads: &ReadSet,
        index_cfg: &qserve::IndexConfig,
        kind: GenKind,
    ) -> Result<u64> {
        let dir = self.spill().root();
        let io = self.spill().io();
        let gen_err =
            |e: qserve::GenError| LasagnaError::Stream(StreamError::Corrupt(e.to_string()));
        let mut manifest = if GenManifest::exists(dir) {
            GenManifest::load(dir, io).map_err(gen_err)?
        } else {
            GenManifest {
                version: qserve::generations::GEN_MANIFEST_VERSION,
                active: 1,
                generations: Vec::new(),
            }
        };
        let parent = manifest.generations.last().map(|g| g.id);
        let id = manifest.next_id();
        let store_name = qserve::gen_store_file(id);
        let index_name = qserve::gen_index_file(id);
        qserve::ContigStore::write(&dir.join(&store_name), contigs, io)?;
        let store = qserve::ContigStore::open(&dir.join(&store_name), io)?;
        let index = qserve::MinimizerIndex::build(&store, index_cfg);
        index.write(&dir.join(&index_name), io)?;
        manifest.admit(GenEntry {
            id,
            store: store_name,
            index: index_name,
            store_checksum: store.checksum(),
            reads: reads.len() as u64,
            read_len: reads.read_len() as u32,
            kind,
            parent: match kind {
                GenKind::Full => None,
                GenKind::Delta => parent,
            },
        });
        manifest.store(dir, io).map_err(gen_err)?;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AssemblyConfig;
    use genome::{GenomeSim, ShotgunSim};

    fn sim_reads(genome_len: usize, read_len: usize, coverage: f64, seed: u64) -> ReadSet {
        let genome = GenomeSim::uniform(genome_len, seed).generate();
        ShotgunSim::error_free(read_len, coverage, seed + 1).sample(&genome)
    }

    fn split(reads: &ReadSet, at: usize) -> (ReadSet, ReadSet) {
        let mut a = ReadSet::new(reads.read_len());
        let mut b = ReadSet::new(reads.read_len());
        for i in 0..reads.len() {
            let r = reads.read(i);
            if i < at {
                a.push(&r).unwrap();
            } else {
                b.push(&r).unwrap();
            }
        }
        (a, b)
    }

    /// Every on-disk artifact that must be byte-identical between a
    /// delta run and a from-scratch union run.
    fn artifact_bytes(dir: &Path, config: &AssemblyConfig) -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for len in config.l_min..config.l_max {
            for tag in ["sfx", "pfx"] {
                let p = dir.join(format!("{tag}_{len:05}.kv"));
                if p.exists() {
                    out.push((format!("{tag}_{len:05}.kv"), std::fs::read(&p).unwrap()));
                }
            }
        }
        for name in ["graph.bin", qserve::STORE_FILE] {
            let p = dir.join(name);
            assert!(p.exists(), "{name} must exist after assembly");
            out.push((name.to_string(), std::fs::read(&p).unwrap()));
        }
        out
    }

    #[test]
    fn delta_assembly_is_bit_identical_to_from_scratch_union() {
        let all = sim_reads(1500, 40, 12.0, 11);
        let (old, new) = split(&all, all.len() * 2 / 3);
        assert!(!old.is_empty() && !new.is_empty());
        let config = AssemblyConfig::for_dataset(25, 40);

        // From-scratch union run.
        let full_dir = tempfile::tempdir().unwrap();
        let full = Pipeline::laptop(config.clone(), full_dir.path()).unwrap();
        let mut union = ReadSet::new(40);
        for i in 0..all.len() {
            union.push(&all.read(i)).unwrap();
        }
        let full_out = full.assemble(&union).unwrap();

        // Old corpus, then delta of the new reads.
        let delta_dir = tempfile::tempdir().unwrap();
        let pipe = Pipeline::laptop(config.clone(), delta_dir.path()).unwrap();
        pipe.assemble(&old).unwrap();
        let delta_out = pipe.assemble_delta(&new).unwrap();

        // In-memory outputs agree…
        assert_eq!(delta_out.graph.to_bytes(), full_out.graph.to_bytes());
        assert_eq!(delta_out.contigs, full_out.contigs);
        assert_eq!(delta_out.paths.len(), full_out.paths.len());

        // …and every durable artifact is byte-identical, partitions
        // included: the merged sort output equals the union sort output.
        let full_files = artifact_bytes(full_dir.path(), &config);
        let delta_files = artifact_bytes(delta_dir.path(), &config);
        assert_eq!(
            full_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            delta_files.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
        for ((name, a), (_, b)) in full_files.iter().zip(&delta_files) {
            assert_eq!(a, b, "{name} differs between delta and from-scratch");
        }

        // A second delta on top of the delta still works (the sidecar
        // and manifest now describe the union).
        let more = sim_reads(600, 40, 4.0, 77);
        let delta2 = pipe.assemble_delta(&more).unwrap();
        let mut union2 = union;
        for i in 0..more.len() {
            union2.push(&more.read(i)).unwrap();
        }
        let full2 = full.assemble(&union2).unwrap();
        assert_eq!(delta2.graph.to_bytes(), full2.graph.to_bytes());
        assert_eq!(delta2.contigs, full2.contigs);
    }

    #[test]
    fn delta_refuses_directories_it_could_corrupt() {
        let config = AssemblyConfig::for_dataset(25, 40);
        let dir = tempfile::tempdir().unwrap();
        let pipe = Pipeline::laptop(config, dir.path()).unwrap();
        let reads = sim_reads(500, 40, 6.0, 5);

        // Nothing assembled here yet.
        match pipe.assemble_delta(&reads) {
            Err(LasagnaError::BadConfig(m)) => assert!(m.contains(READS_META_FILE), "{m}"),
            other => panic!("expected BadConfig, got {other:?}"),
        }

        // Wrong read length against an assembled corpus.
        pipe.assemble(&reads).unwrap();
        let short = sim_reads(500, 30, 4.0, 6);
        match pipe.assemble_delta(&short) {
            Err(LasagnaError::BadConfig(m)) => assert!(m.contains("30 bp"), "{m}"),
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn export_generation_appends_checksum_bound_entries() {
        let config = AssemblyConfig::for_dataset(25, 40);
        let dir = tempfile::tempdir().unwrap();
        let pipe = Pipeline::laptop(config, dir.path()).unwrap();
        let reads = sim_reads(1000, 40, 10.0, 21);
        let out = pipe.assemble(&reads).unwrap();
        let icfg = qserve::IndexConfig {
            k: 9,
            w: 5,
            threads: 1,
        };
        let g1 = pipe
            .export_generation(&out.contigs, &reads, &icfg, GenKind::Full)
            .unwrap();
        assert_eq!(g1, 1);

        let more = sim_reads(400, 40, 3.0, 22);
        let delta_out = pipe.assemble_delta(&more).unwrap();
        let mut union = ReadSet::new(40);
        for i in 0..reads.len() {
            union.push(&reads.read(i)).unwrap();
        }
        for i in 0..more.len() {
            union.push(&more.read(i)).unwrap();
        }
        let g2 = pipe
            .export_generation(&delta_out.contigs, &union, &icfg, GenKind::Delta)
            .unwrap();
        assert_eq!(g2, 2);

        let manifest = GenManifest::load(dir.path(), pipe.spill().io()).unwrap();
        assert_eq!(manifest.active, 2);
        assert_eq!(manifest.generations.len(), 2);
        let e2 = manifest.active_entry();
        assert_eq!(e2.parent, Some(1));
        assert_eq!(e2.kind, GenKind::Delta);
        assert_eq!(e2.reads, union.len() as u64);

        // Both generations open and validate against their entries.
        let io = pipe.spill().io();
        for entry in &manifest.generations {
            let store = qserve::ContigStore::open(&dir.path().join(&entry.store), io).unwrap();
            let index = qserve::MinimizerIndex::open(&dir.path().join(&entry.index), io).unwrap();
            assert_eq!(store.checksum(), entry.store_checksum);
            assert_eq!(index.store_checksum(), entry.store_checksum);
        }

        // The delta generation's store matches a from-scratch union's.
        let full_dir = tempfile::tempdir().unwrap();
        let full = Pipeline::laptop(AssemblyConfig::for_dataset(25, 40), full_dir.path()).unwrap();
        full.assemble(&union).unwrap();
        assert_eq!(
            std::fs::read(dir.path().join(&manifest.active_entry().store)).unwrap(),
            std::fs::read(full_dir.path().join(qserve::STORE_FILE)).unwrap()
        );
    }
}
