//! Bulk-synchronous path extraction — the paper's future work, realized.
//!
//! Section IV-D closes with: "We also plan on processing the string graph
//! in parallel using a bulk-synchronous processing model." This module
//! implements that plan for the traversal stage: **pointer jumping**
//! (parallel list ranking) over the successor array. Each superstep doubles
//! every vertex's jump distance — `jump[v] ← jump[jump[v]]` — so after
//! ⌈log₂ n⌉ barriers every vertex knows its chain terminal and its distance
//! to it; paths then materialize with one parallel scatter keyed by
//! `(terminal, distance)`. Supersteps are data-parallel (rayon here,
//! thread blocks on a real GPU) and charged to the device clock.
//!
//! [`extract_paths_bsp`] produces exactly the same paths as the sequential
//! [`crate::traverse::extract_paths`] (property-tested equivalence), so it
//! is a drop-in replacement for the compress phase's first stage.

use crate::graph::StringGraph;
use crate::traverse::{Path, PathStep, TraverseOptions};
use rayon::prelude::*;
use std::collections::HashMap;
use vgpu::{Device, KernelCost};

const NONE: u32 = u32::MAX;

/// Build the successor array and break every cycle at its smallest vertex
/// (cutting the edge *into* it), returning the cycle entry points.
fn successors_with_cycles_broken(graph: &StringGraph) -> (Vec<u32>, Vec<u32>) {
    let n = graph.vertex_count() as usize;
    let mut next: Vec<u32> = (0..n as u32)
        .map(|v| graph.out(v).map_or(NONE, |e| e.to))
        .collect();
    let mut cycle_seeds = Vec::new();
    let mut color = vec![0u8; n]; // 0 unvisited, 1 on trail, 2 done
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut trail = Vec::new();
        let mut v = start;
        loop {
            if color[v] == 2 {
                break; // merges into already-classified territory
            }
            if color[v] == 1 {
                // The trail suffix from v is a cycle; cut before its
                // smallest vertex, which becomes the emission start.
                let pos = trail
                    .iter()
                    .position(|&t| t as usize == v)
                    .expect("on trail");
                let cycle = &trail[pos..];
                let min = *cycle.iter().min().expect("nonempty");
                let pred = cycle
                    .iter()
                    .copied()
                    .find(|&c| next[c as usize] == min)
                    .expect("cycle predecessor");
                next[pred as usize] = NONE;
                cycle_seeds.push(min);
                break;
            }
            color[v] = 1;
            trail.push(v as u32);
            match next[v] {
                NONE => break,
                w => v = w as usize,
            }
        }
        for &t in &trail {
            color[t as usize] = 2;
        }
    }
    (next, cycle_seeds)
}

/// Extract paths by pointer jumping. `device`, when given, is charged one
/// kernel per superstep (the BSP barriers of a GPU implementation).
pub fn extract_paths_bsp(
    graph: &StringGraph,
    read_len: u32,
    opts: TraverseOptions,
    device: Option<&Device>,
) -> Vec<Path> {
    let n = graph.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    let (next, cycle_seeds) = successors_with_cycles_broken(graph);

    // Pointer jumping: `jump[v]` converges to the chain terminal and
    // `dist[v]` to the hop count. One superstep per round.
    let mut jump = next.clone();
    let mut dist: Vec<u32> = next.iter().map(|&w| (w != NONE) as u32).collect();
    let rounds = (usize::BITS - n.leading_zeros()) as usize + 1;
    let mut jump_next = vec![0u32; n];
    let mut dist_next = vec![0u32; n];
    for _ in 0..rounds {
        if let Some(dev) = device {
            dev.charge_kernel(
                "bsp_pointer_jump",
                KernelCost::new(n as u64 * 2, n as u64 * 16),
            );
        }
        jump_next
            .par_iter_mut()
            .zip(dist_next.par_iter_mut())
            .enumerate()
            .for_each(|(v, (j, d))| {
                let t = jump[v];
                if t == NONE {
                    *j = NONE;
                    *d = dist[v];
                } else if jump[t as usize] == NONE {
                    *j = t; // t is the terminal
                    *d = dist[v];
                } else {
                    *j = jump[t as usize];
                    *d = dist[v] + dist[t as usize];
                }
            });
        std::mem::swap(&mut jump, &mut jump_next);
        std::mem::swap(&mut dist, &mut dist_next);
    }
    // Normalize: a terminal's own jump target is itself.
    let terminal_of = |v: u32| -> u32 {
        if jump[v as usize] == NONE {
            v
        } else {
            jump[v as usize]
        }
    };

    // Decide which chains to emit (the sequential traversal's rules).
    // Regular seeds: out-degree 1, in-degree 0, canonical orientation
    // (seed ≤ complement of terminal). Cycle chains: the orientation whose
    // smallest vertex is smaller than its mirror's smallest vertex.
    let mut emitted: Vec<(u32, u32)> = Vec::new(); // (seed, terminal)
    for v in 0..n as u32 {
        if graph.out(v).is_some() && !graph.has_in(v) {
            let t = terminal_of(v);
            if v <= t ^ 1 {
                emitted.push((v, t));
            }
        }
    }
    for &m in &cycle_seeds {
        // The mirror cycle's smallest vertex is the smallest complement of
        // this chain's vertices; both cycles appear in `cycle_seeds`, so
        // keep the one with the smaller entry.
        let mut mirror_min = u32::MAX;
        let mut v = m;
        loop {
            mirror_min = mirror_min.min(v ^ 1);
            match next[v as usize] {
                NONE => break,
                w => v = w,
            }
        }
        if m < mirror_min {
            emitted.push((m, terminal_of(m)));
        }
    }
    emitted.sort_unstable();

    // Materialize with a parallel scatter: every vertex knows its chain
    // (terminal) and its index from the end (dist).
    let mut path_of_terminal: HashMap<u32, usize> = HashMap::new();
    let mut paths: Vec<Vec<PathStep>> = Vec::with_capacity(emitted.len());
    for &(seed, terminal) in &emitted {
        path_of_terminal.insert(terminal, paths.len());
        paths.push(vec![
            PathStep {
                vertex: NONE,
                overhang: 0
            };
            dist[seed as usize] as usize + 1
        ]);
    }
    if let Some(dev) = device {
        dev.charge_kernel(
            "bsp_scatter_paths",
            KernelCost::new(n as u64, n as u64 * 16),
        );
    }
    // (Scatter is expressed sequentially per chain-membership check but is
    // embarrassingly parallel: no two vertices share a slot.)
    let mut slots: Vec<(usize, usize, PathStep)> = (0..n as u32)
        .into_par_iter()
        .filter_map(|v| {
            let t = terminal_of(v);
            let path_idx = *path_of_terminal.get(&t)?;
            // Mirror-orientation vertices share no terminal with emitted
            // chains, so membership in the map is exact... except the
            // degenerate single-vertex "chain" (a terminal with no
            // pointer at all), which only counts if it is the seed.
            if next[v as usize] == NONE && v != t {
                return None;
            }
            let len = paths[path_idx].len();
            let idx = len - 1 - dist[v as usize] as usize;
            let overhang = match graph.out(v) {
                Some(e) if idx + 1 < len => read_len - e.overlap,
                _ => read_len,
            };
            Some((
                path_idx,
                idx,
                PathStep {
                    vertex: v,
                    overhang,
                },
            ))
        })
        .collect();
    slots.sort_unstable_by_key(|(p, i, _)| (*p, *i));
    for (path_idx, idx, step) in slots {
        paths[path_idx][idx] = step;
    }

    let mut out: Vec<Path> = paths.into_iter().map(|steps| Path { steps }).collect();

    // Track chain membership for the singleton pass.
    let mut in_path = vec![false; n];
    for p in &out {
        for s in &p.steps {
            debug_assert_ne!(s.vertex, NONE, "scatter must fill every slot");
            in_path[s.vertex as usize] = true;
            in_path[(s.vertex ^ 1) as usize] = true;
        }
    }

    if opts.include_singletons {
        for v in (0..n as u32).step_by(2) {
            if !in_path[v as usize] && graph.out(v).is_none() && !graph.has_in(v) {
                out.push(Path {
                    steps: vec![PathStep {
                        vertex: v,
                        overhang: read_len,
                    }],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::extract_paths;
    use proptest::prelude::*;

    fn sort_paths(mut paths: Vec<Path>) -> Vec<Path> {
        paths.sort_by_key(|p| p.steps.first().map(|s| s.vertex).unwrap_or(u32::MAX));
        paths
    }

    fn assert_equivalent(graph: &StringGraph, read_len: u32) {
        let opts = TraverseOptions::default();
        let seq = sort_paths(extract_paths(graph, read_len, opts));
        let bsp = sort_paths(extract_paths_bsp(graph, read_len, opts, None));
        assert_eq!(seq, bsp);
    }

    #[test]
    fn matches_sequential_on_simple_chain() {
        let mut g = StringGraph::new(8);
        g.try_add_edge(0, 2, 7).unwrap();
        g.try_add_edge(2, 4, 5).unwrap();
        assert_equivalent(&g, 10);
    }

    #[test]
    fn matches_sequential_on_multiple_chains_and_singletons() {
        let mut g = StringGraph::new(16);
        g.try_add_edge(0, 2, 7).unwrap();
        g.try_add_edge(2, 4, 5).unwrap();
        g.try_add_edge(6, 8, 6).unwrap();
        assert_equivalent(&g, 10);
    }

    #[test]
    fn matches_sequential_on_cycles() {
        let mut g = StringGraph::new(6);
        g.try_add_edge(0, 2, 6).unwrap();
        g.try_add_edge(2, 4, 6).unwrap();
        g.try_add_edge(4, 0, 6).unwrap();
        assert_equivalent(&g, 10);
    }

    #[test]
    fn matches_sequential_on_mixed_orientation_chains() {
        let mut g = StringGraph::new(12);
        // Chain with odd (reverse-strand) vertices in the middle.
        g.try_add_edge(0, 5, 7).unwrap();
        g.try_add_edge(5, 8, 6).unwrap();
        assert_equivalent(&g, 10);
    }

    #[test]
    fn empty_graph_gives_no_paths() {
        let g = StringGraph::new(0);
        assert!(extract_paths_bsp(&g, 10, TraverseOptions::default(), None).is_empty());
    }

    #[test]
    fn singletons_can_be_excluded() {
        let g = StringGraph::new(8);
        let opts = TraverseOptions {
            include_singletons: false,
        };
        assert!(extract_paths_bsp(&g, 10, opts, None).is_empty());
    }

    #[test]
    fn device_supersteps_are_charged() {
        use vgpu::GpuProfile;
        let dev = Device::new(GpuProfile::k40());
        let mut g = StringGraph::new(64);
        g.try_add_edge(0, 2, 7).unwrap();
        extract_paths_bsp(&g, 10, TraverseOptions::default(), Some(&dev));
        assert!(dev.stats().per_kernel.contains_key("bsp_pointer_jump"));
        let jumps = dev.stats().per_kernel["bsp_pointer_jump"].launches;
        assert!(jumps >= 7, "log2(64)+1 rounds expected, got {jumps}");
        assert!(dev.stats().per_kernel.contains_key("bsp_scatter_paths"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn matches_sequential_on_random_greedy_graphs(
            edges in prop::collection::vec((0u32..60, 0u32..60, 3u32..10), 0..90)
        ) {
            let mut g = StringGraph::new(60);
            for (a, b, l) in edges {
                let _ = g.try_add_edge(a, b, l);
            }
            assert_equivalent(&g, 10);
        }
    }
}
