//! Path extraction (first stage of Section III-D).
//!
//! "Traversal begins with vertices with in-degree 0 and out-degree 1 as
//! seeds. Next, from each seed, we continue to extend the path by appending
//! the read-ID and overhang-length of the current vertex ... and stop after
//! we encounter a vertex with no outgoing edge."
//!
//! Two practical matters the paper leaves implicit:
//!
//! * every path has a complementary mirror (the WC-paired edges guarantee
//!   it), which would spell every contig twice — we emit only the
//!   *canonical* orientation (smaller endpoint vertex id);
//! * a perfectly circular component has no seed; we break such cycles at
//!   their smallest vertex so no reads are silently dropped.

use crate::graph::StringGraph;
use genome::readset::VertexId;
use serde::{Deserialize, Serialize};

/// One step of a path: a vertex and its overhang length (read length minus
/// the overlap with the next vertex; full read length for the last vertex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathStep {
    /// The vertex (2·read + strand).
    pub vertex: VertexId,
    /// Bases this vertex contributes to the contig.
    pub overhang: u32,
}

/// An unambiguous path through the string graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// Steps in traversal order.
    pub steps: Vec<PathStep>,
}

impl Path {
    /// Total contig length this path spells.
    pub fn contig_len(&self) -> u64 {
        self.steps.iter().map(|s| s.overhang as u64).sum()
    }
}

/// Options for path extraction.
#[derive(Debug, Clone, Copy)]
pub struct TraverseOptions {
    /// Emit reads with no overlaps as single-read paths.
    pub include_singletons: bool,
}

impl Default for TraverseOptions {
    fn default() -> Self {
        TraverseOptions {
            include_singletons: true,
        }
    }
}

fn walk(graph: &StringGraph, seed: VertexId, read_len: u32, visited: &mut [bool]) -> Path {
    let mut steps = Vec::new();
    let mut v = seed;
    loop {
        visited[v as usize] = true;
        visited[(v ^ 1) as usize] = true;
        match graph.out(v) {
            Some(e) if !visited[e.to as usize] => {
                steps.push(PathStep {
                    vertex: v,
                    overhang: read_len - e.overlap,
                });
                v = e.to;
            }
            _ => {
                // Last vertex contributes its whole read.
                steps.push(PathStep {
                    vertex: v,
                    overhang: read_len,
                });
                return Path { steps };
            }
        }
    }
}

/// Extract all paths from the graph. `read_len` is the uniform read length.
pub fn extract_paths(graph: &StringGraph, read_len: u32, opts: TraverseOptions) -> Vec<Path> {
    let n = graph.vertex_count();
    let mut visited = vec![false; n as usize];
    let mut paths = Vec::new();

    // Pass 1: proper seeds (in-degree 0, out-degree 1). The mirror of a
    // seed-to-sink path starts at the sink's complement, which is also a
    // seed; keep the orientation whose seed id is smaller.
    for v in 0..n {
        if visited[v as usize] || !graph.has_out(v) || graph.has_in(v) {
            continue;
        }
        // Find the sink to decide canonical orientation without committing.
        let mut end = v;
        let mut hops = 0u32;
        while let Some(e) = graph.out(end) {
            end = e.to;
            hops += 1;
            if hops > n {
                break; // defensive: cannot happen with degree ≤ 1
            }
        }
        let mirror_seed = end ^ 1;
        if v <= mirror_seed {
            paths.push(walk(graph, v, read_len, &mut visited));
        } else {
            // The mirror will be (or has been) emitted from its own seed;
            // just mark this orientation visited.
            let mut u = v;
            loop {
                visited[u as usize] = true;
                visited[(u ^ 1) as usize] = true;
                match graph.out(u) {
                    Some(e) if !visited[e.to as usize] => u = e.to,
                    _ => break,
                }
            }
        }
    }

    // Pass 2: cycles (every vertex has in and out). Break at the smallest
    // unvisited vertex.
    for v in 0..n {
        if !visited[v as usize] && graph.has_out(v) {
            paths.push(walk(graph, v, read_len, &mut visited));
        }
    }

    // Pass 3: singletons — forward orientation only.
    if opts.include_singletons {
        for v in (0..n).step_by(2) {
            if !visited[v as usize] && !graph.has_out(v) && !graph.has_in(v) {
                visited[v as usize] = true;
                visited[(v ^ 1) as usize] = true;
                paths.push(Path {
                    steps: vec![PathStep {
                        vertex: v,
                        overhang: read_len,
                    }],
                });
            }
        }
    }

    paths
}

/// [`extract_paths`] with structured events: `traverse.paths`,
/// `traverse.steps` and `traverse.singletons` counters on the current
/// span.
pub fn extract_paths_traced(
    graph: &StringGraph,
    read_len: u32,
    opts: TraverseOptions,
    rec: &obs::Recorder,
) -> Vec<Path> {
    let paths = extract_paths(graph, read_len, opts);
    if rec.is_enabled() {
        let steps: u64 = paths.iter().map(|p| p.steps.len() as u64).sum();
        let singletons = paths.iter().filter(|p| p.steps.len() == 1).count() as u64;
        rec.counter("traverse.paths", paths.len() as u64);
        rec.counter("traverse.steps", steps);
        rec.counter("traverse.singletons", singletons);
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph(edges: &[(u32, u32, u32)], vertices: u32) -> StringGraph {
        let mut g = StringGraph::new(vertices);
        for &(u, v, l) in edges {
            g.try_add_edge(u, v, l).unwrap();
        }
        g
    }

    #[test]
    fn simple_chain_spells_one_path_with_overhangs() {
        // 0 -> 2 (overlap 7), 2 -> 4 (overlap 5); read length 10.
        let g = chain_graph(&[(0, 2, 7), (2, 4, 5)], 8);
        let paths = extract_paths(
            &g,
            10,
            TraverseOptions {
                include_singletons: false,
            },
        );
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(
            p.steps,
            vec![
                PathStep {
                    vertex: 0,
                    overhang: 3
                },
                PathStep {
                    vertex: 2,
                    overhang: 5
                },
                PathStep {
                    vertex: 4,
                    overhang: 10
                },
            ]
        );
        assert_eq!(p.contig_len(), 18);
    }

    #[test]
    fn mirror_path_is_not_duplicated() {
        let g = chain_graph(&[(0, 2, 7)], 4);
        // Edges present: 0->2 and 3->1; both describe the same contig.
        let paths = extract_paths(
            &g,
            10,
            TraverseOptions {
                include_singletons: false,
            },
        );
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn singletons_appear_once_in_forward_orientation() {
        let g = StringGraph::new(6);
        let paths = extract_paths(&g, 10, TraverseOptions::default());
        assert_eq!(paths.len(), 3);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.steps.len(), 1);
            assert_eq!(p.steps[0].vertex, (i * 2) as u32);
            assert_eq!(p.steps[0].overhang, 10);
        }
    }

    #[test]
    fn singletons_can_be_excluded() {
        let g = StringGraph::new(6);
        let paths = extract_paths(
            &g,
            10,
            TraverseOptions {
                include_singletons: false,
            },
        );
        assert!(paths.is_empty());
    }

    #[test]
    fn cycles_are_broken_not_dropped() {
        // 0 -> 2 -> 4 -> 0 : a 3-cycle (plus its mirror 1<-3<-5<-1).
        let mut g = StringGraph::new(6);
        g.try_add_edge(0, 2, 6).unwrap();
        g.try_add_edge(2, 4, 6).unwrap();
        g.try_add_edge(4, 0, 6).unwrap();
        let paths = extract_paths(
            &g,
            10,
            TraverseOptions {
                include_singletons: false,
            },
        );
        assert_eq!(paths.len(), 1);
        let verts: Vec<u32> = paths[0].steps.iter().map(|s| s.vertex).collect();
        assert_eq!(verts.len(), 3);
        assert!(verts.contains(&0) && verts.contains(&2) && verts.contains(&4));
    }

    #[test]
    fn every_read_lands_in_exactly_one_path() {
        let g = chain_graph(&[(0, 2, 7), (2, 4, 5), (6, 8, 3)], 12);
        let paths = extract_paths(&g, 10, TraverseOptions::default());
        let mut seen_reads = std::collections::HashSet::new();
        for p in &paths {
            for s in &p.steps {
                assert!(
                    seen_reads.insert(s.vertex / 2),
                    "read {} in two paths",
                    s.vertex / 2
                );
            }
        }
        assert_eq!(seen_reads.len(), 6); // all 6 reads covered
    }

    #[test]
    fn mid_chain_vertices_are_not_seeds() {
        let g = chain_graph(&[(0, 2, 7), (2, 4, 5)], 6);
        // Vertex 2 has in and out; only 0 (or the mirror 5) seeds.
        let paths = extract_paths(
            &g,
            10,
            TraverseOptions {
                include_singletons: false,
            },
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].steps.first().unwrap().vertex, 0);
    }
}
