//! The greedy string graph.
//!
//! "Our approach of building the graph is greedy, so each vertex will have
//! at most one incoming edge and at most one outgoing edge. We maintain a
//! bit-vector to store the out-degree information of all vertices. Upon
//! receiving a request to add a candidate edge (u, v, l), we check the
//! bit-vector to find out if either the vertex u or v′ (WC complement of v)
//! has an outgoing edge, and if so, discards the edge. If both vertices
//! have no outgoing edge, we add edges (u, v, l) and (v′, u′, l) to the
//! graph and update the bit-vector." — Section III-C.
//!
//! Because every edge is inserted together with its complement, a vertex's
//! in-degree equals its complement's out-degree, so the single out-degree
//! bit-vector bounds both.
//!
//! The graph lives in *host* memory (the paper: a human-genome graph is
//! ~12 GB, beyond any device), stored as a flat `(target, overlap)` table:
//! 4 + 1 bytes per vertex, the same footprint arithmetic as the paper's.

use genome::readset::VertexId;
use serde::{Deserialize, Serialize};

/// A directed overlap edge `(from, to, overlap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub from: VertexId,
    /// Target vertex.
    pub to: VertexId,
    /// Overlap length in bases.
    pub overlap: u32,
}

/// Why a candidate edge was not inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// `u` already has an outgoing edge.
    SourceBusy,
    /// `v′` already has an outgoing edge (so `v` has an incoming one).
    TargetBusy,
    /// Self-loop (`v == u`) or fold-back (`v == u′`).
    Degenerate,
}

/// Greedy string graph with ≤1 in/out edge per vertex.
#[derive(Debug, Clone)]
pub struct StringGraph {
    /// Per-vertex outgoing edge: target and overlap. `u32::MAX` = none.
    out_target: Vec<u32>,
    out_overlap: Vec<u32>,
    /// Out-degree bit-vector (the structure the paper ships between nodes
    /// in the distributed reduce).
    out_bits: Vec<u64>,
    edges: u64,
}

const NONE: u32 = u32::MAX;

impl StringGraph {
    /// An edgeless graph over `vertex_count` vertices (2 × reads).
    pub fn new(vertex_count: u32) -> Self {
        assert!(
            vertex_count.is_multiple_of(2),
            "vertices come in complement pairs"
        );
        StringGraph {
            out_target: vec![NONE; vertex_count as usize],
            out_overlap: vec![0; vertex_count as usize],
            out_bits: vec![0u64; (vertex_count as usize).div_ceil(64)],
            edges: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        self.out_target.len() as u32
    }

    /// Number of directed edges (complement pairs count as two).
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// `true` if `v` has an outgoing edge.
    pub fn has_out(&self, v: VertexId) -> bool {
        self.out_bits[(v / 64) as usize] >> (v % 64) & 1 == 1
    }

    /// `true` if `v` has an incoming edge (⟺ `v′` has an outgoing one).
    pub fn has_in(&self, v: VertexId) -> bool {
        self.has_out(v ^ 1)
    }

    /// The outgoing edge of `v`, if any.
    pub fn out(&self, v: VertexId) -> Option<Edge> {
        if self.has_out(v) {
            Some(Edge {
                from: v,
                to: self.out_target[v as usize],
                overlap: self.out_overlap[v as usize],
            })
        } else {
            None
        }
    }

    fn set_out(&mut self, v: VertexId, to: VertexId, overlap: u32) {
        self.out_target[v as usize] = to;
        self.out_overlap[v as usize] = overlap;
        self.out_bits[(v / 64) as usize] |= 1 << (v % 64);
    }

    /// Offer a candidate edge `(u, v, l)`. On acceptance both `(u, v, l)`
    /// and `(v′, u′, l)` are inserted and `Ok(())` is returned; otherwise
    /// the reason for rejection.
    pub fn try_add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        overlap: u32,
    ) -> std::result::Result<(), Rejection> {
        if u == v || v == (u ^ 1) {
            return Err(Rejection::Degenerate);
        }
        if self.has_out(u) {
            return Err(Rejection::SourceBusy);
        }
        if self.has_out(v ^ 1) {
            return Err(Rejection::TargetBusy);
        }
        self.set_out(u, v, overlap);
        self.set_out(v ^ 1, u ^ 1, overlap);
        self.edges += 2;
        Ok(())
    }

    /// Iterate all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.vertex_count()).filter_map(move |v| self.out(v))
    }

    /// Host bytes this graph occupies (the paper's 4 B vertex-id + 1 B
    /// overlap per edge slot, plus the bit-vector).
    pub fn memory_bytes(&self) -> u64 {
        self.out_target.len() as u64 * 5 + self.out_bits.len() as u64 * 8
    }

    /// A copy of the out-degree bit-vector (what the distributed reduce
    /// passes from node to node).
    pub fn out_bits(&self) -> Vec<u64> {
        self.out_bits.clone()
    }

    /// Adopt a bit-vector received from the upstream node (distributed
    /// reduce): vertices marked there are treated as already having an
    /// outgoing edge even though the edge itself lives on another node.
    pub fn merge_out_bits(&mut self, bits: &[u64]) {
        assert_eq!(
            bits.len(),
            self.out_bits.len(),
            "bit-vector length mismatch"
        );
        for (mine, theirs) in self.out_bits.iter_mut().zip(bits) {
            *mine |= theirs;
        }
    }

    /// Check the structural invariants (used by tests and debug builds):
    /// every edge has its complement with the same overlap, and in/out
    /// degrees never exceed one (guaranteed by representation).
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for v in 0..self.vertex_count() {
            if let Some(e) = self.out(v) {
                let mirror = self
                    .out(e.to ^ 1)
                    .ok_or_else(|| format!("edge {v}->{} lacks complement", e.to))?;
                if mirror.to != v ^ 1 || mirror.overlap != e.overlap {
                    return Err(format!(
                        "complement of {v}->{} is {}->{} (overlap {} vs {})",
                        e.to,
                        e.to ^ 1,
                        mirror.to,
                        e.overlap,
                        mirror.overlap
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepted_edge_inserts_complement_pair() {
        let mut g = StringGraph::new(8);
        g.try_add_edge(0, 2, 5).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(
            g.out(0),
            Some(Edge {
                from: 0,
                to: 2,
                overlap: 5
            })
        );
        assert_eq!(
            g.out(3),
            Some(Edge {
                from: 3,
                to: 1,
                overlap: 5
            })
        );
        assert!(g.has_in(2));
        assert!(g.has_in(1));
        g.check_invariants().unwrap();
    }

    #[test]
    fn busy_source_and_target_are_rejected() {
        let mut g = StringGraph::new(8);
        g.try_add_edge(0, 2, 5).unwrap();
        // 0 already has an out-edge.
        assert_eq!(g.try_add_edge(0, 4, 3), Err(Rejection::SourceBusy));
        // 2 already has an in-edge (3 = 2' has an out-edge).
        assert_eq!(g.try_add_edge(4, 2, 3), Err(Rejection::TargetBusy));
        // But 4 -> 6 is free.
        g.try_add_edge(4, 6, 3).unwrap();
        assert_eq!(g.edge_count(), 4);
        g.check_invariants().unwrap();
    }

    #[test]
    fn degenerate_edges_are_rejected() {
        let mut g = StringGraph::new(4);
        assert_eq!(g.try_add_edge(0, 0, 3), Err(Rejection::Degenerate));
        assert_eq!(g.try_add_edge(0, 1, 3), Err(Rejection::Degenerate));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn greedy_priority_goes_to_first_offer() {
        // Reduce processes partitions in descending overlap order, so the
        // first offer has the longest overlap and must win.
        let mut g = StringGraph::new(8);
        g.try_add_edge(0, 2, 90).unwrap();
        assert!(g.try_add_edge(0, 4, 50).is_err());
        assert_eq!(g.out(0).unwrap().overlap, 90);
    }

    #[test]
    fn bit_vector_roundtrip_and_merge() {
        let mut g = StringGraph::new(128);
        g.try_add_edge(0, 64, 9).unwrap();
        let bits = g.out_bits();
        let mut g2 = StringGraph::new(128);
        g2.merge_out_bits(&bits);
        // 0 and 65 are marked busy even though g2 has no local edges.
        assert!(g2.has_out(0));
        assert!(g2.has_out(65));
        assert_eq!(g2.try_add_edge(0, 2, 5), Err(Rejection::SourceBusy));
        assert_eq!(g2.try_add_edge(2, 64, 5), Err(Rejection::TargetBusy));
    }

    #[test]
    fn memory_estimate_matches_paper_arithmetic() {
        // 2.5 B edges × (4 B + 1 B) ≈ 12 GB (paper Section III-C). Our per-
        // vertex table is the same 5 bytes per potential edge slot.
        let g = StringGraph::new(1024);
        assert_eq!(g.memory_bytes(), 1024 * 5 + (1024 / 64) * 8);
    }

    #[test]
    fn edges_iterator_covers_both_directions() {
        let mut g = StringGraph::new(8);
        g.try_add_edge(0, 2, 5).unwrap();
        g.try_add_edge(2, 4, 4).unwrap();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        g.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "complement pairs")]
    fn odd_vertex_count_panics() {
        StringGraph::new(7);
    }
}

impl StringGraph {
    /// Serialize to a compact byte image (magic, vertex count, per-vertex
    /// target + overlap, out-bits) — the checkpoint format of the
    /// pipeline's resume support.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.out_target.len();
        let mut out = Vec::with_capacity(16 + n * 8 + self.out_bits.len() * 8);
        out.extend_from_slice(b"LSGR");
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&self.edges.to_le_bytes());
        for i in 0..n {
            out.extend_from_slice(&self.out_target[i].to_le_bytes());
            out.extend_from_slice(&self.out_overlap[i].to_le_bytes());
        }
        for w in &self.out_bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Reconstruct from [`StringGraph::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> std::result::Result<Self, String> {
        let take = |b: &[u8], at: usize, n: usize| -> std::result::Result<Vec<u8>, String> {
            b.get(at..at + n)
                .map(|s| s.to_vec())
                .ok_or_else(|| "truncated graph image".to_string())
        };
        if bytes.get(..4) != Some(b"LSGR") {
            return Err("bad graph magic".into());
        }
        let n = u32::from_le_bytes(take(bytes, 4, 4)?.try_into().unwrap()) as usize;
        let edges = u64::from_le_bytes(take(bytes, 8, 8)?.try_into().unwrap());
        let mut g = StringGraph::new((n as u32 / 2) * 2);
        if g.out_target.len() != n {
            return Err("odd vertex count in image".into());
        }
        let mut at = 16;
        for i in 0..n {
            g.out_target[i] = u32::from_le_bytes(take(bytes, at, 4)?.try_into().unwrap());
            g.out_overlap[i] = u32::from_le_bytes(take(bytes, at + 4, 4)?.try_into().unwrap());
            at += 8;
        }
        for w in g.out_bits.iter_mut() {
            *w = u64::from_le_bytes(take(bytes, at, 8)?.try_into().unwrap());
            at += 8;
        }
        if at != bytes.len() {
            return Err("trailing bytes in graph image".into());
        }
        g.edges = edges;
        Ok(g)
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn graph_roundtrips_through_bytes() {
        let mut g = StringGraph::new(64);
        g.try_add_edge(0, 2, 9).unwrap();
        g.try_add_edge(2, 62, 7).unwrap();
        let bytes = g.to_bytes();
        let back = StringGraph::from_bytes(&bytes).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        for v in 0..g.vertex_count() {
            assert_eq!(back.out(v), g.out(v), "vertex {v}");
        }
        back.check_invariants().unwrap();
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let mut g = StringGraph::new(8);
        g.try_add_edge(0, 2, 3).unwrap();
        let bytes = g.to_bytes();
        assert!(StringGraph::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(StringGraph::from_bytes(b"NOPE").is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(StringGraph::from_bytes(&extra).is_err());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = StringGraph::new(0);
        let back = StringGraph::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }
}
