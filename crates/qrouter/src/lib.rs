//! # qrouter — sharded, replicated serving with hedged scatter-gather
//!
//! One `qnet` server answers queries over the *whole* minimizer index;
//! this crate splits that postings space across N servers (R replicas
//! each) and puts a router in front that preserves the single-node
//! answer bit-for-bit while tolerating slow and dead replicas. The
//! layering:
//!
//! * **Sharding** — shard `s` owns every minimizer hash with
//!   [`qserve::shard_of_hash`]`(h, n) == s`; replicas build their index
//!   with `MinimizerIndex::build_shard` over the *same* contig store
//!   (pinned by checksum in the [`ClusterManifest`]). Contigs are not
//!   sharded — only postings — so any replica can verify any placement
//!   its slice of votes proposes.
//! * **Scatter-gather** ([`Router::route`]) — a batch fans out to every
//!   shard over the `ShardQuery` wire verb, which returns unfiltered
//!   per-read candidates instead of final hits. The router sums votes
//!   with [`qserve::merge_candidates`] and replays single-node
//!   selection with [`qserve::select_hit`], so tie-breaks land exactly
//!   where a single server's would.
//! * **Hedging** — a shard slower than its own recent latency
//!   percentile gets a second request at the next replica; first
//!   answer wins, the loser's late frame is discarded by `request_id`
//!   echo on its own private connection (`qrouter.hedge.fired` /
//!   `qrouter.hedge.won`).
//! * **Fail-over** — failed attempts ladder across replicas with the
//!   capped jittered backoff shared by the whole codebase
//!   (`qrouter.failover`); terminal errors surface immediately as
//!   [`RouterError::Net`] naming the shard and peer; a shard that
//!   exhausts every replica is dead-lettered ([`Router::dead_letters`],
//!   `qrouter.shard.dead`) and surfaces as
//!   [`RouterError::ShardUnavailable`] — typed, never a hang.
//! * **Generations** — the router pins every fan-out to one store/index
//!   generation (seeded from [`ClusterManifest::generation`], advanced
//!   by [`Router::rollout`]'s replica-by-replica hot reload), and
//!   refuses to merge candidates answered for different generations
//!   ([`RouterError::GenerationSkew`]) — summed votes are only
//!   meaningful over one postings build. A failed rollout rolls back
//!   loudly ([`RouterError::RolloutFailed`]) with the pin untouched, so
//!   the mixed-generation window never serves a blended answer.
//!
//! Chaos coverage lives behind the `qrouter.shard.down`,
//! `qrouter.shard.slow`, and `qrouter.replica.flap` failpoints;
//! `tests/qrouter_cluster.rs` pins the headline invariant — sharded
//! answers byte-identical to single-node with zero faults, with a
//! replica of every shard dead, and with hedging racing both replicas.
//! SERVING.md documents the manifest format and hedge policy;
//! OBSERVABILITY.md the `qrouter.*` counters.

pub mod manifest;
pub mod router;

pub use manifest::{ClusterManifest, ShardEntry, MANIFEST_VERSION};
pub use router::{DeadLetter, Router, RouterConfig};

/// Errors surfaced by the router.
#[derive(Debug)]
pub enum RouterError {
    /// The cluster manifest failed to parse or validate.
    Manifest(String),
    /// A shard exhausted every replica and every fail-over round; the
    /// batch was dead-lettered. Names the shard so operators know which
    /// slice of the vote space is dark.
    ShardUnavailable {
        /// The shard that could not answer.
        shard: u32,
        /// Wire attempts made before giving up.
        attempts: u32,
        /// Display of the last error seen.
        last: String,
    },
    /// A terminal network-layer failure (auth rejection, spent
    /// deadline, typed remote error) attributed to the shard and peer
    /// it came from — fail-over would not have helped.
    Net {
        /// The shard being queried.
        shard: u32,
        /// The replica that answered, as `host:port`.
        peer: String,
        /// The underlying typed error.
        source: qnet::QnetError,
    },
    /// Two shards answered the same batch for different store/index
    /// generations. Merging their candidates would sum votes over
    /// different postings partitions — silently wrong answers — so the
    /// batch fails loudly instead. Seen only in the unpinned
    /// (`generation = 0`) mixed-rollout window; pinned batches are held
    /// to one generation by every replica.
    GenerationSkew {
        /// The generation shard 0 answered for.
        expected: u64,
        /// The first shard that disagreed.
        shard: u32,
        /// The generation that shard answered for.
        answered: u64,
    },
    /// A rolling reload ([`Router::rollout`]) could not land the target
    /// generation on every replica. The router's generation pin is left
    /// untouched — every replica (including the failures, which rolled
    /// back) still serves the pinned generation, so queries keep
    /// answering while the operator retries.
    RolloutFailed {
        /// The generation the rollout targeted (`0` = manifest active).
        target: u64,
        /// `(replica address, failure display)` for every replica that
        /// refused or disagreed.
        failed: Vec<(String, String)>,
    },
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Manifest(detail) => write!(f, "cluster manifest: {detail}"),
            RouterError::ShardUnavailable {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard} unavailable after {attempts} attempts (last: {last})"
            ),
            RouterError::Net {
                shard,
                peer,
                source,
            } => write!(f, "shard {shard} at {peer}: {source}"),
            RouterError::GenerationSkew {
                expected,
                shard,
                answered,
            } => write!(
                f,
                "generation skew: shard {shard} answered for generation {answered} while \
                 shard 0 answered for {expected}; mixed-generation candidates are never merged"
            ),
            RouterError::RolloutFailed { target, failed } => {
                write!(
                    f,
                    "rollout to generation {target} failed on {} replica(s), pin unchanged:",
                    failed.len()
                )?;
                for (peer, detail) in failed {
                    write!(f, " [{peer}: {detail}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Net { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Convenience alias for fallible router operations.
pub type Result<T> = std::result::Result<T, RouterError>;
