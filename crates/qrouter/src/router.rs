//! The scatter-gather router: fan a batch out to every shard, hedge
//! slow shards, fail over dead replicas, and merge candidates into the
//! exact answer a single-node server would have produced.
//!
//! # Why candidates and not hits
//!
//! Each shard holds a *slice of the minimizer postings* over the same
//! contig store, so a shard's local vote counts are partial: a read's
//! true placement may collect 3 votes on shard 0 and 2 on shard 1.
//! Shards therefore return every voted candidate (unfiltered,
//! untruncated), the router sums votes per placement with
//! [`qserve::merge_candidates`], and replays single-node selection with
//! [`qserve::select_hit`] under the caller's [`qserve::QueryConfig`].
//! Because the postings partition is exact ([`qserve::shard_of_hash`]),
//! merged votes equal single-node votes and the final tie-break is
//! byte-identical — the invariant `tests/qrouter_cluster.rs` pins.
//!
//! # Hedging
//!
//! A slow shard stalls the whole batch, so after a latency-driven delay
//! (a percentile of the shard's own recent round-trips, clamped to
//! `[hedge_min_ms, hedge_max_ms]`) the router fires a second request at
//! the next replica in the ladder and takes the first answer. The
//! loser's late answer is discarded by construction: each attempt runs
//! on its own pooled connection with its own `request_id` echo, so a
//! late frame can neither desynchronize the winner's stream nor be
//! accepted for the wrong batch. Cancellation is "stop listening", not
//! "reach into the socket" — safe because nothing is shared.
//!
//! # Fail-over ladder
//!
//! A failed attempt (transport error, torn frame, shed, drain) walks to
//! the next replica with a capped jittered backoff
//! ([`qnet::ClientPool::backoff_ms`], the shape of `dnet`'s recovery
//! backoff). Terminal errors — [`qnet::QnetError::AuthFailed`], an
//! expired deadline, a typed remote failure — abort the ladder
//! immediately and surface as [`RouterError::Net`] naming the shard and
//! peer. A shard that exhausts every round is recorded as a
//! [`DeadLetter`] and surfaces as [`RouterError::ShardUnavailable`]
//! naming the shard, so callers see a typed failure rather than a hang.
//!
//! # Generations
//!
//! Merged votes are only meaningful when every shard answered over the
//! same postings build, so the router pins every attempt to one
//! store/index generation ([`qnet::client::QueryClient::set_generation_pin`],
//! seeded from [`ClusterManifest::generation`]) and checks the
//! generation echoed with each shard's candidates. A cross-shard
//! disagreement — possible only unpinned, mid-rollout — is
//! [`RouterError::GenerationSkew`], never a blended merge.
//! [`Router::rollout`] advances the cluster: replica-by-replica hot
//! `Reload`, pin flipped only after every replica acked, old generation
//! still resident everywhere until [`qserve`] retires it — so the swap
//! serves zero errors and sheds nothing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use faultsim::{sched, Faults};
use genome::PackedSeq;
use obs::{Histogram, Recorder};
use qnet::{ClientConfig, ClientPool, QnetError};
use qserve::{merge_candidates, select_hit, Candidate, Hit, QueryConfig};

use crate::manifest::ClusterManifest;
use crate::RouterError;

/// Round-trip samples a shard must accumulate before its latency
/// percentile drives the hedge delay; until then the delay is pinned to
/// `hedge_max_ms` so cold starts don't hedge on noise.
const HEDGE_WARMUP_SAMPLES: u64 = 8;

/// Tuning for the router. `Default` is sized for the in-process
/// clusters the bench and tests run; production deployments mostly
/// tune `client` (deadline, auth) and `hedge_max_ms`.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Template for pooled connections (address is filled per replica).
    /// Its `max_retries` is forcibly zeroed — the router's ladder, not
    /// the client, owns retries.
    pub client: ClientConfig,
    /// Selection config replayed over merged candidates; must match the
    /// config a single-node server would use for answers to compare.
    pub query: QueryConfig,
    /// Hedge delay floor in milliseconds.
    pub hedge_min_ms: u64,
    /// Hedge delay ceiling in milliseconds; also the delay used while a
    /// shard's latency history is still warming up.
    pub hedge_max_ms: u64,
    /// Which latency percentile of the shard's recent round-trips sets
    /// the hedge delay (e.g. `0.95`: hedge when slower than p95).
    pub hedge_percentile: f64,
    /// Fail-over rounds per shard before the batch is dead-lettered.
    /// Each round is one primary attempt plus at most one hedge.
    pub failover_rounds: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            client: ClientConfig::default(),
            query: QueryConfig::default(),
            hedge_min_ms: 2,
            hedge_max_ms: 200,
            hedge_percentile: 0.95,
            failover_rounds: 3,
        }
    }
}

/// A batch a shard could not answer after exhausting every replica and
/// every fail-over round — kept so operators can see *which* work was
/// refused, not just a counter.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The shard that went unreachable.
    pub shard: u32,
    /// Reads in the refused batch.
    pub n_reads: usize,
    /// Wire attempts made (primaries plus hedges across all rounds).
    pub attempts: u32,
    /// Display of the last error seen before giving up.
    pub last_error: String,
}

/// One attempt's report into the hedge race: the generation the shard
/// answered for, tagged so the merge can refuse mixed-generation votes.
struct Outcome {
    attempt: u32,
    peer: String,
    result: Result<(u64, Vec<Vec<Candidate>>), QnetError>,
}

/// Shared state between the shard task and its attempt threads. The
/// mutex-protected vector is pollable (a pure lock-peek), which is what
/// lets the cooperative scheduler drive the race deterministically.
struct Race {
    outcomes: Mutex<Vec<Outcome>>,
    cv: Condvar,
}

impl Race {
    fn push(&self, o: Outcome) {
        self.outcomes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(o);
        self.cv.notify_all();
    }
}

/// Everything attempt threads need, behind one `Arc` so hedge losers
/// can outlive the round (and the batch) that launched them.
struct Shared {
    cfg: RouterConfig,
    pool: ClientPool,
    faults: Faults,
    rec: Recorder,
}

/// The scatter-gather router over one [`ClusterManifest`].
pub struct Router {
    manifest: ClusterManifest,
    shared: Arc<Shared>,
    /// Per-shard round-trip history in ms, driving the hedge delay and
    /// the per-shard latency split published to the live rollup.
    latency: Vec<Mutex<Histogram>>,
    dead: Mutex<Vec<DeadLetter>>,
    /// Replica health from the last [`Router::probe_health`] sweep;
    /// unknown addresses are assumed healthy.
    health: Mutex<HashMap<String, bool>>,
    /// Distinguishes concurrent scatters in sched-mode task names.
    scatter_seq: AtomicU64,
    /// The generation every fan-out is pinned to (`0` = each replica's
    /// active). Seeded from the manifest; advanced by [`Router::rollout`]
    /// only after every replica acked the new generation, so in-flight
    /// scatters never straddle the flip.
    pinned_gen: AtomicU64,
}

impl Router {
    /// Build a router over a validated manifest. `faults` arms the
    /// `qrouter.*` failpoints (pass [`Faults::disabled`] outside chaos
    /// runs); counters and latency splits land on `rec`.
    pub fn new(
        manifest: ClusterManifest,
        cfg: RouterConfig,
        faults: Faults,
        rec: &Recorder,
    ) -> Result<Router, RouterError> {
        manifest.validate()?;
        let latency = (0..manifest.n_shards)
            .map(|_| Mutex::new(Histogram::new()))
            .collect();
        let pool = ClientPool::new(cfg.client.clone(), rec);
        let pinned = manifest.generation;
        Ok(Router {
            manifest,
            shared: Arc::new(Shared {
                cfg,
                pool,
                faults,
                rec: rec.clone(),
            }),
            latency,
            dead: Mutex::new(Vec::new()),
            health: Mutex::new(HashMap::new()),
            scatter_seq: AtomicU64::new(0),
            pinned_gen: AtomicU64::new(pinned),
        })
    }

    /// The manifest this router serves.
    pub fn manifest(&self) -> &ClusterManifest {
        &self.manifest
    }

    /// The generation every fan-out is currently pinned to (`0` = each
    /// replica's active generation).
    pub fn pinned_generation(&self) -> u64 {
        self.pinned_gen.load(Ordering::Relaxed)
    }

    /// Re-pin future fan-outs to `generation` directly, without a
    /// rollout — for operators replaying a manifest flip, and for tests.
    /// Scatters already in flight keep the pin they captured at launch.
    pub fn pin_generation(&self, generation: u64) {
        self.pinned_gen.store(generation, Ordering::Relaxed);
        self.shared.rec.counter("qrouter.gen.pinned", 1);
    }

    /// Batches refused after exhausting every replica of a shard.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.dead.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Answer a batch through the cluster: scatter to every shard,
    /// merge candidates per read, and select exactly as a single-node
    /// server would. Returns per-read placements aligned with `reads`.
    ///
    /// Fails as a whole if any shard fails: partial answers would be
    /// silently *wrong* answers (missing votes flip tie-breaks), so a
    /// shard outage is a typed error, never a degraded result.
    pub fn route(&self, reads: &[PackedSeq]) -> Result<Vec<Option<Hit>>, RouterError> {
        self.route_tagged(reads).map(|(_, hits)| hits)
    }

    /// [`route`](Self::route), also returning the generation every
    /// shard answered for. During a rollout window this is how callers
    /// observe which build served them; the router has already refused
    /// to merge if any two shards disagreed.
    pub fn route_tagged(
        &self,
        reads: &[PackedSeq],
    ) -> Result<(u64, Vec<Option<Hit>>), RouterError> {
        let pin = self.pinned_generation();
        if reads.is_empty() {
            return Ok((pin, Vec::new()));
        }
        let reads = Arc::new(reads.to_vec());
        let n_shards = self.manifest.n_shards as usize;
        let seq = self.scatter_seq.fetch_add(1, Ordering::Relaxed);
        type ShardSlot = Mutex<Option<Result<(u64, Vec<Vec<Candidate>>), RouterError>>>;
        let slots: Vec<ShardSlot> = (0..n_shards).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for (shard, slot) in slots.iter().enumerate() {
                let token = sched::announce(&format!("qrouter.s{shard}.q{seq}"));
                let reads = Arc::clone(&reads);
                scope.spawn(move || {
                    let _guard = sched::begin(token);
                    let r = self.query_shard(shard as u32, seq, pin, &reads);
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                });
            }
            if sched::active() {
                // Scheduler-aware join: park until every shard task has
                // filled its slot, so the scheduler can interleave the
                // shard tasks while we wait. The scope's real joins then
                // return immediately.
                sched::wait_until("qrouter.scatter.join", &mut || {
                    slots
                        .iter()
                        .all(|s| s.lock().unwrap_or_else(|e| e.into_inner()).is_some())
                });
            }
        });

        let mut per_shard = Vec::with_capacity(n_shards);
        for slot in slots {
            match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                Some(Ok(tagged)) => per_shard.push(tagged),
                Some(Err(e)) => return Err(e),
                None => unreachable!("scatter scope joined with an unfilled slot"),
            }
        }

        // Refuse to merge across generations: summed votes are only
        // meaningful over one postings build. Pinned fan-outs can't get
        // here (every replica answers the pin or fails typed); unpinned
        // fan-outs can, mid-rollout, when shards flip at different
        // moments — and that window must fail loudly, not blend.
        let expected = per_shard[0].0;
        for (shard, (answered, _)) in per_shard.iter().enumerate() {
            if *answered != expected {
                self.shared.rec.counter("qrouter.gen.skew", 1);
                return Err(RouterError::GenerationSkew {
                    expected,
                    shard: shard as u32,
                    answered: *answered,
                });
            }
        }

        let mut hits = Vec::with_capacity(reads.len());
        for i in 0..reads.len() {
            let merged = merge_candidates(per_shard.iter().map(|(_, s)| &s[i]));
            hits.push(select_hit(&self.shared.cfg.query, &merged));
        }
        self.shared.rec.counter("qrouter.merge", reads.len() as u64);
        Ok((expected, hits))
    }

    /// One shard's fail-over ladder: up to `failover_rounds` rounds,
    /// each a primary attempt hedged after the shard's hedge delay.
    fn query_shard(
        &self,
        shard: u32,
        seq: u64,
        pin: u64,
        reads: &Arc<Vec<PackedSeq>>,
    ) -> Result<(u64, Vec<Vec<Candidate>>), RouterError> {
        let shared = &self.shared;
        let ladder = self.ladder(shard);
        let mut attempts = 0u32;
        let mut last: Option<QnetError> = None;
        for round in 1..=shared.cfg.failover_rounds {
            let primary = ladder[(round as usize - 1) % ladder.len()].clone();
            let hedge_peer = ladder[round as usize % ladder.len()].clone();
            let started = Instant::now();
            match self.run_round(
                shard,
                seq,
                round,
                pin,
                &primary,
                &hedge_peer,
                reads,
                &mut attempts,
            ) {
                Ok((answered, candidates, hedge_won)) => {
                    let elapsed_ms = if let Some(_now) = sched::virtual_now_ms() {
                        // Virtual time barely moves inside one round;
                        // record the wall floor so warmup still fills.
                        1
                    } else {
                        started.elapsed().as_millis() as u64
                    };
                    let mut h = self.latency[shard as usize]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    h.record(elapsed_ms);
                    drop(h);
                    if hedge_won {
                        shared.rec.counter("qrouter.hedge.won", 1);
                    }
                    return Ok((answered, candidates));
                }
                Err(e) => {
                    if !e.is_retryable() {
                        // Auth rejections, spent deadlines, and typed
                        // remote failures won't heal on another replica;
                        // name the shard and peer and stop burning budget.
                        return Err(RouterError::Net {
                            shard,
                            peer: primary,
                            source: e,
                        });
                    }
                    shared.rec.counter("qrouter.failover", 1);
                    last = Some(e);
                    if round < shared.cfg.failover_rounds {
                        self.backoff(&primary, round);
                    }
                }
            }
        }
        let last = last.map(|e| e.to_string()).unwrap_or_default();
        shared.rec.counter("qrouter.shard.dead", 1);
        self.dead
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(DeadLetter {
                shard,
                n_reads: reads.len(),
                attempts,
                last_error: last.clone(),
            });
        Err(RouterError::ShardUnavailable {
            shard,
            attempts,
            last,
        })
    }

    /// One round of the race: launch the primary, hedge after the delay
    /// if it hasn't answered, take the first success. Loser threads are
    /// left to finish on their own — their connections are theirs alone,
    /// and their late outcomes land in a `Race` nobody reads again.
    #[allow(clippy::too_many_arguments)]
    fn run_round(
        &self,
        shard: u32,
        seq: u64,
        round: u32,
        pin: u64,
        primary: &str,
        hedge_peer: &str,
        reads: &Arc<Vec<PackedSeq>>,
        attempts: &mut u32,
    ) -> Result<(u64, Vec<Vec<Candidate>>, bool), QnetError> {
        let shared = &self.shared;
        let race = Arc::new(Race {
            outcomes: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        });
        let delay = self.hedge_delay_ms(shard);

        spawn_attempt(shared, &race, shard, seq, round, 0, pin, primary, reads);
        *attempts += 1;
        let mut launched = 1u32;

        // Phase 1: give the primary `delay` ms to answer.
        let primary_answered = self.race_wait(&race, 1, Some(delay), shard, seq, round);
        if !primary_answered {
            shared.rec.counter("qrouter.hedge.fired", 1);
            spawn_attempt(shared, &race, shard, seq, round, 1, pin, hedge_peer, reads);
            *attempts += 1;
            launched = 2;
            // Phase 2: first success wins; otherwise wait for both to fail.
            self.race_wait(&race, launched, None, shard, seq, round);
        }

        let mut outcomes = race.outcomes.lock().unwrap_or_else(|e| e.into_inner());
        // Prefer a success from either attempt; a hedge can win even if
        // the primary failed first.
        if let Some(pos) = outcomes.iter().position(|o| o.result.is_ok()) {
            let won = outcomes.swap_remove(pos);
            let Ok((answered, candidates)) = won.result else {
                unreachable!()
            };
            return Ok((answered, candidates, won.attempt == 1));
        }
        debug_assert_eq!(outcomes.len(), launched as usize);
        let lost = outcomes.pop().expect("a finished race has outcomes");
        let Err(e) = lost.result else { unreachable!() };
        Err(e)
    }

    /// Wait on the race until a success arrives, all `launched`
    /// attempts have reported, or (when `timeout_ms` is set) the hedge
    /// delay expires. Returns true when the wait ended because of an
    /// outcome rather than the timeout.
    fn race_wait(
        &self,
        race: &Arc<Race>,
        launched: u32,
        timeout_ms: Option<u64>,
        shard: u32,
        seq: u64,
        round: u32,
    ) -> bool {
        let settled = |outcomes: &Vec<Outcome>| {
            outcomes.iter().any(|o| o.result.is_ok()) || outcomes.len() >= launched as usize
        };
        if sched::active() {
            let name = format!("qrouter.s{shard}.q{seq}.r{round}.wait");
            let wake = timeout_ms.map(|t| {
                sched::virtual_now_ms()
                    .unwrap_or(0)
                    .saturating_add(t.max(1))
            });
            sched::wait_until_deadline(&name, wake.unwrap_or(u64::MAX), &mut || {
                let outcomes = race.outcomes.lock().unwrap_or_else(|e| e.into_inner());
                if settled(&outcomes) {
                    return true;
                }
                match wake {
                    Some(w) => sched::virtual_now_ms().unwrap_or(0) >= w,
                    None => false,
                }
            });
            let outcomes = race.outcomes.lock().unwrap_or_else(|e| e.into_inner());
            return settled(&outcomes);
        }
        let deadline = timeout_ms.map(|t| Instant::now() + Duration::from_millis(t));
        let mut outcomes = race.outcomes.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if settled(&outcomes) {
                return true;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    let (guard, _) = race
                        .cv
                        .wait_timeout(outcomes, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    outcomes = guard;
                }
                None => {
                    outcomes = race.cv.wait(outcomes).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// The replica order the ladder walks for `shard`: the manifest's
    /// replica list rotated by the shard id (so shards sharing replica
    /// processes spread their primary load), then stably re-ordered
    /// with replicas marked healthy by the last probe sweep first.
    fn ladder(&self, shard: u32) -> Vec<String> {
        let replicas = &self.manifest.shards[shard as usize].replicas;
        let n = replicas.len();
        let health = self.health.lock().unwrap_or_else(|e| e.into_inner());
        let mut rotated: Vec<String> = (0..n)
            .map(|i| replicas[(shard as usize + i) % n].clone())
            .collect();
        rotated.sort_by_key(|addr| !health.get(addr).copied().unwrap_or(true));
        rotated
    }

    /// The hedge delay for `shard`: the configured percentile of its
    /// recent round-trips clamped to `[hedge_min_ms, hedge_max_ms]`, or
    /// the ceiling while the history is still warming up.
    fn hedge_delay_ms(&self, shard: u32) -> u64 {
        let cfg = &self.shared.cfg;
        let h = self.latency[shard as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if h.count() < HEDGE_WARMUP_SAMPLES {
            return cfg.hedge_max_ms;
        }
        h.percentile(cfg.hedge_percentile)
            .clamp(cfg.hedge_min_ms, cfg.hedge_max_ms)
    }

    /// Sleep the fail-over backoff for retry `round` against `peer`
    /// (capped, jittered, de-synchronized across replicas) — on the
    /// virtual clock under the cooperative scheduler, on the wall
    /// otherwise.
    fn backoff(&self, peer: &str, round: u32) {
        let wait = self.shared.pool.backoff_ms(peer, round).max(1);
        if sched::active() {
            let wake = sched::virtual_now_ms().unwrap_or(0).saturating_add(wait);
            sched::wait_until_deadline("qrouter.backoff", wake, &mut || {
                sched::virtual_now_ms().unwrap_or(u64::MAX) >= wake
            });
        } else {
            std::thread::sleep(Duration::from_millis(wait));
        }
    }

    /// Probe every distinct replica with `PingV2` and refresh the
    /// health map the ladder consults: healthy means the probe answered
    /// and the server is ready and not draining. Returns the sweep in
    /// manifest order for callers that report it.
    pub fn probe_health(&self) -> Vec<(String, bool)> {
        let mut sweep = Vec::new();
        for addr in self.manifest.all_replicas() {
            let mut client = self.shared.pool.checkout(&addr);
            let healthy = match client.ping_v2() {
                Ok(status) => {
                    self.shared.pool.checkin(&addr, client);
                    status.ready && !status.draining
                }
                Err(_) => false,
            };
            self.health
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(addr.clone(), healthy);
            sweep.push((addr, healthy));
        }
        sweep
    }

    /// Mark one replica's health directly (tests and chaos harnesses
    /// that know a replica is down without waiting for a probe sweep).
    pub fn set_replica_health(&self, addr: &str, healthy: bool) {
        self.health
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(addr.to_string(), healthy);
    }

    /// Roll the whole cluster to generation `target` (`0` = each work
    /// dir's manifest-active) with zero downtime: walk every distinct
    /// replica in manifest order, issue the `Reload` wire verb, and
    /// flip the router's generation pin only after **every** replica
    /// acked the same new generation. Until the flip, fan-outs stay
    /// pinned to the old generation — which every replica still holds
    /// resident as `previous` after its swap — so queries keep serving
    /// bit-identical answers through the entire window.
    ///
    /// A replica that refuses (load failure, checksum mismatch, stalled
    /// swap) has rolled back server-side and still serves the old
    /// generation; it is marked unhealthy so ladders deprioritize it,
    /// the walk continues (replicas already swapped stay swapped —
    /// harmless, the pin hasn't moved), and the whole rollout returns
    /// [`RouterError::RolloutFailed`] naming every refusing replica.
    /// Retrying after the operator fixes the work dir is safe: `Reload`
    /// is idempotent on replicas already serving the target.
    pub fn rollout(&self, target: u64) -> Result<u64, RouterError> {
        let shared = &self.shared;
        shared.rec.counter("qrouter.rollout.started", 1);
        let mut acked: Option<u64> = None;
        let mut failed: Vec<(String, String)> = Vec::new();
        for addr in self.manifest.all_replicas() {
            let mut client = shared.pool.checkout(&addr);
            match client.reload(target) {
                Ok(active) => {
                    shared.pool.checkin(&addr, client);
                    shared.pool.record_outcome(&addr, true);
                    shared.rec.counter("qrouter.rollout.replica.ok", 1);
                    match acked {
                        None => acked = Some(active),
                        Some(first) if first == active => {}
                        Some(first) => {
                            // Same target, different resulting actives:
                            // the work dirs disagree about what `target`
                            // means. Flipping the pin to either id would
                            // make some replica unable to serve it.
                            failed.push((
                                addr.clone(),
                                format!(
                                    "acked generation {active} while earlier replicas \
                                     acked {first}: work dirs disagree"
                                ),
                            ));
                        }
                    }
                }
                Err(e) => {
                    shared.pool.record_outcome(&addr, false);
                    self.set_replica_health(&addr, false);
                    shared.rec.counter("qrouter.rollout.replica.failed", 1);
                    failed.push((addr, e.to_string()));
                }
            }
        }
        if !failed.is_empty() {
            shared.rec.counter("qrouter.rollout.failed", 1);
            return Err(RouterError::RolloutFailed { target, failed });
        }
        let active = acked.expect("a validated manifest has at least one replica");
        self.pinned_gen.store(active, Ordering::Relaxed);
        shared.rec.counter("qrouter.rollout.ok", 1);
        Ok(active)
    }

    /// Publish each shard's round-trip latency split as a
    /// `qrouter.latency.shard{N}` histogram on the recorder, feeding
    /// the live rollup's windowed view. Call after a sweep (or on a
    /// reporting tick); emitting is cheap but not free.
    pub fn publish_telemetry(&self) {
        if !self.shared.rec.is_enabled() {
            return;
        }
        let span = self.shared.rec.current();
        for (shard, h) in self.latency.iter().enumerate() {
            let h = h.lock().unwrap_or_else(|e| e.into_inner());
            if !h.is_empty() {
                self.shared.rec.histogram_on(
                    span,
                    &format!("qrouter.latency.shard{shard}"),
                    h.clone(),
                );
            }
        }
    }
}

/// Launch one wire attempt on its own thread. The thread owns its
/// pooled connection outright, so a racing sibling can never observe
/// its bytes; its outcome is pushed into the shared race and the thread
/// exits — the round may already be over, and that's fine.
#[allow(clippy::too_many_arguments)]
fn spawn_attempt(
    shared: &Arc<Shared>,
    race: &Arc<Race>,
    shard: u32,
    seq: u64,
    round: u32,
    attempt: u32,
    pin: u64,
    peer: &str,
    reads: &Arc<Vec<PackedSeq>>,
) {
    let shared = Arc::clone(shared);
    let race = Arc::clone(race);
    let peer = peer.to_string();
    let reads = Arc::clone(reads);
    let token = sched::announce(&format!("qrouter.s{shard}.q{seq}.r{round}.a{attempt}"));
    std::thread::spawn(move || {
        let _guard = sched::begin(token);
        let result = run_attempt(&shared, shard, pin, &peer, &reads);
        shared.pool.record_outcome(&peer, result.is_ok());
        race.push(Outcome {
            attempt,
            peer,
            result,
        });
    });
}

/// One wire attempt: walk the chaos failpoints, then check a client out
/// of the pool and issue the shard query (a single attempt — pooled
/// clients never retry on their own). The client is returned to the
/// pool only on success; a failed client's connection state is suspect
/// and is dropped with it.
fn run_attempt(
    shared: &Arc<Shared>,
    shard: u32,
    pin: u64,
    peer: &str,
    reads: &Arc<Vec<PackedSeq>>,
) -> Result<(u64, Vec<Vec<Candidate>>), QnetError> {
    use std::io::{Error, ErrorKind};
    if shared.faults.hit(faultsim::QROUTER_SHARD_DOWN).is_err() {
        return Err(QnetError::Io(Error::new(
            ErrorKind::ConnectionRefused,
            format!("injected qrouter.shard.down at {peer} (shard {shard})"),
        )));
    }
    if shared.faults.hit(faultsim::QROUTER_REPLICA_FLAP).is_err() {
        return Err(QnetError::Io(Error::new(
            ErrorKind::ConnectionReset,
            format!("injected qrouter.replica.flap at {peer} (shard {shard})"),
        )));
    }
    if shared.faults.hit(faultsim::QROUTER_SHARD_SLOW).is_err() {
        // Stall past any plausible hedge delay so the hedge demonstrably
        // fires and wins; the attempt still answers afterwards, which is
        // exactly the late-loser case the race must discard safely.
        let stall = shared.cfg.hedge_max_ms.saturating_mul(2).saturating_add(50);
        if sched::active() {
            let wake = sched::virtual_now_ms().unwrap_or(0).saturating_add(stall);
            sched::wait_until_deadline("qrouter.shard.slow", wake, &mut || {
                sched::virtual_now_ms().unwrap_or(u64::MAX) >= wake
            });
        } else {
            std::thread::sleep(Duration::from_millis(stall));
        }
    }
    let mut client = shared.pool.checkout(peer);
    client.set_generation_pin(pin);
    let (answered, candidates) = client.shard_query_batch_tagged(reads)?;
    if pin != 0 && answered != pin {
        // The wire contract says a pinned query is answered by that
        // exact generation or refused typed; a different echo means the
        // stream is lying about what served it — treat it like any
        // other corrupt frame (the suspect connection drops with the
        // client) and let the ladder try the next replica.
        return Err(QnetError::Corrupt {
            peer: peer.to_string(),
            detail: format!("answered generation {answered} for a batch pinned to {pin}"),
        });
    }
    shared.pool.checkin(peer, client);
    Ok((answered, candidates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ClusterManifest;

    fn router_2x2() -> Router {
        let mut m = ClusterManifest::new(2, 0xFEED);
        m.add_replica(0, "127.0.0.1:7000");
        m.add_replica(0, "127.0.0.1:7001");
        m.add_replica(1, "127.0.0.1:7002");
        m.add_replica(1, "127.0.0.1:7003");
        Router::new(
            m,
            RouterConfig::default(),
            Faults::disabled(),
            &Recorder::disabled(),
        )
        .unwrap()
    }

    #[test]
    fn ladder_rotates_by_shard_and_prefers_healthy_replicas() {
        let r = router_2x2();
        assert_eq!(r.ladder(0), vec!["127.0.0.1:7000", "127.0.0.1:7001"]);
        // Shard 1's list rotates by one so co-hosted shards would not
        // all hammer the same first replica.
        assert_eq!(r.ladder(1), vec!["127.0.0.1:7003", "127.0.0.1:7002"]);
        // A replica marked unhealthy sinks to the back of the ladder.
        r.set_replica_health("127.0.0.1:7000", false);
        assert_eq!(r.ladder(0), vec!["127.0.0.1:7001", "127.0.0.1:7000"]);
        // Health recovers, the rotation order returns.
        r.set_replica_health("127.0.0.1:7000", true);
        assert_eq!(r.ladder(0), vec!["127.0.0.1:7000", "127.0.0.1:7001"]);
    }

    #[test]
    fn hedge_delay_warms_up_then_tracks_the_percentile_clamped() {
        let r = router_2x2();
        // Cold shard: pinned to the ceiling.
        assert_eq!(r.hedge_delay_ms(0), r.shared.cfg.hedge_max_ms);
        {
            let mut h = r.latency[0].lock().unwrap();
            for _ in 0..(HEDGE_WARMUP_SAMPLES - 1) {
                h.record(10);
            }
        }
        assert_eq!(r.hedge_delay_ms(0), r.shared.cfg.hedge_max_ms);
        r.latency[0].lock().unwrap().record(10);
        // Warm: p95 of a flat-10ms history is ~10ms, inside the clamp.
        let d = r.hedge_delay_ms(0);
        assert!(
            d >= r.shared.cfg.hedge_min_ms && d <= 20,
            "unexpected hedge delay {d}"
        );
        // A history of sub-ms round-trips clamps up to the floor.
        {
            let mut h = r.latency[1].lock().unwrap();
            for _ in 0..100 {
                h.record(0);
            }
        }
        assert_eq!(r.hedge_delay_ms(1), r.shared.cfg.hedge_min_ms);
    }

    #[test]
    fn empty_batches_route_without_touching_the_wire() {
        let r = router_2x2();
        assert!(r.route(&[]).unwrap().is_empty());
        assert!(r.dead_letters().is_empty());
    }

    #[test]
    fn unreachable_cluster_dead_letters_with_a_typed_error() {
        // Nothing listens on these ports; every attempt fails with a
        // transport error, the ladder exhausts, and the caller gets
        // ShardUnavailable naming the shard — not a hang.
        let mut m = ClusterManifest::new(1, 1);
        m.add_replica(0, "127.0.0.1:1"); // reserved port, connect refused
        let cfg = RouterConfig {
            client: ClientConfig {
                backoff_base_ms: 1,
                backoff_cap_rounds: 0,
                ..ClientConfig::default()
            },
            hedge_min_ms: 1,
            hedge_max_ms: 5,
            failover_rounds: 2,
            ..RouterConfig::default()
        };
        let r = Router::new(m, cfg, Faults::disabled(), &Recorder::disabled()).unwrap();
        let reads = vec![PackedSeq::from_codes(&[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3])];
        match r.route(&reads) {
            Err(RouterError::ShardUnavailable {
                shard, attempts, ..
            }) => {
                assert_eq!(shard, 0);
                assert!(attempts >= 2, "expected every round attempted: {attempts}");
            }
            other => panic!("expected ShardUnavailable, got {other:?}"),
        }
        let dead = r.dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].shard, 0);
        assert_eq!(dead[0].n_reads, 1);
    }

    #[test]
    fn generation_pin_seeds_from_the_manifest() {
        let mut m = ClusterManifest::new(1, 1);
        m.add_replica(0, "h:1");
        m.generation = 3;
        let r = Router::new(
            m,
            RouterConfig::default(),
            Faults::disabled(),
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(r.pinned_generation(), 3);
        r.pin_generation(5);
        assert_eq!(r.pinned_generation(), 5);
    }

    #[test]
    fn failed_rollout_leaves_the_pin_and_marks_replicas_unhealthy() {
        // Nothing listens on these ports, so every Reload fails at
        // connect. The rollout must fail typed, naming every replica,
        // without moving the pin — queries keep going to the old
        // generation exactly as before the attempt.
        let mut m = ClusterManifest::new(1, 1);
        m.add_replica(0, "127.0.0.1:1");
        m.generation = 2;
        let cfg = RouterConfig {
            client: ClientConfig {
                backoff_base_ms: 1,
                backoff_cap_rounds: 0,
                ..ClientConfig::default()
            },
            ..RouterConfig::default()
        };
        let r = Router::new(m, cfg, Faults::disabled(), &Recorder::disabled()).unwrap();
        match r.rollout(9) {
            Err(RouterError::RolloutFailed { target, failed }) => {
                assert_eq!(target, 9);
                assert_eq!(failed.len(), 1);
                assert_eq!(failed[0].0, "127.0.0.1:1");
            }
            other => panic!("expected RolloutFailed, got {:?}", other.map(|_| ())),
        }
        assert_eq!(
            r.pinned_generation(),
            2,
            "a failed rollout must not move the pin"
        );
        let health = r.health.lock().unwrap();
        assert_eq!(
            health.get("127.0.0.1:1"),
            Some(&false),
            "a refusing replica sinks in the ladder"
        );
    }
}
