//! The versioned cluster manifest: which shards exist, which replicas
//! serve each one, and which contig store they were all built from.
//!
//! The manifest is the router's single source of truth. Shard
//! assignment is *deterministic and baked in*: shard `s` of `n` owns
//! every minimizer hash with [`qserve::shard_of_hash`]`(h, n) == s`, so
//! the manifest never carries a hash range table — only the shard
//! count. The `store_checksum` pins every replica to the same contig
//! store build; a router refuses to merge candidate votes across
//! replicas that answer for different stores, because summed votes are
//! only meaningful over one postings partition.

use serde::{Deserialize, Serialize};

use crate::RouterError;

/// Current manifest schema version.
///
/// Version history: `1` — initial schema (shard count, store checksum,
/// per-shard replica address lists).
pub const MANIFEST_VERSION: u32 = 1;

/// One shard's serving replicas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard id in `0..n_shards`.
    pub shard: u32,
    /// Replica addresses (`host:port`), each serving the full contig
    /// store plus this shard's slice of the minimizer postings.
    pub replicas: Vec<String>,
}

/// The whole cluster's layout, serialized as JSON beside the bench
/// artifacts and fed to `lasagna-cli query --router`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterManifest {
    /// Schema version; readers reject versions they do not know.
    pub version: u32,
    /// Number of shards the postings space is split into.
    pub n_shards: u32,
    /// Checksum of the contig store every replica serves
    /// ([`qserve::ContigStore::checksum`]); vote merging is only sound
    /// when every shard answered for the same store.
    pub store_checksum: u64,
    /// The store/index generation every replica should be serving
    /// (`0` = unversioned legacy build: whatever each replica's work
    /// dir calls active). The router seeds its generation pin from
    /// this and advances it only through [`crate::Router::rollout`],
    /// so a manifest written after a rollout replays the same pin on
    /// restart. Absent in version-1 manifests written before
    /// generations existed; those parse as `0`.
    #[serde(default)]
    pub generation: u64,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardEntry>,
}

impl ClusterManifest {
    /// An empty manifest for `n_shards` shards over one store; replicas
    /// are added per shard with [`ClusterManifest::add_replica`].
    pub fn new(n_shards: u32, store_checksum: u64) -> ClusterManifest {
        ClusterManifest {
            version: MANIFEST_VERSION,
            n_shards,
            store_checksum,
            generation: 0,
            shards: (0..n_shards)
                .map(|shard| ShardEntry {
                    shard,
                    replicas: Vec::new(),
                })
                .collect(),
        }
    }

    /// Register a replica address for `shard`.
    pub fn add_replica(&mut self, shard: u32, addr: impl Into<String>) {
        self.shards[shard as usize].replicas.push(addr.into());
    }

    /// Validate the manifest's internal consistency: known version,
    /// shard list matching `n_shards` in order, and at least one
    /// replica per shard (a shard with no replicas could never answer,
    /// which would silently drop its slice of the vote space).
    pub fn validate(&self) -> Result<(), RouterError> {
        let fail = |detail: String| Err(RouterError::Manifest(detail));
        if self.version != MANIFEST_VERSION {
            return fail(format!(
                "unsupported manifest version {} (expected {MANIFEST_VERSION})",
                self.version
            ));
        }
        if self.n_shards == 0 {
            return fail("manifest declares zero shards".to_string());
        }
        if self.shards.len() != self.n_shards as usize {
            return fail(format!(
                "manifest lists {} shard entries for n_shards = {}",
                self.shards.len(),
                self.n_shards
            ));
        }
        for (i, entry) in self.shards.iter().enumerate() {
            if entry.shard != i as u32 {
                return fail(format!(
                    "shard entry {i} carries id {} (entries must be dense and ordered)",
                    entry.shard
                ));
            }
            if entry.replicas.is_empty() {
                return fail(format!(
                    "shard {i} has no replicas; its slice of the vote space could never answer"
                ));
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Parse and validate a manifest from JSON.
    pub fn from_json(s: &str) -> Result<ClusterManifest, RouterError> {
        let m: ClusterManifest = serde_json::from_str(s)
            .map_err(|e| RouterError::Manifest(format!("manifest parse: {e}")))?;
        m.validate()?;
        Ok(m)
    }

    /// Write the manifest to `path` as JSON.
    pub fn save(&self, path: &std::path::Path) -> Result<(), RouterError> {
        std::fs::write(path, self.to_json())
            .map_err(|e| RouterError::Manifest(format!("manifest write {}: {e}", path.display())))
    }

    /// Read and validate a manifest from `path`.
    pub fn load(path: &std::path::Path) -> Result<ClusterManifest, RouterError> {
        let s = std::fs::read_to_string(path)
            .map_err(|e| RouterError::Manifest(format!("manifest read {}: {e}", path.display())))?;
        Self::from_json(&s)
    }

    /// Every distinct replica address across all shards, in first-seen
    /// order — the health prober's sweep list.
    pub fn all_replicas(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for entry in &self.shards {
            for r in &entry.replicas {
                if !seen.contains(r) {
                    seen.push(r.clone());
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_2x2() -> ClusterManifest {
        let mut m = ClusterManifest::new(2, 0xFEED);
        m.add_replica(0, "127.0.0.1:7000");
        m.add_replica(0, "127.0.0.1:7001");
        m.add_replica(1, "127.0.0.1:7002");
        m.add_replica(1, "127.0.0.1:7003");
        m
    }

    #[test]
    fn roundtrips_through_json() {
        let mut m = manifest_2x2();
        m.generation = 42;
        let back = ClusterManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.generation, 42);
    }

    #[test]
    fn pre_generation_manifests_parse_as_generation_zero() {
        // A manifest written before generations existed carries no
        // `generation` key; it must still parse, pinned to 0 (follow
        // each replica's active) rather than failing or inventing an id.
        let legacy = r#"{
            "version": 1,
            "n_shards": 1,
            "store_checksum": 7,
            "shards": [{ "shard": 0, "replicas": ["h:1"] }]
        }"#;
        let m = ClusterManifest::from_json(legacy).unwrap();
        assert_eq!(m.generation, 0);
    }

    #[test]
    fn validation_rejects_broken_layouts() {
        let mut wrong_version = manifest_2x2();
        wrong_version.version = 99;
        assert!(wrong_version.validate().is_err());

        let mut missing_shard = manifest_2x2();
        missing_shard.shards.pop();
        assert!(missing_shard.validate().is_err());

        let mut empty_shard = manifest_2x2();
        empty_shard.shards[1].replicas.clear();
        assert!(empty_shard.validate().is_err());

        let mut out_of_order = manifest_2x2();
        out_of_order.shards.swap(0, 1);
        assert!(out_of_order.validate().is_err());

        assert!(ClusterManifest::new(0, 1).validate().is_err());
    }

    #[test]
    fn all_replicas_deduplicates_shared_processes() {
        // One process can serve two shards (distinct indexes, same
        // port); the prober must still ping it once.
        let mut m = ClusterManifest::new(2, 1);
        m.add_replica(0, "h:1");
        m.add_replica(1, "h:1");
        m.add_replica(1, "h:2");
        assert_eq!(m.all_replicas(), vec!["h:1".to_string(), "h:2".to_string()]);
    }

    #[test]
    fn save_and_load() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("cluster.json");
        let m = manifest_2x2();
        m.save(&path).unwrap();
        assert_eq!(ClusterManifest::load(&path).unwrap(), m);
    }
}
