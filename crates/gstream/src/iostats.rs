//! Shared I/O statistics and the disk bandwidth model.
//!
//! The paper finds disk I/O to be "the most prominent bottleneck in the
//! pipeline" (Section III-E) — Fig. 8 shows sort time dominated by the
//! number of disk passes. We therefore count every byte that crosses the
//! disk boundary and convert it to modeled seconds through a sequential
//! bandwidth figure, so that scaled-down runs still *report* the paper's
//! I/O-dominance structure.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sequential disk bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Sequential read bandwidth, bytes/s.
    pub read_bytes_per_s: f64,
    /// Sequential write bandwidth, bytes/s.
    pub write_bytes_per_s: f64,
}

impl DiskModel {
    /// A spinning-disk profile (~160 MB/s sequential), matching the
    /// cluster-node local storage class used in the paper's testbeds.
    pub fn hdd() -> Self {
        DiskModel {
            read_bytes_per_s: 160e6,
            write_bytes_per_s: 140e6,
        }
    }

    /// A SATA-SSD profile (~500 MB/s), the "faster media" the paper says
    /// LaSAGNA benefits from.
    pub fn ssd() -> Self {
        DiskModel {
            read_bytes_per_s: 520e6,
            write_bytes_per_s: 480e6,
        }
    }

    /// Cluster scratch storage (~400 MB/s sustained) — the node-local
    /// storage class of the paper's QueenBee II / SuperMic testbeds.
    /// Back-solving the paper's Table II against its byte volumes puts the
    /// effective sequential bandwidth in this range.
    pub fn cluster_scratch() -> Self {
        DiskModel {
            read_bytes_per_s: 400e6,
            write_bytes_per_s: 400e6,
        }
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::cluster_scratch()
    }
}

/// Snapshot of I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IoSnapshot {
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
    /// Modeled seconds spent reading.
    pub read_seconds: f64,
    /// Modeled seconds spent writing.
    pub write_seconds: f64,
}

impl IoSnapshot {
    /// Total modeled disk seconds.
    pub fn total_seconds(&self) -> f64 {
        self.read_seconds + self.write_seconds
    }

    /// Counter difference (`self` taken after `earlier`).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            read_seconds: self.read_seconds - earlier.read_seconds,
            write_seconds: self.write_seconds - earlier.write_seconds,
        }
    }

    /// Emit this snapshot (usually a [`IoSnapshot::since`] delta) as the
    /// canonical `io.*` events on `span`. [`IoSnapshot::from_agg`] inverts
    /// this exactly.
    pub fn emit(&self, rec: &obs::Recorder, span: u64) {
        rec.counter_on(span, "io.bytes_read", self.bytes_read);
        rec.counter_on(span, "io.bytes_written", self.bytes_written);
        rec.metric_on(span, "io.read_seconds", self.read_seconds);
        rec.metric_on(span, "io.write_seconds", self.write_seconds);
    }

    /// Rebuild a snapshot from rolled-up `io.*` events (the inverse of
    /// [`IoSnapshot::emit`]).
    pub fn from_agg(agg: &obs::SpanAgg) -> IoSnapshot {
        IoSnapshot {
            bytes_read: agg.counter("io.bytes_read"),
            bytes_written: agg.counter("io.bytes_written"),
            read_seconds: agg.metric("io.read_seconds"),
            write_seconds: agg.metric("io.write_seconds"),
        }
    }
}

/// Shared, thread-safe I/O accounting. Clone-cheap: clones share counters.
#[derive(Debug, Clone)]
pub struct IoStats {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    model: DiskModel,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    seconds: Mutex<(f64, f64)>,
    faults: Mutex<faultsim::Faults>,
}

impl IoStats {
    /// Fresh counters over the given bandwidth model.
    pub fn new(model: DiskModel) -> Self {
        IoStats {
            inner: Arc::new(Inner {
                model,
                bytes_read: AtomicU64::new(0),
                bytes_written: AtomicU64::new(0),
                seconds: Mutex::new((0.0, 0.0)),
                faults: Mutex::new(faultsim::Faults::disabled()),
            }),
        }
    }

    /// The bandwidth model in effect.
    pub fn model(&self) -> DiskModel {
        self.inner.model
    }

    /// Arm fault injection for every reader/writer sharing these counters
    /// (the `gstream.write` / `gstream.open` failpoints).
    pub fn set_faults(&self, faults: faultsim::Faults) {
        *self.inner.faults.lock() = faults;
    }

    /// The fault registry in effect (disabled by default).
    pub fn faults(&self) -> faultsim::Faults {
        self.inner.faults.lock().clone()
    }

    /// Record `n` bytes read.
    pub fn add_read(&self, n: u64) {
        self.inner.bytes_read.fetch_add(n, Ordering::Relaxed);
        self.inner.seconds.lock().0 += n as f64 / self.inner.model.read_bytes_per_s;
    }

    /// Record `n` bytes written.
    pub fn add_write(&self, n: u64) {
        self.inner.bytes_written.fetch_add(n, Ordering::Relaxed);
        self.inner.seconds.lock().1 += n as f64 / self.inner.model.write_bytes_per_s;
    }

    /// Snapshot current counters.
    pub fn snapshot(&self) -> IoSnapshot {
        let (read_seconds, write_seconds) = *self.inner.seconds.lock();
        IoSnapshot {
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            read_seconds,
            write_seconds,
        }
    }
}

impl Default for IoStats {
    fn default() -> Self {
        IoStats::new(DiskModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_model_time() {
        let io = IoStats::new(DiskModel {
            read_bytes_per_s: 100.0,
            write_bytes_per_s: 50.0,
        });
        io.add_read(200);
        io.add_write(100);
        let snap = io.snapshot();
        assert_eq!(snap.bytes_read, 200);
        assert_eq!(snap.bytes_written, 100);
        assert!((snap.read_seconds - 2.0).abs() < 1e-12);
        assert!((snap.write_seconds - 2.0).abs() < 1e-12);
        assert!((snap.total_seconds() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_counters() {
        let io = IoStats::default();
        let clone = io.clone();
        clone.add_read(10);
        assert_eq!(io.snapshot().bytes_read, 10);
    }

    #[test]
    fn since_subtracts() {
        let io = IoStats::default();
        io.add_read(10);
        let early = io.snapshot();
        io.add_read(5);
        io.add_write(7);
        let delta = io.snapshot().since(&early);
        assert_eq!(delta.bytes_read, 5);
        assert_eq!(delta.bytes_written, 7);
    }

    #[test]
    fn emit_then_from_agg_round_trips_exactly() {
        let io = IoStats::default();
        io.add_read(12_345);
        io.add_write(678);
        let snap = io.snapshot();
        let rec = obs::Recorder::new();
        let span = rec.span("phase");
        snap.emit(&rec, span.id());
        drop(span);
        let rollup = obs::Rollup::from_events(&rec.events());
        let root = rollup.root_named("phase").unwrap();
        let back = IoSnapshot::from_agg(&rollup.subtree(root.id));
        assert_eq!(back, snap);
    }

    #[test]
    fn ssd_is_faster_than_hdd() {
        assert!(DiskModel::ssd().read_bytes_per_s > DiskModel::hdd().read_bytes_per_s);
    }
}
