//! Sequential record writers (the "write-only memory" of Fig. 3).

use crate::iostats::IoStats;
use crate::record::KvPair;
use crate::Result;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Buffered append-only writer of [`KvPair`] records.
pub struct RecordWriter {
    inner: BufWriter<File>,
    io: IoStats,
    written: u64,
}

impl RecordWriter {
    /// Create (truncate) `path` for writing.
    pub fn create(path: &Path, io: IoStats) -> Result<Self> {
        Ok(RecordWriter {
            inner: BufWriter::with_capacity(1 << 16, File::create(path)?),
            io,
            written: 0,
        })
    }

    /// Append one record.
    pub fn write(&mut self, pair: KvPair) -> Result<()> {
        let mut frame = [0u8; KvPair::BYTES];
        pair.encode(&mut frame);
        self.inner.write_all(&frame)?;
        self.written += 1;
        self.io.add_write(KvPair::BYTES as u64);
        Ok(())
    }

    /// Append a batch of records.
    pub fn write_all(&mut self, pairs: &[KvPair]) -> Result<()> {
        for p in pairs {
            let mut frame = [0u8; KvPair::BYTES];
            p.encode(&mut frame);
            self.inner.write_all(&frame)?;
        }
        self.written += pairs.len() as u64;
        self.io.add_write((pairs.len() * KvPair::BYTES) as u64);
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush buffers and surface any deferred error.
    pub fn finish(mut self) -> Result<u64> {
        self.inner.flush()?;
        Ok(self.written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::RecordReader;

    #[test]
    fn write_then_read_roundtrips() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.bin");
        let io = IoStats::default();
        let mut w = RecordWriter::create(&path, io.clone()).unwrap();
        w.write(KvPair::new(7, 1)).unwrap();
        w.write_all(&[KvPair::new(8, 2), KvPair::new(9, 3)])
            .unwrap();
        assert_eq!(w.written(), 3);
        assert_eq!(w.finish().unwrap(), 3);
        assert_eq!(io.snapshot().bytes_written, 3 * KvPair::BYTES as u64);

        let mut r = RecordReader::open(&path, io).unwrap();
        assert_eq!(
            r.read_all().unwrap(),
            vec![KvPair::new(7, 1), KvPair::new(8, 2), KvPair::new(9, 3)]
        );
    }

    #[test]
    fn create_truncates_existing_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("t.bin");
        let io = IoStats::default();
        let mut w = RecordWriter::create(&path, io.clone()).unwrap();
        w.write_all(&[KvPair::new(1, 1); 5]).unwrap();
        w.finish().unwrap();

        let w2 = RecordWriter::create(&path, io.clone()).unwrap();
        w2.finish().unwrap();
        let r = RecordReader::open(&path, io).unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn create_in_missing_directory_fails() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("no/such/dir/w.bin");
        assert!(RecordWriter::create(&path, IoStats::default()).is_err());
    }
}
