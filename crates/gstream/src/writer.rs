//! Sequential record writers (the "write-only memory" of Fig. 3).
//!
//! Writers are durable: records stream into a `<path>.tmp` side file and
//! only [`RecordWriter::finish`] — append footer, flush, `sync_all`, atomic
//! rename — makes them visible under the final name. A crash (or a dropped
//! writer) therefore never leaves a torn partition behind, only a `.tmp`
//! that the next run ignores.

use crate::iostats::IoStats;
use crate::record::{BlobFooter, Fnv64, Footer, KvPair};
use crate::{Result, StreamError};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Durably write an arbitrary byte blob: payload + [`BlobFooter`] into
/// `<path>.tmp`, flush, `sync_all`, atomic rename, parent-directory fsync.
/// The same commit discipline as [`RecordWriter::finish`], for artifacts
/// that are not fixed-width record streams (contig stores, minimizer
/// indexes). A crash never leaves a torn file under the final name.
pub fn write_blob(path: &Path, payload: &[u8], io: &IoStats) -> Result<()> {
    let tmp = tmp_path(path);
    let write = || -> Result<()> {
        let footer = BlobFooter {
            len: payload.len() as u64,
            checksum: crate::record::fnv1a(payload),
        };
        let mut file = BufWriter::with_capacity(1 << 16, File::create(&tmp)?);
        file.write_all(payload)?;
        file.write_all(&footer.encode())?;
        file.flush()?;
        file.get_ref().sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        fsync_parent_dir(path)?;
        io.add_write(payload.len() as u64);
        Ok(())
    };
    let result = write();
    if result.is_err() {
        // Failed commits must not leave a torn temp file either.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// `<path>.tmp`, the in-progress side file of a writer targeting `path`.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Fsync a directory, making previously renamed entries inside it durable.
///
/// On Linux, `rename` + `sync_all` on the *file* is not enough: the new
/// directory entry lives in the parent's metadata, which has its own
/// journal. Every commit-by-rename in this codebase (spill files,
/// manifests, the superstep log) follows the rename with a call here.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Fsync the parent directory of `path` (no-op when `path` has no parent).
pub fn fsync_parent_dir(path: &Path) -> std::io::Result<()> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => fsync_dir(parent),
        _ => Ok(()),
    }
}

/// Buffered append-only writer of [`KvPair`] records.
pub struct RecordWriter {
    /// `None` once committed; a `Some` at drop time means an abandoned
    /// writer whose temp file must be deleted.
    inner: Option<BufWriter<File>>,
    io: IoStats,
    written: u64,
    hasher: Fnv64,
    tmp: PathBuf,
    dest: PathBuf,
}

impl RecordWriter {
    /// Start writing `path` (its temp side file, really; the final name
    /// appears atomically on [`RecordWriter::finish`]).
    pub fn create(path: &Path, io: IoStats) -> Result<Self> {
        let tmp = tmp_path(path);
        Ok(RecordWriter {
            inner: Some(BufWriter::with_capacity(1 << 16, File::create(&tmp)?)),
            io,
            written: 0,
            hasher: Fnv64::new(),
            tmp,
            dest: path.to_path_buf(),
        })
    }

    fn sink(&mut self) -> &mut BufWriter<File> {
        self.inner.as_mut().expect("writer already finished")
    }

    /// Append one record.
    pub fn write(&mut self, pair: KvPair) -> Result<()> {
        let mut frame = [0u8; KvPair::BYTES];
        pair.encode(&mut frame);
        self.hasher.update(&frame);
        self.sink().write_all(&frame)?;
        self.written += 1;
        self.io.add_write(KvPair::BYTES as u64);
        Ok(())
    }

    /// Append a batch of records.
    pub fn write_all(&mut self, pairs: &[KvPair]) -> Result<()> {
        for p in pairs {
            let mut frame = [0u8; KvPair::BYTES];
            p.encode(&mut frame);
            self.hasher.update(&frame);
            self.sink().write_all(&frame)?;
        }
        self.written += pairs.len() as u64;
        self.io.add_write((pairs.len() * KvPair::BYTES) as u64);
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Commit: append the [`Footer`], flush, `sync_all`, and atomically
    /// rename the temp file over the final path. Returns the record count.
    pub fn finish(self) -> Result<u64> {
        self.finish_summary().map(|f| f.records)
    }

    /// [`RecordWriter::finish`], returning the full footer (record count +
    /// checksum) for manifest bookkeeping.
    pub fn finish_summary(mut self) -> Result<Footer> {
        let result = self.commit();
        if result.is_err() {
            // Failed commits must not leave a torn temp file either.
            self.inner = None;
            let _ = std::fs::remove_file(&self.tmp);
        }
        result
    }

    fn commit(&mut self) -> Result<Footer> {
        // The `gstream.write` failpoint models a crash at the commit point:
        // data written, file not yet durable under its final name.
        self.io
            .faults()
            .hit(faultsim::SPILL_WRITE)
            .map_err(StreamError::Fault)?;
        // The `disk.full` failpoint models ENOSPC at the same point, but
        // surfaces as the real error shape (`Io` / `StorageFull`) so the
        // shed-and-retry recovery paths see what a production run would.
        if self.io.faults().hit(faultsim::DISK_FULL).is_err() {
            return Err(StreamError::Io(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                format!("no space left writing {}", self.dest.display()),
            )));
        }
        let footer = Footer {
            records: self.written,
            checksum: self.hasher.finish(),
        };
        let mut inner = self.inner.take().expect("writer already finished");
        inner.write_all(&footer.encode())?;
        inner.flush()?;
        inner.get_ref().sync_all()?;
        drop(inner);
        std::fs::rename(&self.tmp, &self.dest)?;
        fsync_parent_dir(&self.dest)?;
        Ok(footer)
    }
}

impl Drop for RecordWriter {
    fn drop(&mut self) {
        // An unfinished writer must not leave a torn temp file behind.
        if self.inner.take().is_some() {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::RecordReader;

    #[test]
    fn write_then_read_roundtrips() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.bin");
        let io = IoStats::default();
        let mut w = RecordWriter::create(&path, io.clone()).unwrap();
        w.write(KvPair::new(7, 1)).unwrap();
        w.write_all(&[KvPair::new(8, 2), KvPair::new(9, 3)])
            .unwrap();
        assert_eq!(w.written(), 3);
        assert_eq!(w.finish().unwrap(), 3);
        // Footer bytes are metadata, not modeled spill traffic.
        assert_eq!(io.snapshot().bytes_written, 3 * KvPair::BYTES as u64);

        let mut r = RecordReader::open(&path, io).unwrap();
        assert_eq!(
            r.read_all().unwrap(),
            vec![KvPair::new(7, 1), KvPair::new(8, 2), KvPair::new(9, 3)]
        );
    }

    #[test]
    fn create_truncates_existing_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("t.bin");
        let io = IoStats::default();
        let mut w = RecordWriter::create(&path, io.clone()).unwrap();
        w.write_all(&[KvPair::new(1, 1); 5]).unwrap();
        w.finish().unwrap();

        let w2 = RecordWriter::create(&path, io.clone()).unwrap();
        w2.finish().unwrap();
        let r = RecordReader::open(&path, io).unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn create_in_missing_directory_fails() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("no/such/dir/w.bin");
        assert!(RecordWriter::create(&path, IoStats::default()).is_err());
    }

    #[test]
    fn file_appears_only_on_finish_and_carries_a_footer() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("atomic.bin");
        let io = IoStats::default();
        let mut w = RecordWriter::create(&path, io.clone()).unwrap();
        w.write(KvPair::new(1, 2)).unwrap();
        assert!(!path.exists(), "final name must not exist before finish");
        assert!(tmp_path(&path).exists());
        let footer = w.finish_summary().unwrap();
        assert!(path.exists());
        assert!(!tmp_path(&path).exists());
        assert_eq!(footer.records, 1);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), KvPair::BYTES + Footer::BYTES);
        let tail: [u8; Footer::BYTES] = bytes[KvPair::BYTES..].try_into().unwrap();
        assert_eq!(Footer::decode(&tail), Some(footer));
    }

    #[test]
    fn dropping_an_unfinished_writer_deletes_its_temp_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("torn.bin");
        let mut w = RecordWriter::create(&path, IoStats::default()).unwrap();
        w.write(KvPair::new(1, 2)).unwrap();
        drop(w);
        assert!(!path.exists());
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn blob_roundtrips_and_rejects_corruption() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("blob.bin");
        let io = IoStats::default();
        let payload = b"minimizer index bytes".to_vec();
        write_blob(&path, &payload, &io).unwrap();
        assert!(!tmp_path(&path).exists());
        assert_eq!(crate::reader::read_blob(&path, &io).unwrap(), payload);

        // Any single bit flip in the payload is detected, with the path
        // named in the error.
        let clean = std::fs::read(&path).unwrap();
        let mut torn = clean.clone();
        torn[3] ^= 0x40;
        std::fs::write(&path, &torn).unwrap();
        let err = crate::reader::read_blob(&path, &io).unwrap_err();
        match err {
            StreamError::Corrupt(m) => assert!(m.contains("blob.bin"), "{m}"),
            other => panic!("expected Corrupt, got {other}"),
        }

        // Truncation (torn tail) is detected too.
        std::fs::write(&path, &clean[..clean.len() - 5]).unwrap();
        assert!(matches!(
            crate::reader::read_blob(&path, &io),
            Err(StreamError::Corrupt(_))
        ));

        // Empty payloads are valid blobs.
        write_blob(&path, &[], &io).unwrap();
        assert!(crate::reader::read_blob(&path, &io).unwrap().is_empty());
    }

    #[test]
    fn injected_disk_full_surfaces_as_storage_full_io_error() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("enospc.bin");
        let io = IoStats::default();
        io.set_faults(faultsim::Faults::from_plan(
            &faultsim::FaultPlan::new().fail_at(faultsim::DISK_FULL, 1),
        ));
        let mut w = RecordWriter::create(&path, io.clone()).unwrap();
        w.write(KvPair::new(3, 4)).unwrap();
        let err = w.finish().unwrap_err();
        match err {
            StreamError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::StorageFull),
            other => panic!("expected Io(StorageFull), got {other}"),
        }
        // The failed commit sheds its temp file like any other failure.
        assert!(!path.exists());
        assert!(!tmp_path(&path).exists());

        // One-shot: the retry after cleanup commits normally.
        let mut w = RecordWriter::create(&path, io).unwrap();
        w.write(KvPair::new(3, 4)).unwrap();
        assert_eq!(w.finish().unwrap(), 1);
    }

    #[test]
    fn injected_commit_fault_leaves_no_file_behind() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("faulted.bin");
        let io = IoStats::default();
        io.set_faults(faultsim::Faults::from_plan(
            &faultsim::FaultPlan::new().fail_at(faultsim::SPILL_WRITE, 1),
        ));
        let mut w = RecordWriter::create(&path, io.clone()).unwrap();
        w.write(KvPair::new(3, 4)).unwrap();
        let err = w.finish().unwrap_err();
        assert!(matches!(err, StreamError::Fault(_)), "got {err}");
        assert!(!path.exists());
        assert!(!tmp_path(&path).exists());

        // The failpoint is one-shot: the retry commits normally.
        let mut w = RecordWriter::create(&path, io).unwrap();
        w.write(KvPair::new(3, 4)).unwrap();
        assert_eq!(w.finish().unwrap(), 1);
        assert!(path.exists());
    }
}
