//! Fixed-width binary records and the durable spill-file footer.
//!
//! The sort and reduce phases operate on pairs of a 128-bit fingerprint key
//! (two 64-bit Rabin-Karp hashes, Section IV-B) and a 32-bit vertex id. The
//! on-disk layout is 20 bytes little-endian, no framing — sequential streams
//! of a known record count, which is what lets every phase run with purely
//! sequential I/O.
//!
//! Every spill file ends in a fixed [`Footer`] (magic, record count, FNV-1a
//! checksum of the record bytes) so that truncation, stale files, and
//! bit-flips all fail loudly as `StreamError::Corrupt` instead of silently
//! mis-assembling. See ROBUSTNESS.md for the format.

/// A `(fingerprint, vertex-id)` pair. The paper's "key-value pair": the key
/// is the 128-bit fingerprint of an l-length suffix or prefix, the value the
/// id of the read (vertex) it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KvPair {
    /// 128-bit fingerprint.
    pub key: u128,
    /// Vertex id (`2 * read_id + strand`).
    pub val: u32,
}

impl KvPair {
    /// Encoded size in bytes.
    pub const BYTES: usize = 20;

    /// Construct a pair.
    pub fn new(key: u128, val: u32) -> Self {
        KvPair { key, val }
    }

    /// Serialize into a 20-byte little-endian frame.
    pub fn encode(&self, out: &mut [u8]) {
        out[..16].copy_from_slice(&self.key.to_le_bytes());
        out[16..20].copy_from_slice(&self.val.to_le_bytes());
    }

    /// Deserialize from a 20-byte little-endian frame.
    pub fn decode(buf: &[u8]) -> Self {
        let key = u128::from_le_bytes(buf[..16].try_into().expect("16-byte key"));
        let val = u32::from_le_bytes(buf[16..20].try_into().expect("4-byte value"));
        KvPair { key, val }
    }
}

/// Incremental 64-bit FNV-1a hash — the spill-file checksum. Small, fast,
/// dependency-free; with 64 bits an undetected random corruption needs
/// ~2^64 flips, far past anything a 398 GB spill set will see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The digest over everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Fixed trailer of every spill/run file: written by `RecordWriter::finish`
/// at the commit point, verified by `RecordReader` on open (size/magic) and
/// on drain (checksum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Number of [`KvPair`] records preceding the footer.
    pub records: u64,
    /// FNV-1a 64 over the encoded record bytes.
    pub checksum: u64,
}

impl Footer {
    /// `b"KVSPILL1"` little-endian — rejects footer-less and foreign files.
    pub const MAGIC: u64 = u64::from_le_bytes(*b"KVSPILL1");
    /// Encoded size in bytes.
    pub const BYTES: usize = 24;

    /// Serialize as `magic ‖ records ‖ checksum`, all little-endian u64.
    pub fn encode(&self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        out[..8].copy_from_slice(&Self::MAGIC.to_le_bytes());
        out[8..16].copy_from_slice(&self.records.to_le_bytes());
        out[16..24].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Deserialize; `None` if the magic does not match.
    pub fn decode(buf: &[u8; Self::BYTES]) -> Option<Footer> {
        let magic = u64::from_le_bytes(buf[..8].try_into().expect("8-byte magic"));
        if magic != Self::MAGIC {
            return None;
        }
        Some(Footer {
            records: u64::from_le_bytes(buf[8..16].try_into().expect("8-byte count")),
            checksum: u64::from_le_bytes(buf[16..24].try_into().expect("8-byte checksum")),
        })
    }
}

/// Fixed trailer of every durable byte blob (contig stores, minimizer
/// indexes): written by [`crate::writer::write_blob`] at the commit point,
/// verified by [`crate::reader::read_blob`] on open. Identical durability
/// contract to [`Footer`], but framing arbitrary bytes instead of
/// fixed-width records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobFooter {
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a 64 over the payload bytes.
    pub checksum: u64,
}

impl BlobFooter {
    /// `b"LASBLOB1"` little-endian — rejects footer-less and foreign files.
    pub const MAGIC: u64 = u64::from_le_bytes(*b"LASBLOB1");
    /// Encoded size in bytes.
    pub const BYTES: usize = 24;

    /// Serialize as `magic ‖ len ‖ checksum`, all little-endian u64.
    pub fn encode(&self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        out[..8].copy_from_slice(&Self::MAGIC.to_le_bytes());
        out[8..16].copy_from_slice(&self.len.to_le_bytes());
        out[16..24].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Deserialize; `None` if the magic does not match.
    pub fn decode(buf: &[u8; Self::BYTES]) -> Option<BlobFooter> {
        let magic = u64::from_le_bytes(buf[..8].try_into().expect("8-byte magic"));
        if magic != Self::MAGIC {
            return None;
        }
        Some(BlobFooter {
            len: u64::from_le_bytes(buf[8..16].try_into().expect("8-byte len")),
            checksum: u64::from_le_bytes(buf[16..24].try_into().expect("8-byte checksum")),
        })
    }
}

/// Split pairs into the structure-of-arrays layout device kernels take.
pub fn split_pairs(pairs: &[KvPair]) -> (Vec<u128>, Vec<u32>) {
    let mut keys = Vec::with_capacity(pairs.len());
    let mut vals = Vec::with_capacity(pairs.len());
    for p in pairs {
        keys.push(p.key);
        vals.push(p.val);
    }
    (keys, vals)
}

/// Zip structure-of-arrays output back into pairs.
pub fn zip_pairs(keys: Vec<u128>, vals: Vec<u32>) -> Vec<KvPair> {
    debug_assert_eq!(keys.len(), vals.len());
    keys.into_iter()
        .zip(vals)
        .map(|(key, val)| KvPair { key, val })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip_basics() {
        let p = KvPair::new(0x0123_4567_89AB_CDEF_0011_2233_4455_6677, 42);
        let mut buf = [0u8; KvPair::BYTES];
        p.encode(&mut buf);
        assert_eq!(KvPair::decode(&buf), p);
    }

    #[test]
    fn encoding_is_little_endian() {
        let p = KvPair::new(1, 2);
        let mut buf = [0u8; KvPair::BYTES];
        p.encode(&mut buf);
        assert_eq!(buf[0], 1);
        assert_eq!(buf[16], 2);
        assert!(buf[1..16].iter().all(|&b| b == 0));
    }

    #[test]
    fn ordering_is_key_major() {
        let a = KvPair::new(1, 100);
        let b = KvPair::new(2, 0);
        assert!(a < b);
        // Ties broken by value.
        assert!(KvPair::new(1, 0) < KvPair::new(1, 1));
    }

    #[test]
    fn split_and_zip_are_inverses() {
        let pairs = vec![KvPair::new(9, 1), KvPair::new(3, 2)];
        let (k, v) = split_pairs(&pairs);
        assert_eq!(k, vec![9, 3]);
        assert_eq!(v, vec![1, 2]);
        assert_eq!(zip_pairs(k, v), pairs);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv_is_incremental() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn footer_roundtrips_and_rejects_bad_magic() {
        let f = Footer {
            records: 1234,
            checksum: 0xdead_beef,
        };
        let mut buf = f.encode();
        assert_eq!(Footer::decode(&buf), Some(f));
        buf[3] ^= 1;
        assert_eq!(Footer::decode(&buf), None);
    }

    proptest! {
        #[test]
        fn roundtrip_any_pair(key in any::<u128>(), val in any::<u32>()) {
            let p = KvPair::new(key, val);
            let mut buf = [0u8; KvPair::BYTES];
            p.encode(&mut buf);
            prop_assert_eq!(KvPair::decode(&buf), p);
        }

        #[test]
        fn any_single_bit_flip_changes_the_checksum(
            data in proptest::collection::vec(any::<u8>(), 1..200),
            bit in 0usize..8,
            idx in any::<proptest::sample::Index>(),
        ) {
            let mut flipped = data.clone();
            let i = idx.index(flipped.len());
            flipped[i] ^= 1 << bit;
            prop_assert_ne!(fnv1a(&data), fnv1a(&flipped));
        }
    }
}
