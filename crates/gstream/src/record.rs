//! Fixed-width binary records.
//!
//! The sort and reduce phases operate on pairs of a 128-bit fingerprint key
//! (two 64-bit Rabin-Karp hashes, Section IV-B) and a 32-bit vertex id. The
//! on-disk layout is 20 bytes little-endian, no framing — sequential streams
//! of a known record count, which is what lets every phase run with purely
//! sequential I/O.

/// A `(fingerprint, vertex-id)` pair. The paper's "key-value pair": the key
/// is the 128-bit fingerprint of an l-length suffix or prefix, the value the
/// id of the read (vertex) it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KvPair {
    /// 128-bit fingerprint.
    pub key: u128,
    /// Vertex id (`2 * read_id + strand`).
    pub val: u32,
}

impl KvPair {
    /// Encoded size in bytes.
    pub const BYTES: usize = 20;

    /// Construct a pair.
    pub fn new(key: u128, val: u32) -> Self {
        KvPair { key, val }
    }

    /// Serialize into a 20-byte little-endian frame.
    pub fn encode(&self, out: &mut [u8]) {
        out[..16].copy_from_slice(&self.key.to_le_bytes());
        out[16..20].copy_from_slice(&self.val.to_le_bytes());
    }

    /// Deserialize from a 20-byte little-endian frame.
    pub fn decode(buf: &[u8]) -> Self {
        let key = u128::from_le_bytes(buf[..16].try_into().expect("16-byte key"));
        let val = u32::from_le_bytes(buf[16..20].try_into().expect("4-byte value"));
        KvPair { key, val }
    }
}

/// Split pairs into the structure-of-arrays layout device kernels take.
pub fn split_pairs(pairs: &[KvPair]) -> (Vec<u128>, Vec<u32>) {
    let mut keys = Vec::with_capacity(pairs.len());
    let mut vals = Vec::with_capacity(pairs.len());
    for p in pairs {
        keys.push(p.key);
        vals.push(p.val);
    }
    (keys, vals)
}

/// Zip structure-of-arrays output back into pairs.
pub fn zip_pairs(keys: Vec<u128>, vals: Vec<u32>) -> Vec<KvPair> {
    debug_assert_eq!(keys.len(), vals.len());
    keys.into_iter()
        .zip(vals)
        .map(|(key, val)| KvPair { key, val })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip_basics() {
        let p = KvPair::new(0x0123_4567_89AB_CDEF_0011_2233_4455_6677, 42);
        let mut buf = [0u8; KvPair::BYTES];
        p.encode(&mut buf);
        assert_eq!(KvPair::decode(&buf), p);
    }

    #[test]
    fn encoding_is_little_endian() {
        let p = KvPair::new(1, 2);
        let mut buf = [0u8; KvPair::BYTES];
        p.encode(&mut buf);
        assert_eq!(buf[0], 1);
        assert_eq!(buf[16], 2);
        assert!(buf[1..16].iter().all(|&b| b == 0));
    }

    #[test]
    fn ordering_is_key_major() {
        let a = KvPair::new(1, 100);
        let b = KvPair::new(2, 0);
        assert!(a < b);
        // Ties broken by value.
        assert!(KvPair::new(1, 0) < KvPair::new(1, 1));
    }

    #[test]
    fn split_and_zip_are_inverses() {
        let pairs = vec![KvPair::new(9, 1), KvPair::new(3, 2)];
        let (k, v) = split_pairs(&pairs);
        assert_eq!(k, vec![9, 3]);
        assert_eq!(v, vec![1, 2]);
        assert_eq!(zip_pairs(k, v), pairs);
    }

    proptest! {
        #[test]
        fn roundtrip_any_pair(key in any::<u128>(), val in any::<u32>()) {
            let p = KvPair::new(key, val);
            let mut buf = [0u8; KvPair::BYTES];
            p.encode(&mut buf);
            prop_assert_eq!(KvPair::decode(&buf), p);
        }
    }
}
