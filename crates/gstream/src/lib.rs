//! # gstream — two-level streaming I/O substrate
//!
//! LaSAGNA's central memory-management idea (Section III, Fig. 3) is a
//! conceptual split of the memory hierarchy into a sequentially-scanned
//! **read-only memory** (input files), a sequentially-appended **write-only
//! memory** (output files), and a **working memory** of slow random-access
//! host RAM plus a small fast device RAM. Data moves disk → host in large
//! blocks and host → device in small chunks; this crate implements that
//! machinery:
//!
//! * [`record`] — fixed-width binary `(fingerprint, id)` records;
//! * [`reader`]/[`writer`] — buffered sequential record streams whose bytes
//!   are tallied in shared [`IoStats`] and charged to a disk bandwidth model;
//! * [`hostmem`] — host-memory budget accounting (the paper's m_h);
//! * [`spill`] — per-overlap-length partition files (the map phase output);
//! * [`merge`] — the paper's **Algorithm 1**: external merging of two sorted
//!   streams with window equalization by upper-bound and device merges;
//! * [`extsort`] — the **hybrid-memory external sort** (Section III-B):
//!   host-sized runs built from device-sorted chunks, then log-many external
//!   merge passes. Disk passes = `1 + ceil(log2(n / m_h))`;
//! * [`frame`] — length-prefixed, FNV-checksummed message framing, the wire
//!   format of the `qnet` serving front-end.

pub mod extsort;
pub mod frame;
pub mod hostmem;
pub mod iostats;
pub mod merge;
pub mod reader;
pub mod record;
pub mod spill;
pub mod writer;

pub use extsort::{ExternalSorter, SortConfig, SortReport};
pub use frame::{read_frame, write_frame, FRAME_HEADER_BYTES, MAX_FRAME_BYTES};
pub use hostmem::{HostAlloc, HostMem, HostMemError};
pub use iostats::{DiskModel, IoStats};
pub use merge::{kway_merge, windowed_merge, PairSink, PairSource, SliceSource, VecSink};
pub use reader::{read_blob, read_footer, RecordReader};
pub use record::{fnv1a, BlobFooter, Fnv64, Footer, KvPair};
pub use spill::{range_of, PartitionKind, PartitionSet, SpillDir};
pub use writer::{fsync_dir, fsync_parent_dir, write_blob, RecordWriter};

/// Errors from streaming operations.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying file-system error.
    Io(std::io::Error),
    /// A file ended in the middle of a record, or contained garbage.
    Corrupt(String),
    /// Device-side failure (out of device memory, bad launch).
    Device(vgpu::DeviceError),
    /// Host-memory budget exceeded.
    HostMem(hostmem::HostMemError),
    /// Configuration that cannot work (e.g. zero-sized windows).
    BadConfig(String),
    /// A deterministic injected fault (see `faultsim` and ROBUSTNESS.md).
    Fault(faultsim::FaultError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "I/O error: {e}"),
            StreamError::Corrupt(m) => write!(f, "corrupt stream: {m}"),
            StreamError::Device(e) => write!(f, "device error: {e}"),
            StreamError::HostMem(e) => write!(f, "host memory: {e}"),
            StreamError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            StreamError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<vgpu::DeviceError> for StreamError {
    fn from(e: vgpu::DeviceError) -> Self {
        StreamError::Device(e)
    }
}

impl From<hostmem::HostMemError> for StreamError {
    fn from(e: hostmem::HostMemError) -> Self {
        StreamError::HostMem(e)
    }
}

impl From<faultsim::FaultError> for StreamError {
    fn from(e: faultsim::FaultError) -> Self {
        StreamError::Fault(e)
    }
}

/// Convenience alias for fallible streaming operations.
pub type Result<T> = std::result::Result<T, StreamError>;
