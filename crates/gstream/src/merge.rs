//! External-memory merging — the paper's **Algorithm 1**.
//!
//! Two sorted streams are merged while holding at most `M` pairs in working
//! memory: windows of `M/2` pairs slide over each input; when a whole window
//! precedes the other it is emitted directly (lines 5-6); otherwise the
//! window holding the larger last key is *resized* at the upper bound of the
//! smaller last key (lines 8-15) so that the pair of windows covers a closed
//! key range, and the equalized windows are merged on the device (line 16).
//!
//! The same routine implements both levels of the paper's hybrid-memory
//! scheme: at the disk level `M = m_h` (host block-size) and the "device
//! merge" recursively re-enters with `M = m_d`; at the host level the
//! windows are slices already in RAM.

use crate::record::{split_pairs, zip_pairs, KvPair};
use crate::writer::RecordWriter;
use crate::{Result, StreamError};
use vgpu::Device;

/// A sequential source of sorted pairs (file stream or in-memory slice).
pub trait PairSource {
    /// Produce up to `max` further pairs; an empty vec means exhausted.
    fn next_chunk(&mut self, max: usize) -> Result<Vec<KvPair>>;
}

impl PairSource for crate::reader::RecordReader {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<KvPair>> {
        crate::reader::RecordReader::next_chunk(self, max)
    }
}

/// In-memory source over a sorted slice.
pub struct SliceSource<'a> {
    data: &'a [KvPair],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Wrap a sorted slice.
    pub fn new(data: &'a [KvPair]) -> Self {
        SliceSource { data, pos: 0 }
    }
}

impl PairSource for SliceSource<'_> {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<KvPair>> {
        let take = max.min(self.data.len() - self.pos);
        let out = self.data[self.pos..self.pos + take].to_vec();
        self.pos += take;
        Ok(out)
    }
}

/// A sink for merged output (file stream or in-memory vec).
pub trait PairSink {
    /// Append `pairs` to the output.
    fn emit(&mut self, pairs: &[KvPair]) -> Result<()>;
}

impl PairSink for RecordWriter {
    fn emit(&mut self, pairs: &[KvPair]) -> Result<()> {
        self.write_all(pairs)
    }
}

/// Sink that accumulates into a `Vec`.
#[derive(Default)]
pub struct VecSink {
    /// Collected output.
    pub out: Vec<KvPair>,
}

impl PairSink for VecSink {
    fn emit(&mut self, pairs: &[KvPair]) -> Result<()> {
        self.out.extend_from_slice(pairs);
        Ok(())
    }
}

/// Upper bound of `key` in a sorted pair slice: the index after the last
/// element with key `<= key` (the paper's `UPPER_BOUND`).
fn upper_bound(pairs: &[KvPair], key: u128) -> usize {
    pairs.partition_point(|p| p.key <= key)
}

fn refill<S: PairSource>(buf: &mut Vec<KvPair>, src: &mut S, target: usize) -> Result<()> {
    if buf.len() < target {
        let more = src.next_chunk(target - buf.len())?;
        buf.extend(more);
    }
    Ok(())
}

/// Merge two equalized in-memory runs on the device. Runs whose combined
/// size exceeds `device_pairs` are merged by re-entering the windowed
/// algorithm with `M = device_pairs` — the second level of the paper's
/// hybrid scheme.
pub fn device_merge(
    dev: &Device,
    a: &[KvPair],
    b: &[KvPair],
    device_pairs: usize,
) -> Result<Vec<KvPair>> {
    if a.len() + b.len() <= device_pairs {
        let (ak, av) = split_pairs(a);
        let (bk, bv) = split_pairs(b);
        let ak = dev.h2d(&ak)?;
        let av = dev.h2d(&av)?;
        let bk = dev.h2d(&bk)?;
        let bv = dev.h2d(&bv)?;
        let (ok, ov) = dev.merge_pairs(&ak, &av, &bk, &bv)?;
        Ok(zip_pairs(dev.d2h(&ok), dev.d2h(&ov)))
    } else {
        let mut sink = VecSink::default();
        windowed_merge(
            dev,
            &mut SliceSource::new(a),
            &mut SliceSource::new(b),
            &mut sink,
            device_pairs,
            device_pairs,
        )?;
        Ok(sink.out)
    }
}

/// Merge sorted sources `a` and `b` into `out`, holding at most
/// `window_pairs` pairs in working memory and at most `device_pairs` pairs
/// on the device. Returns the number of pairs emitted.
///
/// When the device carries an [`obs::Recorder`] (see
/// [`Device::set_recorder`]), the total number of window advances (rounds
/// that emitted output) is recorded as the `merge.window_advances` counter
/// on the recorder's current span.
pub fn windowed_merge<SA, SB, K>(
    dev: &Device,
    a: &mut SA,
    b: &mut SB,
    out: &mut K,
    window_pairs: usize,
    device_pairs: usize,
) -> Result<u64>
where
    SA: PairSource,
    SB: PairSource,
    K: PairSink,
{
    let mut advances = 0u64;
    let result = windowed_merge_inner(dev, a, b, out, window_pairs, device_pairs, &mut advances);
    if advances > 0 {
        let rec = dev.recorder();
        if rec.is_enabled() {
            rec.counter("merge.window_advances", advances);
        }
    }
    result
}

fn windowed_merge_inner<SA, SB, K>(
    dev: &Device,
    a: &mut SA,
    b: &mut SB,
    out: &mut K,
    window_pairs: usize,
    device_pairs: usize,
    advances: &mut u64,
) -> Result<u64>
where
    SA: PairSource,
    SB: PairSource,
    K: PairSink,
{
    if window_pairs < 2 || device_pairs < 2 {
        return Err(StreamError::BadConfig(format!(
            "merge windows must hold at least 2 pairs (window={window_pairs}, device={device_pairs})"
        )));
    }
    let half = window_pairs / 2;
    let mut af: Vec<KvPair> = Vec::new();
    let mut bf: Vec<KvPair> = Vec::new();
    let mut emitted = 0u64;

    loop {
        refill(&mut af, a, half)?;
        refill(&mut bf, b, half)?;

        // Line 19: one side exhausted — stream the remainder of the other.
        if af.is_empty() {
            while !bf.is_empty() {
                out.emit(&bf)?;
                emitted += bf.len() as u64;
                *advances += 1;
                bf.clear();
                refill(&mut bf, b, half)?;
            }
            return Ok(emitted);
        }
        if bf.is_empty() {
            while !af.is_empty() {
                out.emit(&af)?;
                emitted += af.len() as u64;
                *advances += 1;
                af.clear();
                refill(&mut af, a, half)?;
            }
            return Ok(emitted);
        }

        let a_last = af[af.len() - 1].key;
        let b_last = bf[bf.len() - 1].key;

        // Lines 5-6: whole-window ordering, no merge needed.
        if a_last <= bf[0].key {
            out.emit(&af)?;
            emitted += af.len() as u64;
            *advances += 1;
            af.clear();
            continue;
        }
        if b_last < af[0].key {
            out.emit(&bf)?;
            emitted += bf.len() as u64;
            *advances += 1;
            bf.clear();
            continue;
        }

        // Lines 8-15: equalize the windows at min(a_last, b_last), then
        // merge the covered range on the device (line 16). The cut keeps
        // everything <= the smaller last key, so no key in the emitted
        // range can still arrive from either stream.
        let (take_a, take_b) = if a_last <= b_last {
            (af.len(), upper_bound(&bf, a_last))
        } else {
            (upper_bound(&af, b_last), bf.len())
        };
        let merged = device_merge(dev, &af[..take_a], &bf[..take_b], device_pairs)?;
        out.emit(&merged)?;
        emitted += merged.len() as u64;
        *advances += 1;
        af.drain(..take_a);
        bf.drain(..take_b);
    }
}

/// K-way external merge: one pass over any number of sorted sources.
///
/// The paper's Algorithm 1 is "adapted from the k-way merging scheme" but
/// merges runs *pairwise*, doubling run length each disk pass
/// (`log2(runs)` passes). This generalization holds one window per source
/// and finishes in a single pass: any key strictly below the smallest
/// last-key among non-exhausted windows can no longer arrive from any
/// source, so each round emits the device-merged tournament of the safe
/// window prefixes. Used by the sort ablation; the default sorter stays
/// faithful to the paper's pairwise scheme.
pub fn kway_merge<K>(
    dev: &Device,
    sources: &mut [&mut dyn PairSource],
    out: &mut K,
    window_pairs: usize,
    device_pairs: usize,
) -> Result<u64>
where
    K: PairSink,
{
    if sources.is_empty() {
        return Ok(0);
    }
    let per_window = (window_pairs / (sources.len() + 1)).max(2);
    struct Win {
        buf: Vec<KvPair>,
        exhausted: bool,
    }
    let mut wins: Vec<Win> = sources
        .iter()
        .map(|_| Win {
            buf: Vec::new(),
            exhausted: false,
        })
        .collect();
    let mut emitted = 0u64;
    let mut rounds = 0u64;

    loop {
        // Refill.
        for (w, src) in wins.iter_mut().zip(sources.iter_mut()) {
            if !w.exhausted && w.buf.len() < per_window {
                let more = src.next_chunk(per_window - w.buf.len())?;
                if more.is_empty() {
                    w.exhausted = true;
                } else {
                    w.buf.extend(more);
                    if w.buf.len() < per_window {
                        w.exhausted = true;
                    }
                }
            }
        }
        if wins.iter().all(|w| w.buf.is_empty()) {
            if rounds > 0 {
                let rec = dev.recorder();
                if rec.is_enabled() {
                    rec.counter("merge.window_advances", rounds);
                }
            }
            return Ok(emitted);
        }

        // Safe frontier: the smallest last-key among windows whose stream
        // may still deliver more (non-exhausted). Exhausted windows are
        // complete and impose no bound.
        let frontier: Option<u128> = wins
            .iter()
            .filter(|w| !w.exhausted && !w.buf.is_empty())
            .map(|w| w.buf.last().expect("non-empty").key)
            .min();

        // Cut each window at the frontier (strictly below, so a later
        // chunk with equal keys cannot be missed); when that yields no
        // progress, gather the frontier key's full run everywhere and
        // include it.
        let mut cuts: Vec<usize> = wins
            .iter()
            .map(|w| match frontier {
                Some(f) if !w.exhausted || w.buf.last().is_some_and(|l| l.key >= f) => {
                    w.buf.partition_point(|p| p.key < f)
                }
                _ => w.buf.len(),
            })
            .collect();
        if cuts.iter().all(|&c| c == 0) {
            let f = frontier.expect("stall implies a frontier");
            for (w, src) in wins.iter_mut().zip(sources.iter_mut()) {
                while !w.exhausted && w.buf.last().is_some_and(|l| l.key == f) {
                    let more = src.next_chunk(per_window)?;
                    if more.is_empty() {
                        w.exhausted = true;
                    } else {
                        w.buf.extend(more);
                    }
                }
            }
            cuts = wins
                .iter()
                .map(|w| w.buf.partition_point(|p| p.key <= f))
                .collect();
        }

        // Tournament-merge the safe prefixes on the device.
        let mut runs: Vec<Vec<KvPair>> = wins
            .iter_mut()
            .zip(cuts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(w, &c)| w.buf.drain(..c).collect())
            .collect();
        while runs.len() > 1 {
            let mut next_round = Vec::with_capacity(runs.len() / 2 + 1);
            let mut iter = runs.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => next_round.push(device_merge(dev, &a, &b, device_pairs)?),
                    None => next_round.push(a),
                }
            }
            runs = next_round;
        }
        if let Some(merged) = runs.pop() {
            out.emit(&merged)?;
            emitted += merged.len() as u64;
            rounds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vgpu::GpuProfile;

    fn dev() -> Device {
        Device::new(GpuProfile::k40())
    }

    fn kv(keys: &[u128]) -> Vec<KvPair> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| KvPair::new(k, i as u32))
            .collect()
    }

    fn merge_with(a: &[KvPair], b: &[KvPair], window: usize, device: usize) -> Vec<KvPair> {
        let d = dev();
        let mut sink = VecSink::default();
        let n = windowed_merge(
            &d,
            &mut SliceSource::new(a),
            &mut SliceSource::new(b),
            &mut sink,
            window,
            device,
        )
        .unwrap();
        assert_eq!(n as usize, sink.out.len());
        sink.out
    }

    #[test]
    fn merges_disjoint_ranges_without_device_merge() {
        let a = kv(&[1, 2, 3]);
        let b = kv(&[10, 11]);
        let got = merge_with(&a, &b, 8, 8);
        let keys: Vec<u128> = got.iter().map(|p| p.key).collect();
        assert_eq!(keys, vec![1, 2, 3, 10, 11]);
    }

    #[test]
    fn merges_interleaved_ranges_across_windows() {
        let a = kv(&[1, 4, 7, 10, 13, 16]);
        let b = kv(&[2, 5, 8, 11, 14, 17]);
        let got = merge_with(&a, &b, 4, 4);
        let keys: Vec<u128> = got.iter().map(|p| p.key).collect();
        assert_eq!(keys, vec![1, 2, 4, 5, 7, 8, 10, 11, 13, 14, 16, 17]);
    }

    #[test]
    fn duplicate_keys_spanning_window_boundaries_stay_sorted() {
        let a = kv(&[5, 5, 5, 5, 5, 6]);
        let b = kv(&[5, 5, 5, 7]);
        for window in [2, 4, 6, 16] {
            let got = merge_with(&a, &b, window, 16);
            let keys: Vec<u128> = got.iter().map(|p| p.key).collect();
            assert_eq!(keys, vec![5, 5, 5, 5, 5, 5, 5, 5, 6, 7], "window={window}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_with(&[], &[], 4, 4).is_empty());
        let a = kv(&[1, 2]);
        assert_eq!(merge_with(&a, &[], 4, 4), a);
        assert_eq!(merge_with(&[], &a, 4, 4), a);
    }

    #[test]
    fn rejects_degenerate_windows() {
        let d = dev();
        let mut sink = VecSink::default();
        let err = windowed_merge(
            &d,
            &mut SliceSource::new(&[]),
            &mut SliceSource::new(&[]),
            &mut sink,
            1,
            4,
        );
        assert!(matches!(err, Err(StreamError::BadConfig(_))));
    }

    #[test]
    fn device_merge_recurses_when_runs_exceed_device() {
        let d = dev();
        let a = kv(&[1, 3, 5, 7, 9, 11, 13, 15]);
        let b = kv(&[2, 4, 6, 8, 10, 12, 14, 16]);
        let got = device_merge(&d, &a, &b, 4).unwrap();
        let keys: Vec<u128> = got.iter().map(|p| p.key).collect();
        assert_eq!(keys, (1..=16).collect::<Vec<u128>>());
    }

    fn kway(groups: Vec<Vec<u128>>, window: usize, device: usize) -> Vec<u128> {
        let d = dev();
        let runs: Vec<Vec<KvPair>> = groups.iter().map(|g| kv(g)).collect();
        let mut sources: Vec<SliceSource> = runs.iter().map(|r| SliceSource::new(r)).collect();
        let mut dyns: Vec<&mut dyn PairSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn PairSource)
            .collect();
        let mut sink = VecSink::default();
        let n = kway_merge(&d, &mut dyns, &mut sink, window, device).unwrap();
        assert_eq!(n as usize, sink.out.len());
        sink.out.iter().map(|p| p.key).collect()
    }

    #[test]
    fn kway_merges_three_runs() {
        let got = kway(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]], 12, 12);
        assert_eq!(got, (1..=9).collect::<Vec<u128>>());
    }

    #[test]
    fn kway_handles_empty_and_unbalanced_runs() {
        let got = kway(vec![vec![], vec![5], vec![1, 2, 3, 4, 6, 7]], 8, 8);
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7]);
        assert!(kway(vec![], 8, 8).is_empty());
        assert!(kway(vec![vec![], vec![]], 8, 8).is_empty());
    }

    #[test]
    fn kway_survives_all_equal_keys_across_runs() {
        let got = kway(
            vec![vec![7; 20], vec![7; 15], vec![7; 9]],
            6, // tiny windows force the stall path
            8,
        );
        assert_eq!(got, vec![7u128; 44]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn kway_equals_sorted_concat(
            mut groups in prop::collection::vec(
                prop::collection::vec(0u128..500, 0..80), 1..7),
            window in 4usize..40,
            device in 4usize..40,
        ) {
            for g in groups.iter_mut() {
                g.sort_unstable();
            }
            let mut expect: Vec<u128> = groups.iter().flatten().copied().collect();
            expect.sort_unstable();
            let got = kway(groups.clone(), window, device);
            prop_assert_eq!(got, expect);
        }
    }

    proptest! {
        #[test]
        fn merge_equals_sorted_concat(
            mut a in prop::collection::vec(0u128..1000, 0..200),
            mut b in prop::collection::vec(0u128..1000, 0..200),
            window in 2usize..32,
            device in 2usize..32,
        ) {
            a.sort_unstable();
            b.sort_unstable();
            let ap = kv(&a);
            let bp = kv(&b);
            let got = merge_with(&ap, &bp, window, device);
            let got_keys: Vec<u128> = got.iter().map(|p| p.key).collect();
            let mut expect = [a, b].concat();
            expect.sort_unstable();
            prop_assert_eq!(got_keys, expect);
        }
    }
}
