//! Length-prefixed, checksummed message framing for byte-stream
//! transports (the `qnet` wire format).
//!
//! One frame is `u32 LE payload length ‖ u64 LE FNV-1a(payload) ‖ payload`.
//! The checksum is the same [`fnv1a`] that seals every spill blob, so a
//! frame torn by a dropped connection or a flipped bit fails loudly as
//! [`StreamError::Corrupt`] naming the peer — it can never be delivered
//! short or altered. EOF exactly on a frame boundary is the *only* clean
//! way for a stream to end ([`read_frame`] returns `Ok(None)`); EOF
//! anywhere inside a frame is corruption, which is what lets `qnet`
//! distinguish an orderly close from a mid-message drop.

use crate::record::fnv1a;
use crate::StreamError;
use std::io::{ErrorKind, Read, Write};

/// Bytes of framing ahead of the payload: `u32` length + `u64` checksum.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Hard cap on a single frame's payload. A length field above this is
/// treated as corruption rather than an allocation request — the same
/// "implausible header" discipline as `ContigStore::decode`.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Write one frame: header then payload, no flush.
///
/// Payloads above [`MAX_FRAME_BYTES`] are a caller bug surfaced as
/// [`StreamError::BadConfig`] — the peer would be required to reject them.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> crate::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(StreamError::BadConfig(format!(
            "frame payload of {} bytes exceeds the {} byte cap",
            payload.len(),
            MAX_FRAME_BYTES
        )));
    }
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&fnv1a(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// How a buffered read against a possibly-closing stream ended.
enum Fill {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte.
    CleanEof,
    /// EOF after `got` of the wanted bytes.
    Torn { got: usize },
}

fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<Fill> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 {
                    Fill::CleanEof
                } else {
                    Fill::Torn { got }
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

/// Read one frame from `r`.
///
/// Returns `Ok(None)` iff the stream ended cleanly *between* frames.
/// A truncated header or payload, a checksum mismatch, or an implausible
/// length all return [`StreamError::Corrupt`] naming `peer`; transport
/// errors (including read timeouts) pass through as [`StreamError::Io`].
pub fn read_frame<R: Read>(r: &mut R, peer: &str) -> crate::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match fill(r, &mut header)? {
        Fill::CleanEof => return Ok(None),
        Fill::Torn { got } => {
            return Err(StreamError::Corrupt(format!(
            "peer {peer}: stream ended {got} bytes into a {FRAME_HEADER_BYTES}-byte frame header"
        )))
        }
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let expected = u64::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(StreamError::Corrupt(format!(
            "peer {peer}: implausible frame length {len} (cap {MAX_FRAME_BYTES})"
        )));
    }
    let mut payload = vec![0u8; len];
    match fill(r, &mut payload)? {
        Fill::Full => {}
        Fill::CleanEof | Fill::Torn { .. } => {
            return Err(StreamError::Corrupt(format!(
                "peer {peer}: stream ended inside a {len}-byte frame payload"
            )))
        }
    }
    let actual = fnv1a(&payload);
    if actual != expected {
        return Err(StreamError::Corrupt(format!(
            "peer {peer}: frame checksum mismatch (stored {expected:#018x}, computed {actual:#018x})"
        )));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn corrupt_msg(res: crate::Result<Option<Vec<u8>>>) -> String {
        match res {
            Err(StreamError::Corrupt(m)) => m,
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xAB; 1000]).unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r, "t").unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, "t").unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, "t").unwrap().unwrap(), vec![0xAB; 1000]);
        // Clean EOF exactly on the boundary: end of stream, not an error.
        assert!(read_frame(&mut r, "t").unwrap().is_none());
        assert!(read_frame(&mut r, "t").unwrap().is_none());
    }

    #[test]
    fn torn_header_and_torn_payload_are_corrupt() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload bytes").unwrap();
        for cut in 1..wire.len() {
            let msg = corrupt_msg(read_frame(&mut Cursor::new(&wire[..cut]), "node9"));
            assert!(msg.contains("node9"), "{msg}");
            assert!(msg.contains("ended"), "{msg}");
        }
    }

    #[test]
    fn flipped_bit_fails_the_checksum_naming_the_peer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"genome data").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x10;
        let msg = corrupt_msg(read_frame(&mut Cursor::new(&wire), "10.0.0.7:9000"));
        assert!(msg.contains("10.0.0.7:9000"), "{msg}");
        assert!(msg.contains("checksum"), "{msg}");
    }

    #[test]
    fn implausible_length_is_corrupt_not_an_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        let msg = corrupt_msg(read_frame(&mut Cursor::new(&wire), "p"));
        assert!(msg.contains("implausible"), "{msg}");
    }

    #[test]
    fn oversized_payload_is_rejected_at_the_writer() {
        struct Null;
        impl std::io::Write for Null {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(matches!(
            write_frame(&mut Null, &big),
            Err(StreamError::BadConfig(_))
        ));
    }
}
