//! Per-length partition spill files.
//!
//! The map phase "converts a list of (j, f, r) tuples to l_max lists of
//! (f, r) tuples" (Section III-A): one suffix file and one prefix file per
//! overlap length l ∈ [l_min, l_max). Partitions shorter than l_min are
//! discarded and the l_max partition is dropped to avoid self-loops — both
//! rules are enforced here so no caller can accidentally break them.

use crate::iostats::IoStats;
use crate::reader::RecordReader;
use crate::record::KvPair;
use crate::writer::RecordWriter;
use crate::{Result, StreamError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Which side of the overlap a partition holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// l-length suffix fingerprints.
    Suffix,
    /// l-length prefix fingerprints.
    Prefix,
}

impl PartitionKind {
    /// File-name tag of this kind (`sfx`/`pfx`) — also the prefix of the
    /// partition tags recorded in checkpoint manifests.
    pub fn tag(self) -> &'static str {
        match self {
            PartitionKind::Suffix => "sfx",
            PartitionKind::Prefix => "pfx",
        }
    }
}

/// A directory of per-length suffix/prefix partition files.
#[derive(Debug, Clone)]
pub struct SpillDir {
    root: PathBuf,
    io: IoStats,
}

/// Name of the checkpoint manifest a pipeline keeps inside its spill
/// directory; its presence marks the directory as a resumable workdir.
pub const MANIFEST_NAME: &str = "manifest.json";

impl SpillDir {
    /// Create `root` as a fresh spill directory.
    ///
    /// Refuses a non-empty directory that carries no [`MANIFEST_NAME`]:
    /// stale `sfx_*`/`pfx_*` files from an unrelated run must not leak into
    /// a new assembly. Directories with a manifest are accepted — whether
    /// their contents may be reused is decided by the manifest's config
    /// hash at the pipeline level. Use [`SpillDir::open`] to attach to a
    /// directory another component is already managing.
    pub fn create(root: &Path, io: IoStats) -> Result<Self> {
        std::fs::create_dir_all(root)?;
        if !root.join(MANIFEST_NAME).exists() {
            let mut entries = std::fs::read_dir(root)?;
            if entries.next().is_some() {
                return Err(StreamError::BadConfig(format!(
                    "spill directory {} is not empty and has no {MANIFEST_NAME}; \
                     refusing to mix spill files from different runs \
                     (point --work at a fresh directory, or resume the original run)",
                    root.display()
                )));
            }
        }
        Ok(SpillDir {
            root: root.to_path_buf(),
            io,
        })
    }

    /// Attach to `root` without the fresh-run emptiness check (used when
    /// resuming and by cluster nodes re-attaching between phases).
    pub fn open(root: &Path, io: IoStats) -> Result<Self> {
        std::fs::create_dir_all(root)?;
        Ok(SpillDir {
            root: root.to_path_buf(),
            io,
        })
    }

    /// Delete every spill artifact (`*.kv`, in-progress `*.tmp`) so a fresh
    /// run cannot see a predecessor's partitions. Other files (manifest,
    /// staged inputs) are left to their owners.
    pub fn clear(&self) -> Result<()> {
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".kv") || name.ends_with(".tmp") {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Shared I/O statistics.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Path of the partition file for `kind` at overlap length `len`.
    pub fn path(&self, kind: PartitionKind, len: u32) -> PathBuf {
        self.root.join(format!("{}_{:05}.kv", kind.tag(), len))
    }

    /// Path of the range-split partition file for `kind` at length `len`,
    /// fingerprint range `range` (the paper's future-work partitioning
    /// "based on fingerprints rather than on lengths"). Range 0 of a
    /// 1-range split aliases the plain per-length path.
    pub fn path_range(&self, kind: PartitionKind, len: u32, range: u32, ranges: u32) -> PathBuf {
        if ranges <= 1 {
            self.path(kind, len)
        } else {
            self.root
                .join(format!("{}_{:05}_r{:03}.kv", kind.tag(), len, range))
        }
    }

    /// Open a range-split partition for reading.
    pub fn reader_range(
        &self,
        kind: PartitionKind,
        len: u32,
        range: u32,
        ranges: u32,
    ) -> Result<RecordReader> {
        RecordReader::open(&self.path_range(kind, len, range, ranges), self.io.clone())
    }

    /// Path for a scratch file (sort runs, merged outputs).
    pub fn scratch_path(&self, label: &str) -> PathBuf {
        self.root.join(format!("scratch_{label}.kv"))
    }

    /// Open a partition for reading.
    pub fn reader(&self, kind: PartitionKind, len: u32) -> Result<RecordReader> {
        RecordReader::open(&self.path(kind, len), self.io.clone())
    }

    /// Create a partition for writing (truncates).
    pub fn writer(&self, kind: PartitionKind, len: u32) -> Result<RecordWriter> {
        RecordWriter::create(&self.path(kind, len), self.io.clone())
    }

    /// Lengths for which a partition file of `kind` exists, ascending.
    pub fn lengths(&self, kind: PartitionKind) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        let prefix = format!("{}_", kind.tag());
        for entry in std::fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Some(num) = rest.strip_suffix(".kv") {
                    if let Ok(len) = num.parse::<u32>() {
                        out.push(len);
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Delete one partition file, ignoring "already gone".
    pub fn remove(&self, kind: PartitionKind, len: u32) -> Result<()> {
        match std::fs::remove_file(self.path(kind, len)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Map a fingerprint to its range index out of `ranges` equal slices of
/// the key space (by the top 32 bits, so ranges are contiguous in sort
/// order — concatenating ranges 0..n reproduces the global order).
pub fn range_of(key: u128, ranges: u32) -> u32 {
    if ranges <= 1 {
        return 0;
    }
    let top = (key >> 96) as u64; // top 32 bits as u64 for the multiply
    ((top * ranges as u64) >> 32) as u32
}

/// Open writers for every partition in `[l_min, l_max)` of both kinds —
/// the sink of the map phase. Tuples outside the range are rejected per the
/// paper's discard rules. With `ranges > 1` each length is further split
/// by fingerprint range (the paper's future-work partitioning).
pub struct PartitionSet {
    l_min: u32,
    l_max: u32,
    ranges: u32,
    suffix: Vec<RecordWriter>,
    prefix: Vec<RecordWriter>,
}

impl PartitionSet {
    /// Create all `2 * (l_max - l_min)` partition files.
    pub fn create(spill: &SpillDir, l_min: u32, l_max: u32) -> Result<Self> {
        Self::create_split(spill, l_min, l_max, 1)
    }

    /// Create `2 * (l_max - l_min) * ranges` partition files split by
    /// fingerprint range.
    pub fn create_split(spill: &SpillDir, l_min: u32, l_max: u32, ranges: u32) -> Result<Self> {
        if l_min == 0 || l_min >= l_max {
            return Err(StreamError::BadConfig(format!(
                "partition range [{l_min}, {l_max}) is empty or starts at zero"
            )));
        }
        if ranges == 0 {
            return Err(StreamError::BadConfig("need at least one range".into()));
        }
        let slots = ((l_max - l_min) * ranges) as usize;
        let mut suffix = Vec::with_capacity(slots);
        let mut prefix = Vec::with_capacity(slots);
        for len in l_min..l_max {
            for r in 0..ranges {
                suffix.push(RecordWriter::create(
                    &spill.path_range(PartitionKind::Suffix, len, r, ranges),
                    spill.io().clone(),
                )?);
                prefix.push(RecordWriter::create(
                    &spill.path_range(PartitionKind::Prefix, len, r, ranges),
                    spill.io().clone(),
                )?);
            }
        }
        Ok(PartitionSet {
            l_min,
            l_max,
            ranges,
            suffix,
            prefix,
        })
    }

    /// Append a fingerprint tuple for an overlap of length `len`; the
    /// fingerprint range is derived from the key. Lengths outside
    /// `[l_min, l_max)` are silently discarded — the paper drops sub-l_min
    /// partitions and the full-length (self-loop) partition.
    pub fn write(&mut self, kind: PartitionKind, len: u32, pair: KvPair) -> Result<()> {
        if len < self.l_min || len >= self.l_max {
            return Ok(());
        }
        let idx = ((len - self.l_min) * self.ranges + range_of(pair.key, self.ranges)) as usize;
        match kind {
            PartitionKind::Suffix => self.suffix[idx].write(pair),
            PartitionKind::Prefix => self.prefix[idx].write(pair),
        }
    }

    /// Like [`PartitionSet::finish`], but also emits per-length spill
    /// counters (`spill.tuples.sfx_<len>` / `spill.tuples.pfx_<len>`) plus
    /// the total `spill.bytes` on the recorder's current span.
    pub fn finish_traced(self, rec: &obs::Recorder) -> Result<BTreeMap<u32, (u64, u64)>> {
        let counts = self.finish()?;
        if rec.is_enabled() {
            let mut tuples = 0u64;
            for (len, (sfx, pfx)) in &counts {
                rec.counter(&format!("spill.tuples.sfx_{len:05}"), *sfx);
                rec.counter(&format!("spill.tuples.pfx_{len:05}"), *pfx);
                tuples += sfx + pfx;
            }
            rec.counter("spill.bytes", tuples * KvPair::BYTES as u64);
        }
        Ok(counts)
    }

    /// Flush all partitions; returns per-length record counts
    /// (suffix count, prefix count) summed over ranges.
    pub fn finish(self) -> Result<BTreeMap<u32, (u64, u64)>> {
        let mut counts: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for (i, (s, p)) in self.suffix.into_iter().zip(self.prefix).enumerate() {
            let len = self.l_min + i as u32 / self.ranges;
            let entry = counts.entry(len).or_insert((0, 0));
            entry.0 += s.finish()?;
            entry.1 += p.finish()?;
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spill() -> (tempfile::TempDir, SpillDir) {
        let dir = tempfile::tempdir().unwrap();
        let spill = SpillDir::create(dir.path(), IoStats::default()).unwrap();
        (dir, spill)
    }

    #[test]
    fn partition_paths_are_distinct_per_kind_and_len() {
        let (_g, s) = spill();
        let a = s.path(PartitionKind::Suffix, 63);
        let b = s.path(PartitionKind::Prefix, 63);
        let c = s.path(PartitionKind::Suffix, 64);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn partition_set_routes_by_length_and_kind() {
        let (_g, s) = spill();
        let mut set = PartitionSet::create(&s, 3, 6).unwrap();
        set.write(PartitionKind::Suffix, 3, KvPair::new(30, 0))
            .unwrap();
        set.write(PartitionKind::Prefix, 3, KvPair::new(31, 1))
            .unwrap();
        set.write(PartitionKind::Suffix, 5, KvPair::new(50, 2))
            .unwrap();
        // Out-of-range lengths are dropped, matching the paper's rules.
        set.write(PartitionKind::Suffix, 2, KvPair::new(2, 3))
            .unwrap();
        set.write(PartitionKind::Suffix, 6, KvPair::new(6, 4))
            .unwrap();
        let counts = set.finish().unwrap();
        assert_eq!(counts[&3], (1, 1));
        assert_eq!(counts[&4], (0, 0));
        assert_eq!(counts[&5], (1, 0));

        let mut r = s.reader(PartitionKind::Suffix, 5).unwrap();
        assert_eq!(r.read_all().unwrap(), vec![KvPair::new(50, 2)]);
    }

    #[test]
    fn finish_traced_emits_per_length_spill_counters() {
        let (_g, s) = spill();
        let rec = obs::Recorder::new();
        let span = rec.span("map");
        let mut set = PartitionSet::create(&s, 3, 5).unwrap();
        set.write(PartitionKind::Suffix, 3, KvPair::new(30, 0))
            .unwrap();
        set.write(PartitionKind::Suffix, 3, KvPair::new(33, 1))
            .unwrap();
        set.write(PartitionKind::Prefix, 4, KvPair::new(40, 2))
            .unwrap();
        let counts = set.finish_traced(&rec).unwrap();
        drop(span);
        assert_eq!(counts[&3], (2, 0));
        let rollup = obs::Rollup::from_events(&rec.events());
        let node = rollup.root_named("map").unwrap();
        let agg = rollup.subtree(node.id);
        assert_eq!(agg.counter("spill.tuples.sfx_00003"), 2);
        assert_eq!(agg.counter("spill.tuples.pfx_00004"), 1);
        assert_eq!(agg.counter("spill.bytes"), 3 * KvPair::BYTES as u64);
    }

    #[test]
    fn lengths_lists_existing_partitions_sorted() {
        let (_g, s) = spill();
        for len in [9u32, 3, 7] {
            s.writer(PartitionKind::Suffix, len)
                .unwrap()
                .finish()
                .unwrap();
        }
        s.writer(PartitionKind::Prefix, 4)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(s.lengths(PartitionKind::Suffix).unwrap(), vec![3, 7, 9]);
        assert_eq!(s.lengths(PartitionKind::Prefix).unwrap(), vec![4]);
    }

    #[test]
    fn remove_is_idempotent() {
        let (_g, s) = spill();
        s.writer(PartitionKind::Suffix, 5)
            .unwrap()
            .finish()
            .unwrap();
        s.remove(PartitionKind::Suffix, 5).unwrap();
        s.remove(PartitionKind::Suffix, 5).unwrap();
        assert!(s.lengths(PartitionKind::Suffix).unwrap().is_empty());
    }

    #[test]
    fn bad_partition_ranges_are_rejected() {
        let (_g, s) = spill();
        assert!(PartitionSet::create(&s, 5, 5).is_err());
        assert!(PartitionSet::create(&s, 0, 3).is_err());
        assert!(PartitionSet::create_split(&s, 3, 5, 0).is_err());
    }

    #[test]
    fn range_of_slices_the_key_space_contiguously() {
        assert_eq!(range_of(0, 4), 0);
        assert_eq!(range_of(u128::MAX, 4), 3);
        assert_eq!(range_of(1u128 << 126, 4), 1);
        assert_eq!(range_of(3u128 << 126, 4), 3);
        // Single range: everything is range 0.
        assert_eq!(range_of(u128::MAX, 1), 0);
        // Monotone in the key.
        let keys = [0u128, 1 << 100, 1 << 120, u128::MAX / 2, u128::MAX];
        let rs: Vec<u32> = keys.iter().map(|&k| range_of(k, 7)).collect();
        assert!(rs.windows(2).all(|w| w[0] <= w[1]), "{rs:?}");
    }

    #[test]
    fn split_partitions_route_by_key_range() {
        let (_g, s) = spill();
        let mut set = PartitionSet::create_split(&s, 4, 6, 2).unwrap();
        let low = KvPair::new(1, 10);
        let high = KvPair::new(u128::MAX - 1, 20);
        set.write(PartitionKind::Suffix, 4, low).unwrap();
        set.write(PartitionKind::Suffix, 4, high).unwrap();
        let counts = set.finish().unwrap();
        assert_eq!(counts[&4], (2, 0));
        let r0 = s
            .reader_range(PartitionKind::Suffix, 4, 0, 2)
            .unwrap()
            .read_all()
            .unwrap();
        let r1 = s
            .reader_range(PartitionKind::Suffix, 4, 1, 2)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(r0, vec![low]);
        assert_eq!(r1, vec![high]);
    }

    #[test]
    fn create_refuses_nonempty_dirs_without_a_manifest() {
        let dir = tempfile::tempdir().unwrap();
        std::fs::write(dir.path().join("sfx_00041.kv"), b"stale").unwrap();
        let err = SpillDir::create(dir.path(), IoStats::default()).unwrap_err();
        assert!(matches!(err, StreamError::BadConfig(_)), "got {err}");
        // A manifest marks it as a resumable workdir: accepted.
        std::fs::write(dir.path().join(MANIFEST_NAME), b"{}").unwrap();
        assert!(SpillDir::create(dir.path(), IoStats::default()).is_ok());
    }

    #[test]
    fn open_attaches_to_any_directory() {
        let dir = tempfile::tempdir().unwrap();
        std::fs::write(dir.path().join("sfx_00041.kv"), b"whatever").unwrap();
        assert!(SpillDir::open(dir.path(), IoStats::default()).is_ok());
    }

    #[test]
    fn clear_removes_spill_artifacts_but_not_other_files() {
        let (_g, s) = spill();
        s.writer(PartitionKind::Suffix, 5)
            .unwrap()
            .finish()
            .unwrap();
        std::fs::write(s.root().join("scratch_run0.kv.tmp"), b"torn").unwrap();
        std::fs::write(s.root().join(MANIFEST_NAME), b"{}").unwrap();
        s.clear().unwrap();
        assert!(s.lengths(PartitionKind::Suffix).unwrap().is_empty());
        assert!(!s.root().join("scratch_run0.kv.tmp").exists());
        assert!(s.root().join(MANIFEST_NAME).exists());
    }

    #[test]
    fn single_range_split_aliases_plain_paths() {
        let (_g, s) = spill();
        assert_eq!(
            s.path_range(PartitionKind::Prefix, 9, 0, 1),
            s.path(PartitionKind::Prefix, 9)
        );
    }
}
