//! Sequential record readers (the "read-only memory" of Fig. 3).

use crate::iostats::IoStats;
use crate::record::{BlobFooter, Fnv64, Footer, KvPair};
use crate::{Result, StreamError};
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

/// Read a byte blob written by [`crate::writer::write_blob`], validating
/// its [`BlobFooter`] (magic, length, checksum). Every failure names the
/// offending file and surfaces as [`StreamError::Corrupt`], so a torn or
/// bit-flipped store fails loudly before any consumer trusts its bytes.
pub fn read_blob(path: &Path, io: &IoStats) -> Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    if bytes.len() < BlobFooter::BYTES {
        return Err(StreamError::Corrupt(format!(
            "{} has {} bytes, too short for the {}-byte blob footer",
            path.display(),
            bytes.len(),
            BlobFooter::BYTES
        )));
    }
    let tail: [u8; BlobFooter::BYTES] = bytes[bytes.len() - BlobFooter::BYTES..]
        .try_into()
        .expect("footer-sized tail");
    let footer = BlobFooter::decode(&tail).ok_or_else(|| {
        StreamError::Corrupt(format!(
            "{} has no blob footer magic (truncated, torn, or foreign file)",
            path.display()
        ))
    })?;
    bytes.truncate(bytes.len() - BlobFooter::BYTES);
    if footer.len != bytes.len() as u64 {
        return Err(StreamError::Corrupt(format!(
            "{} footer promises {} payload bytes but carries {}",
            path.display(),
            footer.len,
            bytes.len()
        )));
    }
    if footer.checksum != crate::record::fnv1a(&bytes) {
        return Err(StreamError::Corrupt(format!(
            "{} checksum mismatch: footer {:#018x}, payload {:#018x}",
            path.display(),
            footer.checksum,
            crate::record::fnv1a(&bytes)
        )));
    }
    io.add_read(bytes.len() as u64);
    Ok(bytes)
}

/// Read and validate the [`Footer`] of the spill file at `path` without
/// streaming its records (size and magic checks only — drain the file to
/// verify its checksum).
pub fn read_footer(path: &Path) -> Result<Footer> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    load_footer(&mut file, len, path)
}

/// Validate size + magic and return the footer; leaves the cursor at the
/// start of the file.
fn load_footer(file: &mut File, len: u64, path: &Path) -> Result<Footer> {
    if len < Footer::BYTES as u64 {
        return Err(StreamError::Corrupt(format!(
            "{} has {len} bytes, too short for the {}-byte footer",
            path.display(),
            Footer::BYTES
        )));
    }
    file.seek(SeekFrom::End(-(Footer::BYTES as i64)))?;
    let mut buf = [0u8; Footer::BYTES];
    file.read_exact(&mut buf)?;
    let footer = Footer::decode(&buf).ok_or_else(|| {
        StreamError::Corrupt(format!(
            "{} has no spill footer magic (truncated, foreign, or pre-footer file)",
            path.display()
        ))
    })?;
    let data_len = len - Footer::BYTES as u64;
    if footer.records.checked_mul(KvPair::BYTES as u64) != Some(data_len) {
        return Err(StreamError::Corrupt(format!(
            "{} footer promises {} records but carries {data_len} data bytes",
            path.display(),
            footer.records
        )));
    }
    file.seek(SeekFrom::Start(0))?;
    Ok(footer)
}

/// Buffered sequential reader of [`KvPair`] records.
///
/// Only forward chunked reads are offered — the paper's semi-streaming model
/// forbids random access to the read-only memory, and keeping the API this
/// narrow makes that structural property hold by construction.
///
/// The file's [`Footer`] is validated on open (size, magic, record count);
/// the data checksum is accumulated as records stream out and compared when
/// the last record is consumed, so any bit-flip surfaces as
/// [`StreamError::Corrupt`] before downstream phases can trust the data.
/// Callers that stop early can force the comparison with
/// [`RecordReader::verify_to_end`].
pub struct RecordReader {
    inner: BufReader<File>,
    io: IoStats,
    remaining: u64,
    hasher: Fnv64,
    footer: Footer,
    path: std::path::PathBuf,
}

impl RecordReader {
    /// Open `path` and prepare to stream all of its records.
    ///
    /// Fails with [`StreamError::Corrupt`] if the footer is missing or
    /// inconsistent with the file size.
    pub fn open(path: &Path, io: IoStats) -> Result<Self> {
        io.faults()
            .hit(faultsim::READER_OPEN)
            .map_err(StreamError::Fault)?;
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let footer = load_footer(&mut file, len, path)?;
        if footer.records == 0 && footer.checksum != Fnv64::new().finish() {
            return Err(StreamError::Corrupt(format!(
                "{} empty-stream checksum mismatch",
                path.display()
            )));
        }
        Ok(RecordReader {
            inner: BufReader::with_capacity(1 << 16, file),
            io,
            remaining: footer.records,
            hasher: Fnv64::new(),
            footer,
            path: path.to_path_buf(),
        })
    }

    /// Records not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The validated footer (total record count + expected checksum).
    pub fn footer(&self) -> Footer {
        self.footer
    }

    /// Read up to `max` records; returns fewer only at end of stream.
    pub fn next_chunk(&mut self, max: usize) -> Result<Vec<KvPair>> {
        let want = (self.remaining.min(max as u64)) as usize;
        let mut out = Vec::with_capacity(want);
        let mut frame = [0u8; KvPair::BYTES];
        for _ in 0..want {
            self.inner.read_exact(&mut frame).map_err(|e| {
                StreamError::Corrupt(format!(
                    "{} short read mid-record: {e}",
                    self.path.display()
                ))
            })?;
            self.hasher.update(&frame);
            out.push(KvPair::decode(&frame));
        }
        self.remaining -= want as u64;
        self.io.add_read((want * KvPair::BYTES) as u64);
        if self.remaining == 0 && self.hasher.finish() != self.footer.checksum {
            return Err(StreamError::Corrupt(format!(
                "{} checksum mismatch: footer {:#018x}, data {:#018x}",
                self.path.display(),
                self.footer.checksum,
                self.hasher.finish()
            )));
        }
        Ok(out)
    }

    /// Drain the rest of the stream.
    pub fn read_all(&mut self) -> Result<Vec<KvPair>> {
        self.next_chunk(self.remaining as usize)
    }

    /// Drain any unconsumed records (discarding them) so the checksum
    /// comparison runs even when the consumer stopped early.
    pub fn verify_to_end(&mut self) -> Result<()> {
        while self.remaining > 0 {
            self.next_chunk(1 << 15)?;
        }
        self.next_chunk(0).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::RecordWriter;
    use std::io::Write;

    fn write_pairs(dir: &Path, name: &str, pairs: &[KvPair]) -> std::path::PathBuf {
        let path = dir.join(name);
        let mut w = RecordWriter::create(&path, IoStats::default()).unwrap();
        w.write_all(pairs).unwrap();
        w.finish().unwrap();
        path
    }

    #[test]
    fn reads_back_written_records_in_chunks() {
        let dir = tempfile::tempdir().unwrap();
        let pairs: Vec<KvPair> = (0..10).map(|i| KvPair::new(i as u128, i)).collect();
        let path = write_pairs(dir.path(), "a.bin", &pairs);

        let io = IoStats::default();
        let mut r = RecordReader::open(&path, io.clone()).unwrap();
        assert_eq!(r.remaining(), 10);
        let first = r.next_chunk(3).unwrap();
        assert_eq!(first, pairs[..3]);
        assert_eq!(r.remaining(), 7);
        let rest = r.read_all().unwrap();
        assert_eq!(rest, pairs[3..]);
        assert_eq!(r.remaining(), 0);
        assert!(r.next_chunk(5).unwrap().is_empty());
        assert_eq!(io.snapshot().bytes_read, 10 * KvPair::BYTES as u64);
    }

    #[test]
    fn rejects_files_with_partial_records() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.bin");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[0u8; KvPair::BYTES + 3])
            .unwrap();
        assert!(matches!(
            RecordReader::open(&path, IoStats::default()),
            Err(StreamError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = tempfile::tempdir().unwrap();
        assert!(matches!(
            RecordReader::open(&dir.path().join("nope.bin"), IoStats::default()),
            Err(StreamError::Io(_))
        ));
    }

    #[test]
    fn empty_file_reads_empty() {
        let dir = tempfile::tempdir().unwrap();
        let path = write_pairs(dir.path(), "empty.bin", &[]);
        let mut r = RecordReader::open(&path, IoStats::default()).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.read_all().unwrap().is_empty());
    }

    #[test]
    fn truncation_to_whole_records_is_still_detected() {
        // Pre-footer, a file shortened by exactly one record looked valid.
        let dir = tempfile::tempdir().unwrap();
        let pairs: Vec<KvPair> = (0..4).map(|i| KvPair::new(i as u128, i)).collect();
        let path = write_pairs(dir.path(), "cut.bin", &pairs);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - KvPair::BYTES]).unwrap();
        assert!(matches!(
            RecordReader::open(&path, IoStats::default()),
            Err(StreamError::Corrupt(_))
        ));
    }

    #[test]
    fn any_single_bit_flip_in_the_data_is_detected_on_drain() {
        let dir = tempfile::tempdir().unwrap();
        let pairs: Vec<KvPair> = (0..50).map(|i| KvPair::new(i as u128 * 7, i)).collect();
        let path = write_pairs(dir.path(), "flip.bin", &pairs);
        let clean = std::fs::read(&path).unwrap();
        let data_len = clean.len() - Footer::BYTES;
        for byte in [0usize, data_len / 2, data_len - 1] {
            let mut bytes = clean.clone();
            bytes[byte] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let mut r = RecordReader::open(&path, IoStats::default()).unwrap();
            let err = r.read_all().unwrap_err();
            assert!(matches!(err, StreamError::Corrupt(_)), "byte {byte}: {err}");
        }
    }

    #[test]
    fn verify_to_end_checks_without_consuming_the_caller_side() {
        let dir = tempfile::tempdir().unwrap();
        let pairs: Vec<KvPair> = (0..20).map(|i| KvPair::new(i as u128, i)).collect();
        let path = write_pairs(dir.path(), "partial.bin", &pairs);

        // Clean file: early stop + verify passes.
        let mut r = RecordReader::open(&path, IoStats::default()).unwrap();
        r.next_chunk(5).unwrap();
        r.verify_to_end().unwrap();
        assert_eq!(r.remaining(), 0);

        // Flipped bit beyond the consumed prefix: verify catches it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[15 * KvPair::BYTES] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = RecordReader::open(&path, IoStats::default()).unwrap();
        r.next_chunk(5).unwrap();
        assert!(matches!(r.verify_to_end(), Err(StreamError::Corrupt(_))));
    }

    #[test]
    fn footer_helper_reports_counts_without_draining() {
        let dir = tempfile::tempdir().unwrap();
        let pairs: Vec<KvPair> = (0..6).map(|i| KvPair::new(i as u128, i)).collect();
        let path = write_pairs(dir.path(), "meta.bin", &pairs);
        let footer = read_footer(&path).unwrap();
        assert_eq!(footer.records, 6);
        let mut r = RecordReader::open(&path, IoStats::default()).unwrap();
        assert_eq!(r.footer(), footer);
        r.verify_to_end().unwrap();
    }

    #[test]
    fn injected_open_fault_surfaces_as_fault_error() {
        let dir = tempfile::tempdir().unwrap();
        let path = write_pairs(dir.path(), "armed.bin", &[KvPair::new(1, 1)]);
        let io = IoStats::default();
        io.set_faults(faultsim::Faults::from_plan(
            &faultsim::FaultPlan::new().fail_at(faultsim::READER_OPEN, 2),
        ));
        assert!(RecordReader::open(&path, io.clone()).is_ok());
        assert!(matches!(
            RecordReader::open(&path, io.clone()),
            Err(StreamError::Fault(_))
        ));
        assert!(RecordReader::open(&path, io).is_ok());
    }
}
