//! Sequential record readers (the "read-only memory" of Fig. 3).

use crate::iostats::IoStats;
use crate::record::KvPair;
use crate::{Result, StreamError};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Buffered sequential reader of [`KvPair`] records.
///
/// Only forward chunked reads are offered — the paper's semi-streaming model
/// forbids random access to the read-only memory, and keeping the API this
/// narrow makes that structural property hold by construction.
pub struct RecordReader {
    inner: BufReader<File>,
    io: IoStats,
    remaining: u64,
}

impl RecordReader {
    /// Open `path` and prepare to stream all of its records.
    ///
    /// Fails with [`StreamError::Corrupt`] if the file size is not a
    /// multiple of the record size.
    pub fn open(path: &Path, io: IoStats) -> Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len % KvPair::BYTES as u64 != 0 {
            return Err(StreamError::Corrupt(format!(
                "{} has {len} bytes, not a multiple of the {}-byte record",
                path.display(),
                KvPair::BYTES
            )));
        }
        Ok(RecordReader {
            inner: BufReader::with_capacity(1 << 16, file),
            io,
            remaining: len / KvPair::BYTES as u64,
        })
    }

    /// Records not yet consumed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Read up to `max` records; returns fewer only at end of stream.
    pub fn next_chunk(&mut self, max: usize) -> Result<Vec<KvPair>> {
        let want = (self.remaining.min(max as u64)) as usize;
        let mut out = Vec::with_capacity(want);
        let mut frame = [0u8; KvPair::BYTES];
        for _ in 0..want {
            self.inner
                .read_exact(&mut frame)
                .map_err(|e| StreamError::Corrupt(format!("short read mid-record: {e}")))?;
            out.push(KvPair::decode(&frame));
        }
        self.remaining -= want as u64;
        self.io.add_read((want * KvPair::BYTES) as u64);
        Ok(out)
    }

    /// Drain the rest of the stream.
    pub fn read_all(&mut self) -> Result<Vec<KvPair>> {
        self.next_chunk(self.remaining as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::RecordWriter;
    use std::io::Write;

    fn write_pairs(dir: &Path, name: &str, pairs: &[KvPair]) -> std::path::PathBuf {
        let path = dir.join(name);
        let mut w = RecordWriter::create(&path, IoStats::default()).unwrap();
        w.write_all(pairs).unwrap();
        w.finish().unwrap();
        path
    }

    #[test]
    fn reads_back_written_records_in_chunks() {
        let dir = tempfile::tempdir().unwrap();
        let pairs: Vec<KvPair> = (0..10).map(|i| KvPair::new(i as u128, i)).collect();
        let path = write_pairs(dir.path(), "a.bin", &pairs);

        let io = IoStats::default();
        let mut r = RecordReader::open(&path, io.clone()).unwrap();
        assert_eq!(r.remaining(), 10);
        let first = r.next_chunk(3).unwrap();
        assert_eq!(first, pairs[..3]);
        assert_eq!(r.remaining(), 7);
        let rest = r.read_all().unwrap();
        assert_eq!(rest, pairs[3..]);
        assert_eq!(r.remaining(), 0);
        assert!(r.next_chunk(5).unwrap().is_empty());
        assert_eq!(io.snapshot().bytes_read, 10 * KvPair::BYTES as u64);
    }

    #[test]
    fn rejects_files_with_partial_records() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.bin");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[0u8; KvPair::BYTES + 3])
            .unwrap();
        assert!(matches!(
            RecordReader::open(&path, IoStats::default()),
            Err(StreamError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = tempfile::tempdir().unwrap();
        assert!(matches!(
            RecordReader::open(&dir.path().join("nope.bin"), IoStats::default()),
            Err(StreamError::Io(_))
        ));
    }

    #[test]
    fn empty_file_reads_empty() {
        let dir = tempfile::tempdir().unwrap();
        let path = write_pairs(dir.path(), "empty.bin", &[]);
        let mut r = RecordReader::open(&path, IoStats::default()).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.read_all().unwrap().is_empty());
    }
}
