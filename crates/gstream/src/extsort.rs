//! Hybrid-memory external sort — the paper's Section III-B.
//!
//! Sorting proceeds in two levels, mirroring the "sorting in hybrid-memory"
//! optimization:
//!
//! 1. **Disk ↔ host**: blocks of `m_h` pairs are read from disk, sorted in
//!    host memory, and written back as runs; the runs are then merged
//!    pairwise with [`windowed_merge`] (Algorithm 1) until one remains.
//!    Disk passes = `1 + ceil(log2(runs))`, which is the
//!    `1 + log(n / m_h)` the paper reports.
//! 2. **Host ↔ device**: sorting a host block streams chunks of `m_d`
//!    pairs to the device for radix sorting, then merges the sorted chunks
//!    (again Algorithm 1, with `M = m_d`) entirely in host memory.
//!
//! Without the host level (`m_h = m_d`), every merge pass is a disk pass —
//! the single-level strawman the paper improves on by a factor of
//! `log2(m_h / m_d)` (~3-4×). The `sort_levels` ablation bench measures
//! exactly this difference.

use crate::hostmem::HostMem;
use crate::iostats::IoSnapshot;
use crate::merge::{device_merge, windowed_merge, SliceSource, VecSink};
use crate::reader::RecordReader;
use crate::record::{split_pairs, zip_pairs, KvPair};
use crate::spill::SpillDir;
use crate::writer::RecordWriter;
use crate::{Result, StreamError};
use serde::{Deserialize, Serialize};
use vgpu::Device;

/// Block sizes for the two-level sort, in *pairs*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortConfig {
    /// Host block-size m_h: pairs per disk-level run.
    pub host_block_pairs: usize,
    /// Device block-size m_d: pairs resident on the device at once.
    pub device_block_pairs: usize,
    /// Merge runs with a single k-way pass instead of the paper's pairwise
    /// doubling (an ablation: cuts merge passes from `log2(runs)` to 1 at
    /// the cost of smaller per-run windows).
    #[serde(default)]
    pub kway: bool,
}

impl SortConfig {
    /// Derive the largest feasible configuration from the memory budgets:
    /// a host block plus its merge output must fit in host memory
    /// (`m_h = host / (2 · 20 B)`), and a device chunk plus its radix
    /// scratch must fit on the device (`m_d = device / (2 · 20 B)`).
    pub fn from_budgets(host: &HostMem, device: &Device) -> Self {
        let host_block_pairs = (host.capacity() as usize / KvPair::BYTES / 2).max(2);
        // A scaled-down host budget can undercut the device: the device can
        // never hold more pairs at once than the host streams to it.
        let device_block_pairs = (device.capacity() as usize / 40 / 2)
            .max(2)
            .min(host_block_pairs);
        SortConfig {
            host_block_pairs,
            device_block_pairs,
            kway: false,
        }
    }

    /// Check feasibility against the actual budgets.
    pub fn validate(&self, host: &HostMem, device: &Device) -> Result<()> {
        if self.device_block_pairs < 2 || self.host_block_pairs < 2 {
            return Err(StreamError::BadConfig(
                "block sizes must be at least 2 pairs".into(),
            ));
        }
        if self.device_block_pairs > self.host_block_pairs {
            return Err(StreamError::BadConfig(format!(
                "device block ({}) larger than host block ({})",
                self.device_block_pairs, self.host_block_pairs
            )));
        }
        // A device chunk occupies 20 B/pair; radix sort doubles it.
        let dev_need = self.device_block_pairs as u64 * 40;
        if dev_need > device.capacity() {
            return Err(StreamError::BadConfig(format!(
                "device block of {} pairs needs {dev_need} B, device has {} B",
                self.device_block_pairs,
                device.capacity()
            )));
        }
        let host_need = self.host_block_pairs as u64 * KvPair::BYTES as u64 * 2;
        if host_need > host.capacity() {
            return Err(StreamError::BadConfig(format!(
                "host block of {} pairs needs {host_need} B, budget is {} B",
                self.host_block_pairs,
                host.capacity()
            )));
        }
        Ok(())
    }
}

/// Outcome of one external sort.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SortReport {
    /// Pairs sorted.
    pub pairs: u64,
    /// Runs produced by the block-sort pass.
    pub initial_runs: u32,
    /// Disk-level merge passes performed after the block pass.
    pub merge_passes: u32,
    /// Total disk passes over the data (`1 + merge_passes`).
    pub disk_passes: u32,
    /// I/O performed (bytes and modeled seconds).
    pub io: IoSnapshot,
    /// Modeled device seconds (kernels + transfers).
    pub device_seconds: f64,
}

/// The two-level external sorter.
pub struct ExternalSorter {
    device: Device,
    host: HostMem,
    config: SortConfig,
    recorder: obs::Recorder,
}

impl ExternalSorter {
    /// Build a sorter; the configuration is validated against the budgets.
    pub fn new(device: Device, host: HostMem, config: SortConfig) -> Result<Self> {
        config.validate(&host, &device)?;
        Ok(ExternalSorter {
            device,
            host,
            config,
            recorder: obs::Recorder::disabled(),
        })
    }

    /// Attach a recorder: each [`ExternalSorter::sort_file`] emits `sort.*`
    /// counters (pairs, runs, merge/disk passes, spilled bytes) on the
    /// recorder's current span.
    pub fn with_recorder(mut self, recorder: obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> SortConfig {
        self.config
    }

    fn emit_report(&self, report: &SortReport) {
        let rec = &self.recorder;
        if !rec.is_enabled() {
            return;
        }
        rec.counter("sort.pairs", report.pairs);
        rec.counter("sort.initial_runs", u64::from(report.initial_runs));
        rec.counter("sort.merge_passes", u64::from(report.merge_passes));
        rec.counter("sort.disk_passes", u64::from(report.disk_passes));
        rec.counter("sort.spill_bytes", report.io.bytes_written);
        rec.metric("sort.io_seconds", report.io.total_seconds());
        rec.metric("sort.device_seconds", report.device_seconds);
    }

    /// Sort one host block in memory by streaming `m_d`-sized chunks
    /// through the device (radix sort per chunk, then iterative pairwise
    /// Algorithm-1 merging of the sorted chunks).
    pub fn sort_block(&self, mut pairs: Vec<KvPair>) -> Result<Vec<KvPair>> {
        let m_d = self.config.device_block_pairs;
        // Device-sort each chunk in place.
        let mut runs: Vec<Vec<KvPair>> = Vec::with_capacity(pairs.len() / m_d + 1);
        while !pairs.is_empty() {
            let rest = pairs.split_off(pairs.len().min(m_d));
            let chunk = std::mem::replace(&mut pairs, rest);
            let (keys, vals) = split_pairs(&chunk);
            drop(chunk);
            let mut dk = self.device.h2d(&keys)?;
            let mut dv = self.device.h2d(&vals)?;
            drop((keys, vals));
            self.device.sort_pairs(&mut dk, &mut dv)?;
            runs.push(zip_pairs(self.device.d2h(&dk), self.device.d2h(&dv)));
        }
        // Iterative pairwise merging, doubling run length each round.
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len() / 2 + 1);
            let mut iter = runs.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => {
                        let _guard = self
                            .host
                            .reserve(((a.len() + b.len()) * KvPair::BYTES) as u64)?;
                        next.push(device_merge(&self.device, &a, &b, m_d)?);
                    }
                    None => next.push(a),
                }
            }
            runs = next;
        }
        Ok(runs.pop().unwrap_or_default())
    }

    /// Durably write one sorted run, retrying once after ENOSPC.
    ///
    /// A full disk mid-sort is recoverable exactly once: the failed commit
    /// already shed its partial scratch (`RecordWriter` deletes its temp
    /// file on any failed finish), so the retry starts from a clean slate
    /// with the shed bytes reclaimed. A second ENOSPC means the disk is
    /// genuinely full and the error propagates (`Io` / `StorageFull`,
    /// CLI exit code 5).
    fn write_run(&self, spill: &SpillDir, path: &std::path::Path, pairs: &[KvPair]) -> Result<()> {
        let mut retried = false;
        loop {
            let mut w = RecordWriter::create(path, spill.io().clone())?;
            w.write_all(pairs)?;
            match w.finish() {
                Ok(_) => return Ok(()),
                Err(StreamError::Io(e))
                    if e.kind() == std::io::ErrorKind::StorageFull && !retried =>
                {
                    spill.io().faults().record_retry(faultsim::DISK_FULL);
                    retried = true;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Externally sort `input` into `output`, spilling runs into `spill`.
    pub fn sort_file(
        &self,
        spill: &SpillDir,
        input: &std::path::Path,
        output: &std::path::Path,
    ) -> Result<SortReport> {
        let io_before = spill.io().snapshot();
        let dev_before = self.device.stats();
        let m_h = self.config.host_block_pairs;

        // Pass 1: block sort into runs.
        let mut reader = RecordReader::open(input, spill.io().clone())?;
        let total_pairs = reader.remaining();
        let mut run_paths = Vec::new();
        let mut run_idx = 0u32;
        loop {
            let _block_guard = self
                .host
                .reserve((m_h * KvPair::BYTES) as u64)
                .map_err(StreamError::from)?;
            let block = reader.next_chunk(m_h)?;
            if block.is_empty() {
                break;
            }
            let sorted = self.sort_block(block)?;
            let path = spill.scratch_path(&format!("run{run_idx}"));
            self.write_run(spill, &path, &sorted)?;
            run_paths.push(path);
            run_idx += 1;
        }
        let initial_runs = run_paths.len() as u32;

        // Handle the empty input: still produce an (empty) output file.
        if run_paths.is_empty() {
            RecordWriter::create(output, spill.io().clone())?.finish()?;
            let report = SortReport {
                pairs: 0,
                initial_runs: 0,
                merge_passes: 0,
                disk_passes: 1,
                io: spill.io().snapshot().since(&io_before),
                device_seconds: self.device.stats().since(&dev_before).total_seconds(),
            };
            self.emit_report(&report);
            return Ok(report);
        }

        // Pass 2..k: external merging until a single run remains. Each
        // round reads and writes all data once. The paper's scheme merges
        // pairwise (run length doubles per pass); the k-way ablation
        // drains as many runs per pass as the window budget allows.
        let fan_in = if self.config.kway {
            (m_h / 4).max(2) // ≥2 pairs of window per source
        } else {
            2
        };
        let mut merge_passes = 0u32;
        let mut gen = 0u32;
        while run_paths.len() > 1 {
            let _window_guard = self
                .host
                .reserve((m_h * KvPair::BYTES) as u64)
                .map_err(StreamError::from)?;
            let mut next_paths = Vec::with_capacity(run_paths.len() / fan_in + 1);
            let mut out_idx = 0u32;
            for group in run_paths.chunks(fan_in) {
                if group.len() == 1 {
                    next_paths.push(group[0].clone());
                    continue;
                }
                let out_path = spill.scratch_path(&format!("gen{gen}_m{out_idx}"));
                let mut readers: Vec<RecordReader> = group
                    .iter()
                    .map(|p| RecordReader::open(p, spill.io().clone()))
                    .collect::<Result<_>>()?;
                let mut w = RecordWriter::create(&out_path, spill.io().clone())?;
                if group.len() == 2 {
                    let (left, right) = readers.split_at_mut(1);
                    windowed_merge(
                        &self.device,
                        &mut left[0],
                        &mut right[0],
                        &mut w,
                        m_h,
                        self.config.device_block_pairs,
                    )?;
                } else {
                    let mut dyns: Vec<&mut dyn crate::merge::PairSource> = readers
                        .iter_mut()
                        .map(|r| r as &mut dyn crate::merge::PairSource)
                        .collect();
                    crate::merge::kway_merge(
                        &self.device,
                        &mut dyns,
                        &mut w,
                        m_h,
                        self.config.device_block_pairs,
                    )?;
                }
                w.finish()?;
                for p in group {
                    std::fs::remove_file(p)?;
                }
                next_paths.push(out_path);
                out_idx += 1;
            }
            run_paths = next_paths;
            merge_passes += 1;
            gen += 1;
        }

        let last = run_paths.pop().expect("at least one run");
        // Rename may cross devices in odd setups; fall back to copy.
        if std::fs::rename(&last, output).is_err() {
            std::fs::copy(&last, output)?;
            std::fs::remove_file(&last)?;
        }

        let report = SortReport {
            pairs: total_pairs,
            initial_runs,
            merge_passes,
            disk_passes: 1 + merge_passes,
            io: spill.io().snapshot().since(&io_before),
            device_seconds: self.device.stats().since(&dev_before).total_seconds(),
        };
        self.emit_report(&report);
        Ok(report)
    }

    /// In-memory convenience: sort a vec of pairs under the same budgets
    /// (used for sorting the small per-batch tuple lists of the map phase).
    pub fn sort_in_memory(&self, pairs: Vec<KvPair>) -> Result<Vec<KvPair>> {
        let m_h = self.config.host_block_pairs;
        if pairs.len() <= m_h {
            return self.sort_block(pairs);
        }
        // Block-sort pieces, then merge them in memory.
        let mut runs = Vec::new();
        let mut rest = pairs;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(m_h));
            let block = std::mem::replace(&mut rest, tail);
            runs.push(self.sort_block(block)?);
        }
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len() / 2 + 1);
            let mut iter = runs.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => {
                        let mut sink = VecSink::default();
                        windowed_merge(
                            &self.device,
                            &mut SliceSource::new(&a),
                            &mut SliceSource::new(&b),
                            &mut sink,
                            m_h,
                            self.config.device_block_pairs,
                        )?;
                        next.push(sink.out);
                    }
                    None => next.push(a),
                }
            }
            runs = next;
        }
        Ok(runs.pop().unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iostats::IoStats;
    use proptest::prelude::*;
    use vgpu::GpuProfile;

    fn setup(host_bytes: u64, dev_bytes: u64) -> (tempfile::TempDir, SpillDir, ExternalSorter) {
        let dir = tempfile::tempdir().unwrap();
        let spill = SpillDir::create(dir.path(), IoStats::default()).unwrap();
        let device = Device::with_capacity(GpuProfile::k40(), dev_bytes);
        let host = HostMem::new(host_bytes);
        let config = SortConfig::from_budgets(&host, &device);
        let sorter = ExternalSorter::new(device, host, config).unwrap();
        (dir, spill, sorter)
    }

    fn write_input(spill: &SpillDir, pairs: &[KvPair]) -> std::path::PathBuf {
        let path = spill.scratch_path("input");
        let mut w = RecordWriter::create(&path, spill.io().clone()).unwrap();
        w.write_all(pairs).unwrap();
        w.finish().unwrap();
        path
    }

    fn read_output(spill: &SpillDir, path: &std::path::Path) -> Vec<KvPair> {
        RecordReader::open(path, spill.io().clone())
            .unwrap()
            .read_all()
            .unwrap()
    }

    #[test]
    fn single_pass_when_everything_fits() {
        let (_g, spill, sorter) = setup(100_000, 100_000);
        let pairs: Vec<KvPair> = (0..100u32)
            .rev()
            .map(|i| KvPair::new(i as u128, i))
            .collect();
        let input = write_input(&spill, &pairs);
        let output = spill.scratch_path("out");
        let report = sorter.sort_file(&spill, &input, &output).unwrap();
        assert_eq!(report.pairs, 100);
        assert_eq!(report.initial_runs, 1);
        assert_eq!(report.disk_passes, 1);
        let got = read_output(&spill, &output);
        let keys: Vec<u128> = got.iter().map(|p| p.key).collect();
        assert_eq!(keys, (0..100).collect::<Vec<u128>>());
    }

    #[test]
    fn multi_run_merge_produces_sorted_output_and_counts_passes() {
        // Host holds 2*m_h*20 bytes => m_h = 25 pairs; 100 pairs => 4 runs
        // => 2 merge passes => 3 disk passes.
        let (_g, spill, sorter) = setup(1000, 400);
        assert_eq!(sorter.config().host_block_pairs, 25);
        let pairs: Vec<KvPair> = (0..100u32)
            .rev()
            .map(|i| KvPair::new(i as u128, i))
            .collect();
        let input = write_input(&spill, &pairs);
        let output = spill.scratch_path("out");
        let report = sorter.sort_file(&spill, &input, &output).unwrap();
        assert_eq!(report.initial_runs, 4);
        assert_eq!(report.merge_passes, 2);
        assert_eq!(report.disk_passes, 3);
        let got = read_output(&spill, &output);
        assert!(got.windows(2).all(|w| w[0].key <= w[1].key));
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn smaller_host_blocks_mean_more_disk_bytes() {
        let pairs: Vec<KvPair> = (0..256u32)
            .rev()
            .map(|i| KvPair::new(i as u128, i))
            .collect();

        let (_g1, spill_big, big) = setup(20_480, 2_000);
        let in1 = write_input(&spill_big, &pairs);
        let out1 = spill_big.scratch_path("o1");
        let r_big = big.sort_file(&spill_big, &in1, &out1).unwrap();

        let (_g2, spill_small, small) = setup(1_280, 1_280);
        let in2 = write_input(&spill_small, &pairs);
        let out2 = spill_small.scratch_path("o2");
        let r_small = small.sort_file(&spill_small, &in2, &out2).unwrap();

        assert!(r_small.disk_passes > r_big.disk_passes);
        assert!(r_small.io.bytes_read > r_big.io.bytes_read);
        assert_eq!(
            read_output(&spill_big, &out1),
            read_output(&spill_small, &out2)
        );
    }

    #[test]
    fn empty_input_yields_empty_sorted_output() {
        let (_g, spill, sorter) = setup(1000, 400);
        let input = write_input(&spill, &[]);
        let output = spill.scratch_path("out");
        let report = sorter.sort_file(&spill, &input, &output).unwrap();
        assert_eq!(report.pairs, 0);
        assert!(read_output(&spill, &output).is_empty());
    }

    #[test]
    fn sort_file_emits_counters_matching_its_report() {
        let (_g, spill, sorter) = setup(1000, 400);
        let rec = obs::Recorder::new();
        let sorter = sorter.with_recorder(rec.clone());
        let pairs: Vec<KvPair> = (0..100u32)
            .rev()
            .map(|i| KvPair::new(i as u128, i))
            .collect();
        let input = write_input(&spill, &pairs);
        let output = spill.scratch_path("out");
        let span = rec.span("sfx_00005");
        let report = sorter.sort_file(&spill, &input, &output).unwrap();
        drop(span);
        let rollup = obs::Rollup::from_events(&rec.events());
        let node = rollup.root_named("sfx_00005").unwrap();
        let agg = rollup.subtree(node.id);
        assert_eq!(agg.counter("sort.pairs"), report.pairs);
        assert_eq!(
            agg.counter("sort.initial_runs"),
            u64::from(report.initial_runs)
        );
        assert_eq!(
            agg.counter("sort.merge_passes"),
            u64::from(report.merge_passes)
        );
        assert_eq!(
            agg.counter("sort.disk_passes"),
            u64::from(report.disk_passes)
        );
        assert_eq!(agg.counter("sort.spill_bytes"), report.io.bytes_written);
        assert_eq!(agg.metric("sort.io_seconds"), report.io.total_seconds());
    }

    #[test]
    fn disk_full_mid_sort_sheds_scratch_and_retries_once() {
        let (_g, spill, sorter) = setup(1000, 400); // m_h = 25 → several runs
        let rec = obs::Recorder::new();
        let faults = faultsim::Faults::from_plan(
            &faultsim::FaultPlan::new().fail_at(faultsim::DISK_FULL, 2),
        );
        faults.set_recorder(rec.clone());
        spill.io().set_faults(faults.clone());
        let span = rec.span("sort");
        let pairs: Vec<KvPair> = (0..100u32)
            .rev()
            .map(|i| KvPair::new(i as u128, i))
            .collect();
        let input = write_input(&spill, &pairs);
        let output = spill.scratch_path("out");
        let report = sorter.sort_file(&spill, &input, &output).unwrap();
        drop(span);
        assert_eq!(report.pairs, 100);
        let got = read_output(&spill, &output);
        assert!(got.windows(2).all(|w| w[0].key <= w[1].key));
        assert_eq!(got.len(), 100);
        // The ENOSPC fired, the shed scratch was retried, and both are
        // visible in the trace.
        assert_eq!(faults.injected().len(), 1);
        let rollup = obs::Rollup::from_events(&rec.events());
        let root = rollup.root_named("sort").unwrap();
        let agg = rollup.subtree(root.id);
        assert_eq!(agg.counter("fault.injected.disk.full"), 1);
        assert_eq!(agg.counter("fault.retries.disk.full"), 1);
    }

    #[test]
    fn disk_full_twice_on_the_same_run_propagates_storage_full() {
        let (_g, spill, sorter) = setup(1000, 400);
        // Arm consecutive commits: the shed-and-retry hits ENOSPC again.
        spill.io().set_faults(faultsim::Faults::from_plan(
            &faultsim::FaultPlan::new()
                .fail_at(faultsim::DISK_FULL, 2)
                .fail_at(faultsim::DISK_FULL, 3),
        ));
        let pairs: Vec<KvPair> = (0..100u32)
            .rev()
            .map(|i| KvPair::new(i as u128, i))
            .collect();
        let input = write_input(&spill, &pairs);
        let output = spill.scratch_path("out");
        let err = sorter.sort_file(&spill, &input, &output).unwrap_err();
        match err {
            StreamError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::StorageFull),
            other => panic!("expected Io(StorageFull), got {other}"),
        }
        // Nothing torn is left behind: no temp files, no final output.
        assert!(!output.exists());
        let leftovers: Vec<String> = std::fs::read_dir(spill.root())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "torn temp files: {leftovers:?}");
    }

    #[test]
    fn config_validation_rejects_infeasible_blocks() {
        let device = Device::with_capacity(GpuProfile::k40(), 100);
        let host = HostMem::new(1000);
        let bad_dev = SortConfig {
            host_block_pairs: 10,
            device_block_pairs: 5, // needs 200 B on a 100 B device
            kway: false,
        };
        assert!(bad_dev.validate(&host, &device).is_err());
        let bad_rel = SortConfig {
            host_block_pairs: 2,
            device_block_pairs: 4,
            kway: false,
        };
        assert!(bad_rel.validate(&host, &device).is_err());
        let bad_host = SortConfig {
            host_block_pairs: 1000, // needs 40 KB of host budget
            device_block_pairs: 2,
            kway: false,
        };
        assert!(bad_host.validate(&host, &device).is_err());
    }

    #[test]
    fn from_budgets_matches_documented_formulas() {
        let device = Device::with_capacity(GpuProfile::k40(), 4000);
        let host = HostMem::new(8000);
        let cfg = SortConfig::from_budgets(&host, &device);
        assert_eq!(cfg.host_block_pairs, 8000 / 20 / 2);
        assert_eq!(cfg.device_block_pairs, 4000 / 40 / 2);
        cfg.validate(&host, &device).unwrap();
    }

    #[test]
    fn sort_in_memory_handles_oversized_input() {
        let (_g, _spill, sorter) = setup(1000, 400); // m_h = 25
        let pairs: Vec<KvPair> = (0..90u32)
            .rev()
            .map(|i| KvPair::new(i as u128, i))
            .collect();
        let got = sorter.sort_in_memory(pairs).unwrap();
        let keys: Vec<u128> = got.iter().map(|p| p.key).collect();
        assert_eq!(keys, (0..90).collect::<Vec<u128>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn external_sort_matches_std_sort(
            keys in prop::collection::vec(any::<u128>(), 0..400),
            host_bytes in 800u64..4000,
        ) {
            let (_g, spill, sorter) = setup(host_bytes, 800);
            let pairs: Vec<KvPair> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| KvPair::new(k, i as u32))
                .collect();
            let input = write_input(&spill, &pairs);
            let output = spill.scratch_path("out");
            sorter.sort_file(&spill, &input, &output).unwrap();
            let got: Vec<u128> = read_output(&spill, &output).iter().map(|p| p.key).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}

#[cfg(test)]
mod kway_tests {
    use super::*;
    use crate::iostats::IoStats;
    use vgpu::GpuProfile;

    fn sort_with(kway: bool, n: u32, host_bytes: u64) -> (Vec<u128>, SortReport) {
        let dir = tempfile::tempdir().unwrap();
        let spill = SpillDir::create(dir.path(), IoStats::default()).unwrap();
        let device = Device::with_capacity(GpuProfile::k40(), 4 << 10);
        let host = HostMem::new(host_bytes);
        let mut config = SortConfig::from_budgets(&host, &device);
        config.kway = kway;
        let sorter = ExternalSorter::new(device, host, config).unwrap();

        let input = spill.scratch_path("in");
        let mut w = RecordWriter::create(&input, spill.io().clone()).unwrap();
        for i in (0..n).rev() {
            w.write(KvPair::new(i as u128 * 977 % 1009, i)).unwrap();
        }
        w.finish().unwrap();
        let output = spill.scratch_path("out");
        let report = sorter.sort_file(&spill, &input, &output).unwrap();
        let got = RecordReader::open(&output, spill.io().clone())
            .unwrap()
            .read_all()
            .unwrap()
            .iter()
            .map(|p| p.key)
            .collect();
        (got, report)
    }

    #[test]
    fn kway_sorts_identically_with_fewer_passes() {
        // 1 KB host budget → m_h = 25 pairs; 400 pairs → 16 runs:
        // pairwise needs 4 merge passes, k-way one (fan-in 25/4 = 6 → 16
        // runs → 3 groups → second pass → 1). Still fewer.
        let (pairwise, rp) = sort_with(false, 400, 1000);
        let (kway, rk) = sort_with(true, 400, 1000);
        assert_eq!(pairwise, kway);
        assert!(pairwise.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            rk.merge_passes < rp.merge_passes,
            "k-way {} vs pairwise {}",
            rk.merge_passes,
            rp.merge_passes
        );
        assert!(rk.io.bytes_read < rp.io.bytes_read);
    }

    #[test]
    fn kway_single_run_is_still_one_pass() {
        let (sorted, report) = sort_with(true, 20, 4000);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(report.disk_passes, 1);
    }
}
