//! Host-memory budget accounting.
//!
//! The paper's host block-size m_h is bounded by the machine's RAM (128 GB
//! on QueenBee II, 64 GB on SuperMic), and Tables IV/V report peak host
//! memory per phase. This tracker plays the role of the host allocator at
//! the scaled-down sizes: reservations beyond the budget fail, and the peak
//! watermark feeds the Table IV/V reproduction.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error returned when a reservation would exceed the host budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMemError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes already reserved.
    pub in_use: u64,
    /// Budget in bytes.
    pub capacity: u64,
}

impl fmt::Display for HostMemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "host memory budget exceeded: requested {} B with {} B in use of {} B",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for HostMemError {}

/// A shared host-memory budget. Clones share the same accounting.
#[derive(Debug, Clone)]
pub struct HostMem {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    capacity: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl HostMem {
    /// A budget of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        HostMem {
            inner: Arc::new(Inner {
                capacity,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            }),
        }
    }

    /// The configured budget.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-watermark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Rebase the peak to the current usage (between pipeline phases).
    pub fn reset_peak(&self) {
        self.inner.peak.store(self.used(), Ordering::Relaxed);
    }

    /// Reserve `bytes`, returning an RAII guard that releases on drop.
    pub fn reserve(&self, bytes: u64) -> Result<HostAlloc, HostMemError> {
        let mut current = self.inner.used.load(Ordering::Relaxed);
        loop {
            let next = current + bytes;
            if next > self.inner.capacity {
                return Err(HostMemError {
                    requested: bytes,
                    in_use: current,
                    capacity: self.inner.capacity,
                });
            }
            match self.inner.used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(HostAlloc {
                        bytes,
                        owner: Arc::clone(&self.inner),
                    });
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Number of `elem_bytes`-sized records that fit in the *whole* budget.
    pub fn elements_that_fit(&self, elem_bytes: usize) -> usize {
        (self.inner.capacity as usize) / elem_bytes.max(1)
    }
}

/// RAII reservation against a [`HostMem`] budget.
#[derive(Debug)]
pub struct HostAlloc {
    bytes: u64,
    owner: Arc<Inner>,
}

impl HostAlloc {
    /// Size of this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for HostAlloc {
    fn drop(&mut self) {
        self.owner.used.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_track_usage() {
        let mem = HostMem::new(100);
        let a = mem.reserve(60).unwrap();
        assert_eq!(mem.used(), 60);
        drop(a);
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.peak(), 60);
    }

    #[test]
    fn over_budget_reservation_fails_with_context() {
        let mem = HostMem::new(100);
        let _a = mem.reserve(80).unwrap();
        let err = mem.reserve(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.capacity, 100);
    }

    #[test]
    fn peak_tracks_concurrent_high_water() {
        let mem = HostMem::new(1000);
        let a = mem.reserve(400).unwrap();
        let b = mem.reserve(500).unwrap();
        drop(a);
        drop(b);
        assert_eq!(mem.peak(), 900);
        mem.reset_peak();
        assert_eq!(mem.peak(), 0);
    }

    #[test]
    fn elements_that_fit_divides_capacity() {
        let mem = HostMem::new(100);
        assert_eq!(mem.elements_that_fit(20), 5);
        assert_eq!(mem.elements_that_fit(0), 100); // degenerate guard
    }

    #[test]
    fn clones_share_budget() {
        let mem = HostMem::new(10);
        let clone = mem.clone();
        let _a = clone.reserve(10).unwrap();
        assert!(mem.reserve(1).is_err());
    }
}
