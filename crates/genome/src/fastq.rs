//! FASTA and FASTQ I/O.
//!
//! The paper's datasets arrive as Illumina FASTQ; contigs leave as FASTA.
//! Parsing is buffered and line-oriented; records with ambiguous bases (`N`)
//! are rejected rather than silently mangled — synthetic inputs never
//! contain them and real pipelines filter them in preprocessing.

use crate::seq::PackedSeq;
use crate::{GenomeError, Result};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Parse a FASTA file into `(header, sequence)` records. Multi-line
/// sequences are concatenated.
pub fn read_fasta(path: &Path) -> Result<Vec<(String, PackedSeq)>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out: Vec<(String, PackedSeq)> = Vec::new();
    let mut current: Option<(String, String)> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some((h, s)) = current.take() {
                out.push((h, parse_seq(&s, lineno)?));
            }
            current = Some((header.to_string(), String::new()));
        } else {
            match current.as_mut() {
                Some((_, s)) => s.push_str(line),
                None => {
                    return Err(GenomeError::Parse(format!(
                        "line {}: sequence data before any FASTA header",
                        lineno + 1
                    )))
                }
            }
        }
    }
    if let Some((h, s)) = current {
        out.push((h, parse_seq(&s, 0)?));
    }
    Ok(out)
}

/// Write `(header, sequence)` records as FASTA, wrapping at 70 columns.
pub fn write_fasta<'a, I>(path: &Path, records: I) -> Result<()>
where
    I: IntoIterator<Item = (&'a str, &'a PackedSeq)>,
{
    let mut w = BufWriter::new(File::create(path)?);
    for (header, seq) in records {
        writeln!(w, ">{header}")?;
        let s = seq.to_string();
        for chunk in s.as_bytes().chunks(70) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Parse a FASTQ file into `(name, sequence)` records; quality strings are
/// validated for length and discarded.
pub fn read_fastq(path: &Path) -> Result<Vec<(String, PackedSeq)>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(out);
        }
        lineno += 1;
        let name_line = line.trim_end().to_string();
        let name = name_line.strip_prefix('@').ok_or_else(|| {
            GenomeError::Parse(format!(
                "line {lineno}: expected '@name', got {name_line:?}"
            ))
        })?;
        let name = name.to_string();

        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(GenomeError::Parse(format!(
                "line {lineno}: record {name:?} truncated before sequence"
            )));
        }
        lineno += 1;
        let seq = parse_seq(line.trim_end(), lineno)?;

        line.clear();
        if reader.read_line(&mut line)? == 0 || !line.starts_with('+') {
            return Err(GenomeError::Parse(format!(
                "line {}: expected '+' separator in record {name:?}",
                lineno + 1
            )));
        }
        lineno += 1;

        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(GenomeError::Parse(format!(
                "line {lineno}: record {name:?} truncated before quality"
            )));
        }
        lineno += 1;
        let qual_len = line.trim_end().len();
        if qual_len != seq.len() {
            return Err(GenomeError::Parse(format!(
                "line {lineno}: quality length {qual_len} differs from sequence length {}",
                seq.len()
            )));
        }
        out.push((name, seq));
    }
}

/// Write reads as FASTQ with a constant placeholder quality.
pub fn write_fastq<'a, I>(path: &Path, records: I) -> Result<()>
where
    I: IntoIterator<Item = (&'a str, &'a PackedSeq)>,
{
    let mut w = BufWriter::new(File::create(path)?);
    for (name, seq) in records {
        writeln!(w, "@{name}")?;
        writeln!(w, "{seq}")?;
        writeln!(w, "+")?;
        for _ in 0..seq.len() {
            w.write_all(b"I")?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

fn parse_seq(s: &str, lineno: usize) -> Result<PackedSeq> {
    s.parse().map_err(|e| match e {
        GenomeError::Parse(m) => GenomeError::Parse(format!("near line {lineno}: {m}")),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    fn tmp(content: &str) -> (tempfile::TempDir, std::path::PathBuf) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("f.txt");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(content.as_bytes())
            .unwrap();
        (dir, path)
    }

    #[test]
    fn fasta_roundtrip_with_wrapping() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("contigs.fa");
        let long: PackedSeq = "ACGT".repeat(50).parse().unwrap();
        let short: PackedSeq = "TTAA".parse().unwrap();
        write_fasta(&path, [("contig_0", &long), ("contig_1", &short)]).unwrap();
        let got = read_fasta(&path).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "contig_0");
        assert_eq!(got[0].1, long);
        assert_eq!(got[1].1, short);
    }

    #[test]
    fn fasta_multiline_records_are_concatenated() {
        let (_g, path) = tmp(">r1\nACGT\nACGT\n>r2\nTT\n");
        let got = read_fasta(&path).unwrap();
        assert_eq!(got[0].1.to_string(), "ACGTACGT");
        assert_eq!(got[1].1.to_string(), "TT");
    }

    #[test]
    fn fasta_rejects_headerless_data() {
        let (_g, path) = tmp("ACGT\n");
        assert!(matches!(read_fasta(&path), Err(GenomeError::Parse(_))));
    }

    #[test]
    fn fastq_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("reads.fq");
        let r1: PackedSeq = "GATTACA".parse().unwrap();
        let r2: PackedSeq = "CCCGGG".parse().unwrap();
        write_fastq(&path, [("read/1", &r1), ("read/2", &r2)]).unwrap();
        let got = read_fastq(&path).unwrap();
        assert_eq!(
            got,
            vec![("read/1".to_string(), r1), ("read/2".to_string(), r2)]
        );
    }

    #[test]
    fn fastq_detects_truncation_and_bad_separator() {
        let (_g1, p1) = tmp("@r\nACGT\n");
        assert!(matches!(read_fastq(&p1), Err(GenomeError::Parse(_))));
        let (_g2, p2) = tmp("@r\nACGT\nXIII\nIIII\n");
        assert!(matches!(read_fastq(&p2), Err(GenomeError::Parse(_))));
        let (_g3, p3) = tmp("@r\nACGT\n+\nII\n");
        assert!(matches!(read_fastq(&p3), Err(GenomeError::Parse(_))));
    }

    #[test]
    fn fastq_rejects_ambiguous_bases() {
        let (_g, path) = tmp("@r\nACNT\n+\nIIII\n");
        assert!(matches!(read_fastq(&path), Err(GenomeError::Parse(_))));
    }

    #[test]
    fn empty_files_parse_to_no_records() {
        let (_g1, p1) = tmp("");
        assert!(read_fasta(&p1).unwrap().is_empty());
        let (_g2, p2) = tmp("");
        assert!(read_fastq(&p2).unwrap().is_empty());
    }
}
