//! Synthetic genomes and shotgun sequencing.
//!
//! Substitute for the paper's Illumina datasets (Table I): a random genome
//! with optional repeated regions (repeats are what make real assembly
//! hard — they create ambiguous branches in the string graph), sampled by a
//! uniform shotgun model with strand flips and an optional per-base error
//! rate. With the error rate at zero every read is an exact substring of
//! the genome or its reverse complement, which gives integration tests a
//! ground truth: every correctly assembled contig must align exactly.

use crate::base::Base;
use crate::readset::ReadSet;
use crate::seq::PackedSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-genome generator.
#[derive(Debug, Clone)]
pub struct GenomeSim {
    /// Genome length in bases.
    pub len: usize,
    /// Per-step probability of appending a copy of an earlier block
    /// instead of one random base (0.0 = no repeats). The resulting repeat
    /// *content* is roughly `p·repeat_len / (p·repeat_len + 1 − p)` — e.g.
    /// p = 0.001 with 250 bp blocks gives ~20% repetitive sequence.
    pub repeat_fraction: f64,
    /// Length of each repeated block.
    pub repeat_len: usize,
    /// RNG seed (fixed seed ⇒ reproducible datasets).
    pub seed: u64,
}

impl GenomeSim {
    /// A repeat-free genome of `len` bases.
    pub fn uniform(len: usize, seed: u64) -> Self {
        GenomeSim {
            len,
            repeat_fraction: 0.0,
            repeat_len: 500,
            seed,
        }
    }

    /// Generate the genome.
    pub fn generate(&self) -> PackedSeq {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut seq = PackedSeq::with_capacity(self.len);
        while seq.len() < self.len {
            let remaining = self.len - seq.len();
            let do_repeat = self.repeat_fraction > 0.0
                && seq.len() > self.repeat_len
                && remaining >= self.repeat_len
                && rng.gen_bool(self.repeat_fraction);
            if do_repeat {
                // Copy an earlier block verbatim: a tandem-style repeat.
                let start = rng.gen_range(0..seq.len() - self.repeat_len);
                for i in 0..self.repeat_len {
                    seq.push(seq.get(start + i));
                }
            } else {
                seq.push(Base::from_code(rng.gen_range(0..4)));
            }
        }
        seq
    }
}

/// Uniform shotgun sequencing model.
#[derive(Debug, Clone)]
pub struct ShotgunSim {
    /// Read length (the paper's l_max: 100-150 for Illumina).
    pub read_len: usize,
    /// Mean coverage: expected number of reads covering each base.
    pub coverage: f64,
    /// Probability of sequencing a fragment from the reverse strand.
    pub strand_flip_prob: f64,
    /// Per-base substitution error probability (0.0 = error-free).
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ShotgunSim {
    /// Error-free shotgun at the given coverage with 50% strand flips.
    pub fn error_free(read_len: usize, coverage: f64, seed: u64) -> Self {
        ShotgunSim {
            read_len,
            coverage,
            strand_flip_prob: 0.5,
            error_rate: 0.0,
            seed,
        }
    }

    /// Number of reads this model draws from a genome of `genome_len`.
    pub fn read_count(&self, genome_len: usize) -> usize {
        ((genome_len as f64 * self.coverage) / self.read_len as f64).round() as usize
    }

    /// Sample a read set from `genome`.
    ///
    /// # Panics
    /// Panics if the genome is shorter than the read length.
    pub fn sample(&self, genome: &PackedSeq) -> ReadSet {
        assert!(
            genome.len() >= self.read_len,
            "genome of {} bases shorter than read length {}",
            genome.len(),
            self.read_len
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.read_count(genome.len());
        let mut set = ReadSet::new(self.read_len);
        for _ in 0..n {
            let start = rng.gen_range(0..=genome.len() - self.read_len);
            let mut read = genome.slice(start, self.read_len);
            if self.strand_flip_prob > 0.0 && rng.gen_bool(self.strand_flip_prob) {
                read = read.reverse_complement();
            }
            if self.error_rate > 0.0 {
                read = inject_errors(&read, self.error_rate, &mut rng);
            }
            set.push(&read)
                .expect("sampled read has the configured length");
        }
        set
    }
}

fn inject_errors(read: &PackedSeq, rate: f64, rng: &mut StdRng) -> PackedSeq {
    read.iter()
        .map(|b| {
            if rng.gen_bool(rate) {
                // Substitute with one of the three *other* bases.
                let shift = rng.gen_range(1..4u8);
                Base::from_code((b.code() + shift) % 4)
            } else {
                b
            }
        })
        .collect()
}

/// `true` if `needle` occurs in `haystack` on either strand — the contig
/// ground-truth check used by tests and examples.
pub fn is_substring_either_strand(needle: &PackedSeq, haystack: &PackedSeq) -> bool {
    let h = haystack.to_codes();
    let n = needle.to_codes();
    let rc = needle.reverse_complement().to_codes();
    contains(&h, &n) || contains(&h, &rc)
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_has_requested_length_and_is_deterministic() {
        let sim = GenomeSim::uniform(1000, 7);
        let a = sim.generate();
        let b = sim.generate();
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        assert_ne!(a, GenomeSim::uniform(1000, 8).generate());
    }

    #[test]
    fn repeats_duplicate_earlier_blocks() {
        let sim = GenomeSim {
            len: 5000,
            repeat_fraction: 0.5,
            repeat_len: 200,
            seed: 3,
        };
        let g = sim.generate();
        assert_eq!(g.len(), 5000);
        // With 50% repeat pressure some 50-mer must occur twice; in a
        // purely random sequence a duplicate 50-mer has probability ~4^-50.
        let codes = g.to_codes();
        let mut seen = std::collections::HashSet::new();
        let found_dup = codes.windows(50).any(|w| !seen.insert(w.to_vec()));
        assert!(found_dup, "expected at least one repeated 50-mer");
    }

    #[test]
    fn shotgun_produces_expected_read_count_and_lengths() {
        let genome = GenomeSim::uniform(2000, 1).generate();
        let sim = ShotgunSim::error_free(100, 10.0, 2);
        assert_eq!(sim.read_count(2000), 200);
        let reads = sim.sample(&genome);
        assert_eq!(reads.len(), 200);
        assert_eq!(reads.read_len(), 100);
    }

    #[test]
    fn error_free_reads_are_genome_substrings() {
        let genome = GenomeSim::uniform(500, 11).generate();
        let reads = ShotgunSim::error_free(60, 5.0, 12).sample(&genome);
        for read in reads.iter() {
            assert!(is_substring_either_strand(&read, &genome));
        }
    }

    #[test]
    fn strand_flips_actually_happen() {
        let genome = GenomeSim::uniform(300, 21).generate();
        let flipped = ShotgunSim {
            read_len: 50,
            coverage: 20.0,
            strand_flip_prob: 1.0,
            error_rate: 0.0,
            seed: 5,
        }
        .sample(&genome);
        // Every read reverse-complemented must be a forward substring.
        let g = genome.to_codes();
        for read in flipped.iter() {
            let rc = read.reverse_complement().to_codes();
            assert!(contains(&g, &rc));
        }
    }

    #[test]
    fn error_injection_perturbs_reads() {
        let genome = GenomeSim::uniform(400, 31).generate();
        let noisy = ShotgunSim {
            read_len: 80,
            coverage: 5.0,
            strand_flip_prob: 0.0,
            error_rate: 0.2,
            seed: 6,
        }
        .sample(&genome);
        let clean = ShotgunSim {
            error_rate: 0.0,
            ..ShotgunSim {
                read_len: 80,
                coverage: 5.0,
                strand_flip_prob: 0.0,
                error_rate: 0.0,
                seed: 6,
            }
        }
        .sample(&genome);
        assert_eq!(noisy.len(), clean.len());
        let mut mismatched_reads = 0;
        for i in 0..noisy.len() {
            if noisy.read(i) != clean.read(i) {
                mismatched_reads += 1;
            }
        }
        assert!(
            mismatched_reads > 0,
            "20% error rate must perturb something"
        );
    }

    #[test]
    #[should_panic(expected = "shorter than read length")]
    fn genome_shorter_than_read_panics() {
        let genome = GenomeSim::uniform(10, 1).generate();
        ShotgunSim::error_free(20, 1.0, 0).sample(&genome);
    }

    #[test]
    fn substring_check_handles_edges() {
        let g: PackedSeq = "ACGTACGT".parse().unwrap();
        let empty = PackedSeq::new();
        assert!(is_substring_either_strand(&empty, &g));
        let longer: PackedSeq = "ACGTACGTA".parse().unwrap();
        assert!(!is_substring_either_strand(&longer, &g));
        // Reverse-strand hit: revcomp of ACGT is ACGT (palindrome) — use a
        // non-palindromic probe.
        let probe: PackedSeq = "GTAC".parse().unwrap();
        assert!(is_substring_either_strand(&probe, &g));
    }
}
