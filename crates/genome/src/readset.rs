//! Uniform-length short-read containers and the vertex-id convention.
//!
//! The string graph's vertex set is "R as vertices", where R contains the
//! reads *and their WC complements* (Section II-A2). We give read `i` the
//! forward vertex `2i` and the reverse-complement vertex `2i + 1`, so the
//! complement of any vertex is `v ^ 1` — the identity the greedy reduce
//! phase relies on when it checks `out(v')` before adding an edge.

use crate::base::Base;
use crate::seq::PackedSeq;
use crate::GenomeError;

/// Identifier of a string-graph vertex (`2 * read + strand`).
pub type VertexId = u32;

/// Forward/reverse-complement orientation of a vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strand {
    /// The read as sequenced.
    Forward,
    /// Its Watson-Crick reverse complement.
    Reverse,
}

/// A set of equal-length short reads, 2-bit packed back to back.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReadSet {
    bases: PackedSeq,
    read_len: usize,
}

impl ReadSet {
    /// An empty set of reads of length `read_len`.
    pub fn new(read_len: usize) -> Self {
        assert!(read_len > 0, "read length must be positive");
        ReadSet {
            bases: PackedSeq::new(),
            read_len,
        }
    }

    /// The uniform read length (the paper's l_max).
    pub fn read_len(&self) -> usize {
        self.read_len
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.bases.len().checked_div(self.read_len).unwrap_or(0)
    }

    /// `true` if the set holds no reads.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Total number of bases.
    pub fn total_bases(&self) -> u64 {
        self.bases.len() as u64
    }

    /// Approximate in-memory footprint in bytes (2 bits per base).
    pub fn packed_bytes(&self) -> usize {
        self.bases.packed_bytes()
    }

    /// Append a read.
    ///
    /// Returns [`GenomeError::LengthMismatch`] if its length differs from
    /// the set's uniform length.
    pub fn push(&mut self, read: &PackedSeq) -> crate::Result<()> {
        if read.len() != self.read_len {
            return Err(GenomeError::LengthMismatch {
                expected: self.read_len,
                got: read.len(),
            });
        }
        for b in read.iter() {
            self.bases.push(b);
        }
        Ok(())
    }

    /// The `i`-th read (forward orientation).
    pub fn read(&self, i: usize) -> PackedSeq {
        assert!(
            i < self.len(),
            "read {i} out of range ({} reads)",
            self.len()
        );
        self.bases.slice(i * self.read_len, self.read_len)
    }

    /// Number of string-graph vertices (`2 × reads`).
    pub fn vertex_count(&self) -> u32 {
        (self.len() * 2) as u32
    }

    /// The read index a vertex belongs to.
    pub fn vertex_read(v: VertexId) -> usize {
        (v / 2) as usize
    }

    /// The orientation of a vertex.
    pub fn vertex_strand(v: VertexId) -> Strand {
        if v & 1 == 0 {
            Strand::Forward
        } else {
            Strand::Reverse
        }
    }

    /// The WC-complement vertex (`v ^ 1`).
    pub fn complement_vertex(v: VertexId) -> VertexId {
        v ^ 1
    }

    /// The sequence a vertex spells.
    pub fn vertex_seq(&self, v: VertexId) -> PackedSeq {
        let read = self.read(Self::vertex_read(v));
        match Self::vertex_strand(v) {
            Strand::Forward => read,
            Strand::Reverse => read.reverse_complement(),
        }
    }

    /// 2-bit codes of the `i`-th read, appended to `out` (allocation-free
    /// inner loop for the map phase).
    pub fn read_codes_into(&self, i: usize, out: &mut Vec<u8>) {
        let start = i * self.read_len;
        out.clear();
        out.reserve(self.read_len);
        for j in 0..self.read_len {
            out.push(self.bases.get(start + j).code());
        }
    }

    /// Iterate reads in order.
    pub fn iter(&self) -> impl Iterator<Item = PackedSeq> + '_ {
        (0..self.len()).map(move |i| self.read(i))
    }

    /// Build from any iterator of equal-length reads.
    pub fn from_reads<I>(read_len: usize, reads: I) -> crate::Result<Self>
    where
        I: IntoIterator<Item = PackedSeq>,
    {
        let mut set = ReadSet::new(read_len);
        for r in reads {
            set.push(&r)?;
        }
        Ok(set)
    }

    /// First base of the `i`-th read (cheap accessor used in tests).
    pub fn first_base(&self, i: usize) -> Base {
        self.bases.get(i * self.read_len)
    }

    /// Serialize to the 2-bit packed staging format (4 bases per byte,
    /// little-endian within the byte) used by the pipeline's load phase.
    pub fn to_packed_bytes(&self) -> Vec<u8> {
        let total = self.bases.len();
        let mut out = vec![0u8; total.div_ceil(4)];
        for i in 0..total {
            out[i / 4] |= self.bases.get(i).code() << (2 * (i % 4));
        }
        out
    }

    /// Reconstruct from the staging format. `reads` is the read count.
    pub fn from_packed_bytes(read_len: usize, reads: usize, bytes: &[u8]) -> crate::Result<Self> {
        let total = read_len * reads;
        if bytes.len() != total.div_ceil(4) {
            return Err(GenomeError::Parse(format!(
                "packed read file has {} bytes, expected {} for {reads} reads of length {read_len}",
                bytes.len(),
                total.div_ceil(4)
            )));
        }
        let mut set = ReadSet::new(read_len);
        for i in 0..total {
            set.bases
                .push(Base::from_code((bytes[i / 4] >> (2 * (i % 4))) & 3));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(strs: &[&str]) -> ReadSet {
        let len = strs[0].len();
        ReadSet::from_reads(len, strs.iter().map(|s| s.parse().unwrap())).unwrap()
    }

    #[test]
    fn push_and_read_back() {
        let set = set_of(&["ACGT", "TTTT", "GGCC"]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.read(0).to_string(), "ACGT");
        assert_eq!(set.read(2).to_string(), "GGCC");
        assert_eq!(set.total_bases(), 12);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mut set = ReadSet::new(4);
        let short: PackedSeq = "ACG".parse().unwrap();
        assert!(matches!(
            set.push(&short),
            Err(GenomeError::LengthMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn vertex_conventions() {
        let set = set_of(&["ACGT", "TTTT"]);
        assert_eq!(set.vertex_count(), 4);
        assert_eq!(ReadSet::vertex_read(5), 2);
        assert_eq!(ReadSet::complement_vertex(4), 5);
        assert_eq!(ReadSet::complement_vertex(5), 4);
        assert!(matches!(ReadSet::vertex_strand(0), Strand::Forward));
        assert!(matches!(ReadSet::vertex_strand(1), Strand::Reverse));
    }

    #[test]
    fn vertex_seq_gives_forward_and_revcomp() {
        let set = set_of(&["GATT"]);
        assert_eq!(set.vertex_seq(0).to_string(), "GATT");
        assert_eq!(set.vertex_seq(1).to_string(), "AATC");
    }

    #[test]
    fn read_codes_into_reuses_buffer() {
        let set = set_of(&["ACGT", "TGCA"]);
        let mut buf = Vec::new();
        set.read_codes_into(0, &mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        set.read_codes_into(1, &mut buf);
        assert_eq!(buf, vec![3, 2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_panics() {
        set_of(&["ACGT"]).read(1);
    }

    #[test]
    #[should_panic(expected = "read length must be positive")]
    fn zero_read_len_rejected() {
        ReadSet::new(0);
    }

    #[test]
    fn packed_bytes_roundtrip() {
        let set = set_of(&["ACGTA", "TTGCA", "GGGGG"]);
        let bytes = set.to_packed_bytes();
        assert_eq!(bytes.len(), 4); // 15 bases -> 4 bytes
        let back = ReadSet::from_packed_bytes(5, 3, &bytes).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn packed_bytes_rejects_wrong_size() {
        assert!(ReadSet::from_packed_bytes(5, 3, &[0u8; 3]).is_err());
        assert!(ReadSet::from_packed_bytes(5, 3, &[0u8; 5]).is_err());
    }

    #[test]
    fn empty_set_packs_to_nothing() {
        let set = ReadSet::new(7);
        assert!(set.to_packed_bytes().is_empty());
        let back = ReadSet::from_packed_bytes(7, 0, &[]).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.read_len(), 7);
    }
}
