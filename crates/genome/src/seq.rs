//! 2-bit packed DNA sequences.

use crate::base::Base;
use crate::GenomeError;
use std::fmt;
use std::str::FromStr;

const BASES_PER_WORD: usize = 32;

/// A DNA string stored 2 bits per base, 32 bases per `u64` word.
///
/// At the paper's scale (hundreds of gigabases) packing is what makes reads
/// fit in host memory at all; here it keeps the scaled datasets cheap and
/// gives `get`/`push` the same bit-twiddling the GPU encode kernel does.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        PackedSeq::default()
    }

    /// Empty sequence with room for `n` bases.
    pub fn with_capacity(n: usize) -> Self {
        PackedSeq {
            words: Vec::with_capacity(n.div_ceil(BASES_PER_WORD)),
            len: 0,
        }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the sequence has no bases.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes used by the packed representation.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Append one base.
    pub fn push(&mut self, base: Base) {
        let (word, shift) = (self.len / BASES_PER_WORD, 2 * (self.len % BASES_PER_WORD));
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= (base.code() as u64) << shift;
        self.len += 1;
    }

    /// Base at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Base {
        assert!(
            i < self.len,
            "index {i} out of range for length {}",
            self.len
        );
        let (word, shift) = (i / BASES_PER_WORD, 2 * (i % BASES_PER_WORD));
        Base::from_code(((self.words[word] >> shift) & 3) as u8)
    }

    /// Iterate over bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The sub-sequence `[start, start + len)`.
    pub fn slice(&self, start: usize, len: usize) -> PackedSeq {
        assert!(
            start + len <= self.len,
            "slice [{start}, {}) out of range for length {}",
            start + len,
            self.len
        );
        let mut out = PackedSeq::with_capacity(len);
        for i in start..start + len {
            out.push(self.get(i));
        }
        out
    }

    /// The Watson-Crick reverse complement.
    pub fn reverse_complement(&self) -> PackedSeq {
        let mut out = PackedSeq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i).complement());
        }
        out
    }

    /// Build from 2-bit codes.
    pub fn from_codes(codes: &[u8]) -> PackedSeq {
        let mut out = PackedSeq::with_capacity(codes.len());
        for &c in codes {
            out.push(Base::from_code(c));
        }
        out
    }

    /// Export as 2-bit codes (the layout device kernels consume).
    pub fn to_codes(&self) -> Vec<u8> {
        self.iter().map(|b| b.code()).collect()
    }
}

// Shared Display/Debug body (Debug shows the sequence too — it is the most
// useful rendering in test failures).
macro_rules! fmt_impl {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for b in self.iter() {
                write!(f, "{}", b.to_ascii() as char)?;
            }
            Ok(())
        }
    };
}

impl fmt::Debug for PackedSeq {
    fmt_impl!();
}

impl fmt::Display for PackedSeq {
    fmt_impl!();
}

impl FromStr for PackedSeq {
    type Err = GenomeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = PackedSeq::with_capacity(s.len());
        for (i, c) in s.bytes().enumerate() {
            match Base::from_ascii(c) {
                Some(b) => out.push(b),
                None => {
                    return Err(GenomeError::Parse(format!(
                        "invalid nucleotide {:?} at position {i}",
                        c as char
                    )))
                }
            }
        }
        Ok(out)
    }
}

impl FromIterator<Base> for PackedSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        let mut out = PackedSeq::new();
        for b in iter {
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_get_roundtrip_across_word_boundaries() {
        let mut seq = PackedSeq::new();
        let pattern: Vec<Base> = (0..100).map(|i| Base::from_code((i % 4) as u8)).collect();
        for &b in &pattern {
            seq.push(b);
        }
        assert_eq!(seq.len(), 100);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(seq.get(i), b, "position {i}");
        }
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s: PackedSeq = "GATACCAGTA".parse().unwrap();
        assert_eq!(s.to_string(), "GATACCAGTA");
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn parse_rejects_ambiguity_codes() {
        assert!("GATN".parse::<PackedSeq>().is_err());
    }

    #[test]
    fn reverse_complement_of_known_string() {
        let s: PackedSeq = "GATTACA".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "TGTAATC");
    }

    #[test]
    fn slice_extracts_subsequence() {
        let s: PackedSeq = "ACGTACGTACGT".parse().unwrap();
        assert_eq!(s.slice(2, 5).to_string(), "GTACG");
        assert_eq!(s.slice(0, 0).to_string(), "");
        assert_eq!(s.slice(12, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let s: PackedSeq = "ACGT".parse().unwrap();
        s.slice(2, 3);
    }

    #[test]
    fn packed_bytes_is_quarter_of_length() {
        let s: PackedSeq = "A".repeat(128).parse().unwrap();
        assert_eq!(s.packed_bytes(), 32);
        let t: PackedSeq = "A".repeat(129).parse().unwrap();
        assert_eq!(t.packed_bytes(), 40);
    }

    proptest! {
        #[test]
        fn revcomp_is_involution(codes in prop::collection::vec(0u8..4, 0..200)) {
            let s = PackedSeq::from_codes(&codes);
            prop_assert_eq!(s.reverse_complement().reverse_complement(), s);
        }

        #[test]
        fn to_codes_inverts_from_codes(codes in prop::collection::vec(0u8..4, 0..200)) {
            prop_assert_eq!(PackedSeq::from_codes(&codes).to_codes(), codes);
        }

        #[test]
        fn display_parse_roundtrip(codes in prop::collection::vec(0u8..4, 0..100)) {
            let s = PackedSeq::from_codes(&codes);
            let reparsed: PackedSeq = s.to_string().parse().unwrap();
            prop_assert_eq!(reparsed, s);
        }
    }
}
