//! # genome — sequence substrate
//!
//! Everything LaSAGNA consumes upstream of the assembly pipeline:
//!
//! * [`base`] — the DNA alphabet with 2-bit codes and Watson-Crick
//!   complements;
//! * [`seq`] — [`PackedSeq`], a 2-bit-packed DNA string (the encoding the
//!   paper's map kernel produces when it "encodes the corresponding base in
//!   the read to the radix");
//! * [`readset`] — [`ReadSet`], a uniform-length short-read container with
//!   the paper's vertex-id convention (`2·read + strand`, complement =
//!   `id ^ 1`);
//! * [`fastq`] — FASTA/FASTQ parsing and writing;
//! * [`sim`] — synthetic genome generation and shotgun sequencing, the
//!   substitute for the paper's Illumina datasets (see DESIGN.md);
//! * [`presets`] — the four Table-I datasets with their paper-reported
//!   sizes, scalable to laptop scale while preserving coverage and read
//!   lengths.

pub mod base;
pub mod fastq;
pub mod presets;
pub mod readset;
pub mod seq;
pub mod sim;

pub use base::Base;
pub use presets::{DatasetPreset, ScaledDataset};
pub use readset::ReadSet;
pub use seq::PackedSeq;
pub use sim::{GenomeSim, ShotgunSim};

/// Errors from sequence parsing and I/O.
#[derive(Debug)]
pub enum GenomeError {
    /// Underlying file-system error.
    Io(std::io::Error),
    /// Malformed FASTA/FASTQ or an invalid nucleotide character.
    Parse(String),
    /// Reads of unequal length fed to a uniform-length container.
    LengthMismatch {
        /// Length the container expects.
        expected: usize,
        /// Length encountered.
        got: usize,
    },
}

impl std::fmt::Display for GenomeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenomeError::Io(e) => write!(f, "I/O error: {e}"),
            GenomeError::Parse(m) => write!(f, "parse error: {m}"),
            GenomeError::LengthMismatch { expected, got } => {
                write!(f, "read length {got} differs from expected {expected}")
            }
        }
    }
}

impl std::error::Error for GenomeError {}

impl From<std::io::Error> for GenomeError {
    fn from(e: std::io::Error) -> Self {
        GenomeError::Io(e)
    }
}

/// Convenience alias for fallible genome operations.
pub type Result<T> = std::result::Result<T, GenomeError>;
