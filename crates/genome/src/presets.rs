//! The paper's Table I datasets, scalable to laptop size.
//!
//! Table I of the paper:
//!
//! | Dataset   | Length | Reads         | Bases           | Size   | l_min |
//! |-----------|--------|---------------|-----------------|--------|-------|
//! | H.Chr 14  | 101    | 45,711,162    | 4,559,613,772   | 9.2 GB | 63    |
//! | Bumblebee | 124    | 316,172,570   | 33,562,702,234  | 85 GB  | 85    |
//! | Parakeet  | 150    | 608,709,922   | 91,306,488,300  | 203 GB | 111   |
//! | H.Genome  | 100    | 1,247,518,392 | 124,751,839,200 | 398 GB | 63    |
//!
//! (Minimum overlap lengths from Section IV-A, "as suggested by the SGA
//! assembler".) A [`DatasetPreset`] carries those figures; `scaled(S)`
//! divides base counts by `S` while preserving read length and coverage, so
//! the algorithmic regime — dataset ≫ host memory ≫ device memory, tens of
//! partitions, multiple sort runs — survives the shrink.

use crate::sim::{GenomeSim, ShotgunSim};
use serde::{Deserialize, Serialize};

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// GAGE human chromosome 14 (9.2 GB).
    HChr14,
    /// GAGE bumblebee (85 GB).
    Bumblebee,
    /// ERP002324 parakeet (203 GB).
    Parakeet,
    /// SRA000271 whole human genome (398 GB).
    HGenome,
}

impl DatasetPreset {
    /// All four presets in Table I order.
    pub const ALL: [DatasetPreset; 4] = [
        DatasetPreset::HChr14,
        DatasetPreset::Bumblebee,
        DatasetPreset::Parakeet,
        DatasetPreset::HGenome,
    ];

    /// Table I dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::HChr14 => "H.Chr 14",
            DatasetPreset::Bumblebee => "Bumblebee",
            DatasetPreset::Parakeet => "Parakeet",
            DatasetPreset::HGenome => "H.Genome",
        }
    }

    /// Read length in bases.
    pub fn read_len(self) -> usize {
        match self {
            DatasetPreset::HChr14 => 101,
            DatasetPreset::Bumblebee => 124,
            DatasetPreset::Parakeet => 150,
            DatasetPreset::HGenome => 100,
        }
    }

    /// Read count reported in Table I.
    pub fn paper_reads(self) -> u64 {
        match self {
            DatasetPreset::HChr14 => 45_711_162,
            DatasetPreset::Bumblebee => 316_172_570,
            DatasetPreset::Parakeet => 608_709_922,
            DatasetPreset::HGenome => 1_247_518_392,
        }
    }

    /// Base count reported in Table I. (For H.Chr 14 this is slightly less
    /// than `reads × length` because the GAGE data contains some shorter
    /// reads; the other sets are exactly uniform.)
    pub fn paper_bases(self) -> u64 {
        match self {
            DatasetPreset::HChr14 => 4_559_613_772,
            DatasetPreset::Bumblebee => 33_562_702_234,
            DatasetPreset::Parakeet => 91_306_488_300,
            DatasetPreset::HGenome => 124_751_839_200,
        }
    }

    /// Reference genome size in bases (used to derive coverage).
    pub fn genome_len(self) -> u64 {
        match self {
            DatasetPreset::HChr14 => 88_000_000,      // human chr14
            DatasetPreset::Bumblebee => 250_000_000,  // B. impatiens
            DatasetPreset::Parakeet => 1_200_000_000, // M. undulatus
            DatasetPreset::HGenome => 3_100_000_000,  // H. sapiens
        }
    }

    /// Mean coverage implied by Table I (bases / genome length).
    pub fn coverage(self) -> f64 {
        self.paper_bases() as f64 / self.genome_len() as f64
    }

    /// Minimum overlap length used in the paper (Section IV-A).
    pub fn l_min(self) -> u32 {
        match self {
            DatasetPreset::HChr14 => 63,
            DatasetPreset::Bumblebee => 85,
            DatasetPreset::Parakeet => 111,
            DatasetPreset::HGenome => 63,
        }
    }

    /// Dataset on-disk size in bytes as reported in Table I.
    pub fn paper_size_bytes(self) -> u64 {
        match self {
            DatasetPreset::HChr14 => 9_200_000_000,     // 9.2 GB
            DatasetPreset::Bumblebee => 85_000_000_000, // 85 GB
            DatasetPreset::Parakeet => 203_000_000_000, // 203 GB
            DatasetPreset::HGenome => 398_000_000_000,  // 398 GB
        }
    }

    /// Shrink by `scale` (genome and read counts divided, coverage and read
    /// length preserved).
    pub fn scaled(self, scale: u64) -> ScaledDataset {
        let genome_len = (self.genome_len() / scale).max(10 * self.read_len() as u64) as usize;
        ScaledDataset {
            preset: self,
            scale,
            genome_len,
            read_len: self.read_len(),
            coverage: self.coverage(),
            l_min: self.l_min(),
        }
    }
}

/// A Table-I dataset shrunk by a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaledDataset {
    /// Which Table I row this is.
    pub preset: DatasetPreset,
    /// Shrink factor relative to the paper.
    pub scale: u64,
    /// Scaled genome length in bases.
    pub genome_len: usize,
    /// Read length (unchanged from the paper).
    pub read_len: usize,
    /// Coverage (unchanged from the paper).
    pub coverage: f64,
    /// Minimum overlap length (unchanged from the paper).
    pub l_min: u32,
}

impl ScaledDataset {
    /// Reads this dataset will contain.
    pub fn read_count(&self) -> usize {
        ShotgunSim::error_free(self.read_len, self.coverage, 0).read_count(self.genome_len)
    }

    /// Total bases across reads.
    pub fn total_bases(&self) -> u64 {
        self.read_count() as u64 * self.read_len as u64
    }

    /// Generate the genome and sample the reads (deterministic per preset).
    pub fn materialize(&self) -> (crate::PackedSeq, crate::ReadSet) {
        let seed = match self.preset {
            DatasetPreset::HChr14 => 0x14,
            DatasetPreset::Bumblebee => 0xBEE,
            DatasetPreset::Parakeet => 0x9A2A,
            DatasetPreset::HGenome => 0x6E0,
        };
        let genome = GenomeSim {
            len: self.genome_len,
            repeat_fraction: 0.02,
            repeat_len: self.read_len * 2,
            seed,
        }
        .generate();
        let reads =
            ShotgunSim::error_free(self.read_len, self.coverage, seed ^ 0xF00D).sample(&genome);
        (genome, reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_figures_match_the_paper() {
        assert_eq!(DatasetPreset::HChr14.paper_reads(), 45_711_162);
        assert_eq!(DatasetPreset::HChr14.paper_bases(), 4_559_613_772);
        assert_eq!(DatasetPreset::HGenome.paper_bases(), 124_751_839_200);
        assert_eq!(DatasetPreset::Parakeet.read_len(), 150);
        assert_eq!(DatasetPreset::Bumblebee.l_min(), 85);
    }

    #[test]
    fn coverage_is_physically_plausible() {
        for p in DatasetPreset::ALL {
            let c = p.coverage();
            assert!(c > 10.0 && c < 200.0, "{}: coverage {c}", p.name());
        }
    }

    #[test]
    fn scaling_preserves_read_len_and_coverage() {
        let s = DatasetPreset::HGenome.scaled(20_000);
        assert_eq!(s.read_len, 100);
        assert!((s.coverage - DatasetPreset::HGenome.coverage()).abs() < 1e-9);
        assert_eq!(s.genome_len, 155_000);
    }

    #[test]
    fn scaled_dataset_sizes_keep_table1_ordering() {
        let sizes: Vec<u64> = DatasetPreset::ALL
            .iter()
            .map(|p| p.scaled(20_000).total_bases())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn materialize_is_deterministic_and_consistent() {
        let s = DatasetPreset::HChr14.scaled(400_000);
        let (g1, r1) = s.materialize();
        let (g2, r2) = s.materialize();
        assert_eq!(g1, g2);
        assert_eq!(r1, r2);
        assert_eq!(r1.read_len(), 101);
        assert_eq!(r1.len(), s.read_count());
    }

    #[test]
    fn extreme_scaling_clamps_to_usable_genome() {
        let s = DatasetPreset::HChr14.scaled(u64::MAX);
        assert!(s.genome_len >= 10 * s.read_len);
    }
}
