//! The DNA alphabet.

/// A nucleotide with its 2-bit code.
///
/// The code assignment (A=0, C=1, G=2, T=3) makes complementation a single
/// XOR with 3: `A(00) ↔ T(11)` and `C(01) ↔ G(10)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// 2-bit code of this base.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Base for a 2-bit code.
    ///
    /// # Panics
    /// Panics if `code > 3`.
    pub fn from_code(code: u8) -> Base {
        match code {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            other => panic!("invalid 2-bit base code {other}"),
        }
    }

    /// Watson-Crick complement.
    pub fn complement(self) -> Base {
        Base::from_code(self.code() ^ 3)
    }

    /// Parse an ASCII nucleotide (case-insensitive). `None` for anything
    /// else, including the ambiguity code `N`.
    pub fn from_ascii(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Upper-case ASCII letter for this base.
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn complement_is_an_involution_pairing_at_and_cg() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn ascii_roundtrip_and_case_insensitivity() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'x'), None);
    }

    #[test]
    #[should_panic(expected = "invalid 2-bit base code")]
    fn from_code_rejects_out_of_range() {
        Base::from_code(4);
    }
}
