//! Grid/block kernel execution.
//!
//! The paper's map phase launches "a grid of thread blocks where the number
//! of blocks equals the number of reads in the batch, and the number of
//! threads per block equals the read-length" (Section III-A). This module
//! gives custom kernels the same shape: [`launch`] runs one closure per
//! block, blocks execute in parallel (rayon), and the closure iterates its
//! simulated threads with explicit barrier steps — the natural encoding of
//! a Hillis-Steele scan.

use crate::device::Device;
use crate::stats::KernelCost;
use rayon::prelude::*;

/// Context handed to a kernel closure for one block.
#[derive(Debug, Clone, Copy)]
pub struct BlockCtx {
    /// Index of this block within the grid.
    pub block_idx: usize,
    /// Number of simulated threads per block.
    pub threads: usize,
}

/// Launch `blocks` blocks of `threads_per_block` threads running `kernel`,
/// charging `cost` to the device clock.
///
/// Blocks run concurrently; the closure itself expresses intra-block
/// parallelism as loops over `0..ctx.threads` with whatever barrier
/// structure the algorithm needs (double-buffering for scans).
pub fn launch<F>(
    device: &Device,
    name: &str,
    blocks: usize,
    threads_per_block: usize,
    cost: KernelCost,
    kernel: F,
) where
    F: Fn(BlockCtx) + Sync,
{
    let rec = device.recorder();
    let _span = if rec.is_enabled() {
        let span = rec.span(&format!("kernel:{name}"));
        rec.counter_on(span.id(), "kernel.blocks", blocks as u64);
        Some(span)
    } else {
        None
    };
    device.charge_kernel(name, cost);
    (0..blocks).into_par_iter().for_each(|block_idx| {
        kernel(BlockCtx {
            block_idx,
            threads: threads_per_block,
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuProfile;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_block_runs_exactly_once() {
        let dev = Device::new(GpuProfile::k40());
        let hits = AtomicUsize::new(0);
        launch(&dev, "count", 37, 8, KernelCost::new(37, 0), |ctx| {
            assert!(ctx.block_idx < 37);
            assert_eq!(ctx.threads, 8);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 37);
        assert_eq!(dev.stats().kernel_launches, 1);
    }

    #[test]
    fn launch_opens_a_kernel_span_when_recorder_attached() {
        let dev = Device::new(GpuProfile::k40());
        let rec = obs::Recorder::new();
        dev.set_recorder(rec.clone());
        launch(&dev, "scan", 4, 8, KernelCost::new(32, 64), |_| {});
        let rollup = obs::Rollup::from_events(&rec.events());
        let span = rollup.root_named("kernel:scan").unwrap();
        assert!(span.wall_seconds >= 0.0);
        let agg = rollup.subtree(span.id);
        assert_eq!(agg.counter("kernel.blocks"), 4);
        assert_eq!(agg.counter("kernel.launches"), 1);
        assert!(agg.metric("kernel.seconds") > 0.0);
    }

    #[test]
    fn zero_blocks_still_charges_one_launch() {
        let dev = Device::new(GpuProfile::k40());
        launch(&dev, "empty", 0, 32, KernelCost::default(), |_| {
            panic!("no block should run")
        });
        assert_eq!(dev.stats().kernel_launches, 1);
    }

    #[test]
    fn blocks_can_write_disjoint_output_regions() {
        let dev = Device::new(GpuProfile::k40());
        let n_blocks = 16;
        let threads = 4;
        let out: Vec<AtomicUsize> = (0..n_blocks * threads)
            .map(|_| AtomicUsize::new(0))
            .collect();
        launch(
            &dev,
            "fill",
            n_blocks,
            threads,
            KernelCost::default(),
            |ctx| {
                for t in 0..ctx.threads {
                    out[ctx.block_idx * ctx.threads + t]
                        .store(ctx.block_idx * 100 + t, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(out[0].load(Ordering::Relaxed), 0);
        assert_eq!(out[5].load(Ordering::Relaxed), 101);
        assert_eq!(out[63].load(Ordering::Relaxed), 1503);
    }
}
