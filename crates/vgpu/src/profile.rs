//! GPU product profiles used by the analytic timing model.
//!
//! The numbers are the published specifications of the boards the paper
//! evaluates on (Section IV-B and Fig. 9). Only *ratios* matter for the
//! reproduced figures: sorting on these devices is memory-bandwidth-bound,
//! so e.g. the P40 (346 GB/s) losing to the P100 (732 GB/s) despite having
//! more cores — an observation the paper calls out explicitly — falls out
//! of the model.

use serde::{Deserialize, Serialize};

/// Static description of a GPU product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuProfile {
    /// Marketing name, e.g. `"K40"`.
    pub name: String,
    /// Number of CUDA cores.
    pub cuda_cores: u32,
    /// Boost clock in MHz.
    pub boost_clock_mhz: u32,
    /// Peak memory bandwidth in GB/s.
    pub mem_bandwidth_gb_s: f64,
    /// Physical device memory in bytes.
    pub device_mem_bytes: u64,
    /// Effective host↔device interconnect bandwidth in GB/s (PCIe gen3 x16
    /// sustains ~12 GB/s in practice).
    pub pcie_gb_s: f64,
}

impl GpuProfile {
    /// NVIDIA Tesla K40: the paper's single-node flagship (Tables II/IV).
    pub fn k40() -> Self {
        GpuProfile {
            name: "K40".into(),
            cuda_cores: 2880,
            boost_clock_mhz: 875,
            mem_bandwidth_gb_s: 288.0,
            device_mem_bytes: 12 << 30,
            pcie_gb_s: 12.0,
        }
    }

    /// NVIDIA Tesla K20X: the SuperMic cluster GPU (Tables III/V, Fig. 10).
    pub fn k20x() -> Self {
        GpuProfile {
            name: "K20X".into(),
            cuda_cores: 2688,
            boost_clock_mhz: 732,
            mem_bandwidth_gb_s: 250.0,
            device_mem_bytes: 6 << 30,
            pcie_gb_s: 12.0,
        }
    }

    /// NVIDIA Tesla P40 (Fig. 9): many cores, modest bandwidth.
    pub fn p40() -> Self {
        GpuProfile {
            name: "P40".into(),
            cuda_cores: 3840,
            boost_clock_mhz: 1531,
            mem_bandwidth_gb_s: 346.0,
            device_mem_bytes: 24 << 30,
            pcie_gb_s: 12.0,
        }
    }

    /// NVIDIA Tesla P100 (Fig. 9).
    pub fn p100() -> Self {
        GpuProfile {
            name: "P100".into(),
            cuda_cores: 3584,
            boost_clock_mhz: 1480,
            mem_bandwidth_gb_s: 732.0,
            device_mem_bytes: 16 << 30,
            pcie_gb_s: 12.0,
        }
    }

    /// NVIDIA Tesla V100 (Fig. 9): the fastest device in the paper.
    pub fn v100() -> Self {
        GpuProfile {
            name: "V100".into(),
            cuda_cores: 5120,
            boost_clock_mhz: 1530,
            mem_bandwidth_gb_s: 900.0,
            device_mem_bytes: 16 << 30,
            pcie_gb_s: 14.0,
        }
    }

    /// All profiles swept by the paper's Fig. 9, in its plotting order.
    pub fn fig9_lineup() -> Vec<GpuProfile> {
        vec![Self::k40(), Self::p40(), Self::p100(), Self::v100()]
    }

    /// Aggregate compute throughput in operations per second. The model
    /// treats one scalar op per core per clock; absolute values are
    /// irrelevant as long as they scale like the hardware does.
    pub fn compute_ops_per_s(&self) -> f64 {
        self.cuda_cores as f64 * self.boost_clock_mhz as f64 * 1e6
    }

    /// Sustained memory bandwidth in bytes per second. Real streaming
    /// workloads achieve roughly 70% of peak; the constant cancels in all
    /// cross-device comparisons.
    pub fn sustained_mem_bytes_per_s(&self) -> f64 {
        self.mem_bandwidth_gb_s * 1e9 * 0.7
    }

    /// Host↔device transfer bandwidth in bytes per second.
    pub fn pcie_bytes_per_s(&self) -> f64 {
        self.pcie_gb_s * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_capacities() {
        assert_eq!(GpuProfile::k40().device_mem_bytes, 12 << 30);
        assert_eq!(GpuProfile::k20x().device_mem_bytes, 6 << 30);
        assert_eq!(GpuProfile::p40().device_mem_bytes, 24 << 30);
        assert_eq!(GpuProfile::p100().device_mem_bytes, 16 << 30);
        assert_eq!(GpuProfile::v100().device_mem_bytes, 16 << 30);
    }

    #[test]
    fn bandwidth_ordering_matches_paper_fig9() {
        // The paper: V100 fastest; P40 slower than P100 despite more cores,
        // because sorting is bandwidth-bound.
        let k40 = GpuProfile::k40().sustained_mem_bytes_per_s();
        let p40 = GpuProfile::p40().sustained_mem_bytes_per_s();
        let p100 = GpuProfile::p100().sustained_mem_bytes_per_s();
        let v100 = GpuProfile::v100().sustained_mem_bytes_per_s();
        assert!(v100 > p100 && p100 > p40 && p40 > k40);
    }

    #[test]
    fn compute_throughput_scales_with_cores_and_clock() {
        let k40 = GpuProfile::k40();
        assert_eq!(k40.compute_ops_per_s(), 2880.0 * 875.0 * 1e6);
        // V100 has both more cores and a higher clock than K40.
        assert!(GpuProfile::v100().compute_ops_per_s() > k40.compute_ops_per_s());
    }

    #[test]
    fn fig9_lineup_has_four_devices() {
        let names: Vec<_> = GpuProfile::fig9_lineup()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["K40", "P40", "P100", "V100"]);
    }

    #[test]
    fn profiles_roundtrip_through_serde() {
        let p = GpuProfile::p100();
        let json = serde_json::to_string(&p).unwrap();
        let back: GpuProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
