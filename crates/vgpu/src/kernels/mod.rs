//! Device kernels.
//!
//! These are the Thrust-style primitives LaSAGNA is "built primarily with"
//! (Section IV-B): radix sort of key-value pairs, pairwise sorted merge,
//! inclusive/exclusive scans, vectorized lower/upper bounds, and gather.
//! Each kernel is a method on [`crate::Device`] so every launch is charged
//! to the device's roofline clock and counted in its statistics.

pub mod bounds;
pub mod gather;
pub mod merge;
pub mod radix;
pub mod scan;
