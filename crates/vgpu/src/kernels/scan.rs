//! Prefix-scan kernels.
//!
//! The contig-generation phase (Section III-D) computes path offsets with an
//! *exclusive* prefix scan and contig sizes with an inclusive scan of
//! overhang lengths. The scans here follow the Hillis-Steele structure: a
//! double-buffered log-step loop, the same communication pattern the paper
//! draws in Fig. 5 for fingerprint generation.

use crate::buffer::DeviceBuffer;
use crate::device::Device;
use crate::stats::KernelCost;

fn scan_cost(n: usize, elem: usize) -> KernelCost {
    let steps = (n.max(2) as f64).log2().ceil() as u64;
    KernelCost::new(steps * n as u64, steps * n as u64 * 2 * elem as u64)
}

impl Device {
    /// In-place inclusive prefix sum using Hillis-Steele doubling offsets.
    pub fn inclusive_scan(&self, buf: &mut DeviceBuffer<u64>) -> crate::Result<()> {
        self.launch_gate()?;
        let n = buf.len();
        self.charge_kernel("inclusive_scan", scan_cost(n, 8));
        let mut scratch = self.alloc::<u64>(n)?;
        let data = buf.as_mut_slice();
        let tmp = scratch.as_mut_slice();
        let mut offset = 1usize;
        while offset < n {
            // One Hillis-Steele step: every lane adds the lane `offset` to
            // its left; lanes below `offset` pass through.
            for i in 0..n {
                tmp[i] = if i >= offset {
                    data[i] + data[i - offset]
                } else {
                    data[i]
                };
            }
            data.copy_from_slice(tmp);
            offset *= 2;
        }
        Ok(())
    }

    /// Exclusive prefix sum (`out[0] = 0`); returns the total as well, which
    /// callers use as the allocation size for the scanned layout.
    pub fn exclusive_scan(&self, buf: &mut DeviceBuffer<u64>) -> crate::Result<u64> {
        self.launch_gate()?;
        let n = buf.len();
        if n == 0 {
            self.charge_kernel("exclusive_scan", KernelCost::default());
            return Ok(0);
        }
        self.inclusive_scan(buf)?;
        self.charge_kernel(
            "exclusive_scan_shift",
            KernelCost::new(n as u64, n as u64 * 16),
        );
        let data = buf.as_mut_slice();
        let total = data[n - 1];
        for i in (1..n).rev() {
            data[i] = data[i - 1];
        }
        data[0] = 0;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuProfile;
    use proptest::prelude::*;

    fn dev() -> Device {
        Device::new(GpuProfile::k40())
    }

    #[test]
    fn inclusive_scan_small() {
        let d = dev();
        let mut b = d.h2d(&[1u64, 2, 3, 4]).unwrap();
        d.inclusive_scan(&mut b).unwrap();
        assert_eq!(d.d2h(&b), vec![1, 3, 6, 10]);
    }

    #[test]
    fn exclusive_scan_returns_total() {
        let d = dev();
        let mut b = d.h2d(&[5u64, 1, 2]).unwrap();
        let total = d.exclusive_scan(&mut b).unwrap();
        assert_eq!(total, 8);
        assert_eq!(d.d2h(&b), vec![0, 5, 6]);
    }

    #[test]
    fn scans_handle_trivial_lengths() {
        let d = dev();
        let mut empty = d.h2d::<u64>(&[]).unwrap();
        assert_eq!(d.exclusive_scan(&mut empty).unwrap(), 0);

        let mut one = d.h2d(&[9u64]).unwrap();
        d.inclusive_scan(&mut one).unwrap();
        assert_eq!(d.d2h(&one), vec![9]);
        let mut one = d.h2d(&[9u64]).unwrap();
        assert_eq!(d.exclusive_scan(&mut one).unwrap(), 9);
        assert_eq!(d.d2h(&one), vec![0]);
    }

    proptest! {
        #[test]
        fn inclusive_matches_sequential(xs in prop::collection::vec(0u64..1000, 0..200)) {
            let d = dev();
            let mut b = d.h2d(&xs).unwrap();
            d.inclusive_scan(&mut b).unwrap();
            let got = d.d2h(&b);
            let mut acc = 0u64;
            let expect: Vec<u64> = xs.iter().map(|x| { acc += x; acc }).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn exclusive_matches_sequential(xs in prop::collection::vec(0u64..1000, 1..200)) {
            let d = dev();
            let mut b = d.h2d(&xs).unwrap();
            let total = d.exclusive_scan(&mut b).unwrap();
            let got = d.d2h(&b);
            let mut acc = 0u64;
            let mut expect = Vec::with_capacity(xs.len());
            for x in &xs {
                expect.push(acc);
                acc += x;
            }
            prop_assert_eq!(got, expect);
            prop_assert_eq!(total, acc);
        }
    }
}
