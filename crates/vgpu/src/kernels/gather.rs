//! Gather/scatter kernels.
//!
//! Contig generation copies each path tuple "to the unique location
//! corresponding to its read-ID with a *gather* operation in GPU (i.e.,
//! using the array of read-IDs as a stencil)" (Section III-D).

use crate::buffer::DeviceBuffer;
use crate::device::{Device, DeviceError};
use crate::stats::KernelCost;
use rayon::prelude::*;

impl Device {
    /// `out[i] = src[indices[i]]`.
    pub fn gather<T: Default + Clone + Copy + Send + Sync>(
        &self,
        src: &DeviceBuffer<T>,
        indices: &DeviceBuffer<u32>,
    ) -> crate::Result<DeviceBuffer<T>> {
        self.launch_gate()?;
        let elem = std::mem::size_of::<T>() as u64;
        if let Some(&bad) = indices
            .as_slice()
            .iter()
            .find(|&&i| i as usize >= src.len())
        {
            return Err(DeviceError::BadLaunch(format!(
                "gather index {bad} out of range for source of length {}",
                src.len()
            )));
        }
        let mut out = self.alloc::<T>(indices.len())?;
        self.charge_kernel(
            "gather",
            KernelCost::new(indices.len() as u64, indices.len() as u64 * (elem * 2 + 4)),
        );
        let s = src.as_slice();
        out.as_mut_slice()
            .par_iter_mut()
            .zip(indices.as_slice().par_iter())
            .for_each(|(o, &i)| *o = s[i as usize]);
        Ok(out)
    }

    /// `out[indices[i]] = src[i]`; `out` has length `out_len`. Indices must
    /// be unique (the contig layout guarantees this: a read belongs to at
    /// most one path position).
    pub fn scatter<T: Default + Clone + Copy + Send + Sync>(
        &self,
        src: &DeviceBuffer<T>,
        indices: &DeviceBuffer<u32>,
        out_len: usize,
    ) -> crate::Result<DeviceBuffer<T>> {
        self.launch_gate()?;
        let elem = std::mem::size_of::<T>() as u64;
        if src.len() != indices.len() {
            return Err(DeviceError::BadLaunch(
                "scatter: src/index length mismatch".into(),
            ));
        }
        if let Some(&bad) = indices.as_slice().iter().find(|&&i| i as usize >= out_len) {
            return Err(DeviceError::BadLaunch(format!(
                "scatter index {bad} out of range for output of length {out_len}"
            )));
        }
        let mut out = self.alloc::<T>(out_len)?;
        self.charge_kernel(
            "scatter",
            KernelCost::new(src.len() as u64, src.len() as u64 * (elem * 2 + 4)),
        );
        let s = src.as_slice();
        let idx = indices.as_slice();
        let o = out.as_mut_slice();
        for i in 0..s.len() {
            o[idx[i] as usize] = s[i];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuProfile;

    fn dev() -> Device {
        Device::new(GpuProfile::k40())
    }

    #[test]
    fn gather_permutes_by_stencil() {
        let d = dev();
        let src = d.h2d(&[10u64, 20, 30]).unwrap();
        let idx = d.h2d(&[2u32, 0, 1, 2]).unwrap();
        let out = d.gather(&src, &idx).unwrap();
        assert_eq!(d.d2h(&out), vec![30, 10, 20, 30]);
    }

    #[test]
    fn gather_rejects_out_of_range() {
        let d = dev();
        let src = d.h2d(&[1u32]).unwrap();
        let idx = d.h2d(&[1u32]).unwrap();
        assert!(matches!(
            d.gather(&src, &idx),
            Err(DeviceError::BadLaunch(_))
        ));
    }

    #[test]
    fn scatter_inverts_gather_for_permutations() {
        let d = dev();
        let src = d.h2d(&[5u64, 6, 7]).unwrap();
        let perm = d.h2d(&[2u32, 0, 1]).unwrap();
        let scattered = d.scatter(&src, &perm, 3).unwrap();
        assert_eq!(d.d2h(&scattered), vec![6, 7, 5]);
        let gathered = d.gather(&scattered, &perm).unwrap();
        assert_eq!(d.d2h(&gathered), d.d2h(&src));
    }

    #[test]
    fn scatter_validates_lengths_and_range() {
        let d = dev();
        let src = d.h2d(&[1u32, 2]).unwrap();
        let idx = d.h2d(&[0u32]).unwrap();
        assert!(d.scatter(&src, &idx, 4).is_err());
        let idx2 = d.h2d(&[0u32, 9]).unwrap();
        assert!(d.scatter(&src, &idx2, 4).is_err());
    }

    #[test]
    fn empty_gather_and_scatter() {
        let d = dev();
        let src = d.h2d::<u64>(&[]).unwrap();
        let idx = d.h2d::<u32>(&[]).unwrap();
        assert!(d.d2h(&d.gather(&src, &idx).unwrap()).is_empty());
        assert_eq!(d.d2h(&d.scatter(&src, &idx, 0).unwrap()), Vec::<u64>::new());
    }
}
