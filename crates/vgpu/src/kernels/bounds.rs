//! Vectorized lower/upper bound kernels.
//!
//! Algorithm 2 (overlap detection) computes, for every suffix fingerprint,
//! its lower bound `L`, upper bound `U`, and count `C = U - L` in the sorted
//! prefix-fingerprint window — `GPU_VEC_LOWER_BOUND`, `GPU_VEC_UPPER_BOUND`
//! and `GPU_VEC_DIFFERENCE` in the paper's pseudo-code. These map to
//! Thrust's `lower_bound`/`upper_bound` over a searched range.

use crate::buffer::DeviceBuffer;
use crate::device::Device;
use crate::kernels::radix::RadixKey;
use crate::stats::KernelCost;
use rayon::prelude::*;

fn search_cost<K>(needles: usize, haystack: usize) -> KernelCost {
    let log = (haystack.max(2) as f64).log2().ceil() as u64;
    KernelCost::new(
        needles as u64 * log,
        needles as u64 * (log * std::mem::size_of::<K>() as u64 + 4),
    )
}

impl Device {
    /// For each needle, the index of the first element of `haystack` that is
    /// `>=` the needle. `haystack` must be sorted ascending.
    pub fn vec_lower_bound<K: RadixKey>(
        &self,
        needles: &DeviceBuffer<K>,
        haystack: &DeviceBuffer<K>,
    ) -> crate::Result<DeviceBuffer<u32>> {
        self.launch_gate()?;
        let mut out = self.alloc::<u32>(needles.len())?;
        self.charge_kernel(
            "vec_lower_bound",
            search_cost::<K>(needles.len(), haystack.len()),
        );
        let hay = haystack.as_slice();
        needles
            .as_slice()
            .par_iter()
            .zip(out.as_mut_slice().par_iter_mut())
            .for_each(|(n, o)| *o = hay.partition_point(|h| h < n) as u32);
        Ok(out)
    }

    /// For each needle, the index one past the last element of `haystack`
    /// that is `<=` the needle. `haystack` must be sorted ascending.
    pub fn vec_upper_bound<K: RadixKey>(
        &self,
        needles: &DeviceBuffer<K>,
        haystack: &DeviceBuffer<K>,
    ) -> crate::Result<DeviceBuffer<u32>> {
        self.launch_gate()?;
        let mut out = self.alloc::<u32>(needles.len())?;
        self.charge_kernel(
            "vec_upper_bound",
            search_cost::<K>(needles.len(), haystack.len()),
        );
        let hay = haystack.as_slice();
        needles
            .as_slice()
            .par_iter()
            .zip(out.as_mut_slice().par_iter_mut())
            .for_each(|(n, o)| *o = hay.partition_point(|h| h <= n) as u32);
        Ok(out)
    }

    /// Element-wise `u - l` (the paper's `GPU_VEC_DIFFERENCE`): the number of
    /// occurrences of each searched key.
    pub fn vec_difference(
        &self,
        upper: &DeviceBuffer<u32>,
        lower: &DeviceBuffer<u32>,
    ) -> crate::Result<DeviceBuffer<u32>> {
        self.launch_gate()?;
        debug_assert_eq!(upper.len(), lower.len());
        let mut out = self.alloc::<u32>(upper.len())?;
        self.charge_kernel(
            "vec_difference",
            KernelCost::new(upper.len() as u64, upper.len() as u64 * 12),
        );
        out.as_mut_slice()
            .par_iter_mut()
            .zip(upper.as_slice().par_iter().zip(lower.as_slice().par_iter()))
            .for_each(|(o, (u, l))| *o = u - l);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuProfile;
    use proptest::prelude::*;

    fn dev() -> Device {
        Device::new(GpuProfile::k40())
    }

    #[test]
    fn bounds_on_array_with_runs() {
        let d = dev();
        let hay = d.h2d(&[2u64, 4, 4, 4, 9]).unwrap();
        let needles = d.h2d(&[1u64, 2, 4, 5, 9, 10]).unwrap();
        let lo = d.vec_lower_bound(&needles, &hay).unwrap();
        let up = d.vec_upper_bound(&needles, &hay).unwrap();
        assert_eq!(d.d2h(&lo), vec![0, 0, 1, 4, 4, 5]);
        assert_eq!(d.d2h(&up), vec![0, 1, 4, 4, 5, 5]);
        let c = d.vec_difference(&up, &lo).unwrap();
        assert_eq!(d.d2h(&c), vec![0, 1, 3, 0, 1, 0]);
    }

    #[test]
    fn empty_haystack_gives_zero_bounds() {
        let d = dev();
        let hay = d.h2d::<u64>(&[]).unwrap();
        let needles = d.h2d(&[3u64]).unwrap();
        assert_eq!(d.d2h(&d.vec_lower_bound(&needles, &hay).unwrap()), vec![0]);
        assert_eq!(d.d2h(&d.vec_upper_bound(&needles, &hay).unwrap()), vec![0]);
    }

    #[test]
    fn empty_needles_give_empty_output() {
        let d = dev();
        let hay = d.h2d(&[1u64, 2]).unwrap();
        let needles = d.h2d::<u64>(&[]).unwrap();
        assert!(d
            .d2h(&d.vec_lower_bound(&needles, &hay).unwrap())
            .is_empty());
    }

    #[test]
    fn works_for_u128_keys() {
        let d = dev();
        let hay = d.h2d(&[1u128 << 90, 1 << 100]).unwrap();
        let needles = d.h2d(&[1u128 << 95]).unwrap();
        assert_eq!(d.d2h(&d.vec_lower_bound(&needles, &hay).unwrap()), vec![1]);
    }

    proptest! {
        #[test]
        fn count_matches_naive_occurrences(
            mut hay in prop::collection::vec(0u64..50, 0..120),
            needles in prop::collection::vec(0u64..50, 0..60),
        ) {
            hay.sort_unstable();
            let d = dev();
            let hb = d.h2d(&hay).unwrap();
            let nb = d.h2d(&needles).unwrap();
            let lo = d.vec_lower_bound(&nb, &hb).unwrap();
            let up = d.vec_upper_bound(&nb, &hb).unwrap();
            let c = d.vec_difference(&up, &lo).unwrap();
            let counts = d.d2h(&c);
            let lows = d.d2h(&lo);
            for (i, n) in needles.iter().enumerate() {
                let naive = hay.iter().filter(|h| *h == n).count() as u32;
                prop_assert_eq!(counts[i], naive);
                if naive > 0 {
                    // Lower bound points at the first occurrence.
                    prop_assert_eq!(hay[lows[i] as usize], *n);
                }
            }
        }
    }
}
