//! Device merge of two sorted key-value runs (the `GPU_MERGE` step of the
//! paper's Algorithm 1, line 16).

use crate::buffer::DeviceBuffer;
use crate::device::{Device, DeviceError};
use crate::kernels::radix::RadixKey;
use crate::stats::KernelCost;

impl Device {
    /// Merge two key-sorted runs into a freshly allocated sorted run.
    /// Stable: on equal keys, elements of `a` precede elements of `b`.
    pub fn merge_pairs<K: RadixKey>(
        &self,
        a_keys: &DeviceBuffer<K>,
        a_vals: &DeviceBuffer<u32>,
        b_keys: &DeviceBuffer<K>,
        b_vals: &DeviceBuffer<u32>,
    ) -> crate::Result<(DeviceBuffer<K>, DeviceBuffer<u32>)> {
        self.launch_gate()?;
        if a_keys.len() != a_vals.len() || b_keys.len() != b_vals.len() {
            return Err(DeviceError::BadLaunch(
                "merge_pairs: key/value length mismatch".into(),
            ));
        }
        let n = a_keys.len() + b_keys.len();
        let mut out_k = self.alloc::<K>(n)?;
        let mut out_v = self.alloc::<u32>(n)?;

        let pair_bytes = (std::mem::size_of::<K>() + 4) as u64;
        // Path-merging with wide keys sustains about half of streaming
        // bandwidth (diverging binary probes); see the matching note in
        // the radix kernel.
        self.charge_kernel(
            "merge_pairs",
            KernelCost::new(n as u64, n as u64 * pair_bytes * 2 * 2),
        );

        let (ak, av) = (a_keys.as_slice(), a_vals.as_slice());
        let (bk, bv) = (b_keys.as_slice(), b_vals.as_slice());
        let (ok, ov) = (out_k.as_mut_slice(), out_v.as_mut_slice());
        let (mut i, mut j) = (0usize, 0usize);
        for o in 0..n {
            let take_a = j >= bk.len() || (i < ak.len() && ak[i] <= bk[j]);
            if take_a {
                ok[o] = ak[i];
                ov[o] = av[i];
                i += 1;
            } else {
                ok[o] = bk[j];
                ov[o] = bv[j];
                j += 1;
            }
        }
        Ok((out_k, out_v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuProfile;
    use proptest::prelude::*;

    fn merge(a: &[(u64, u32)], b: &[(u64, u32)]) -> Vec<(u64, u32)> {
        let dev = Device::new(GpuProfile::k40());
        let ak = dev.h2d(&a.iter().map(|p| p.0).collect::<Vec<_>>()).unwrap();
        let av = dev.h2d(&a.iter().map(|p| p.1).collect::<Vec<_>>()).unwrap();
        let bk = dev.h2d(&b.iter().map(|p| p.0).collect::<Vec<_>>()).unwrap();
        let bv = dev.h2d(&b.iter().map(|p| p.1).collect::<Vec<_>>()).unwrap();
        let (ok, ov) = dev.merge_pairs(&ak, &av, &bk, &bv).unwrap();
        dev.d2h(&ok).into_iter().zip(dev.d2h(&ov)).collect()
    }

    #[test]
    fn merges_interleaved_runs() {
        let got = merge(&[(1, 10), (4, 40)], &[(2, 20), (3, 30), (5, 50)]);
        assert_eq!(got, vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
    }

    #[test]
    fn merge_with_empty_side_copies_other() {
        assert_eq!(merge(&[], &[(7, 70)]), vec![(7, 70)]);
        assert_eq!(merge(&[(7, 70)], &[]), vec![(7, 70)]);
        assert_eq!(merge(&[], &[]), vec![]);
    }

    #[test]
    fn equal_keys_prefer_left_run() {
        let got = merge(&[(5, 1)], &[(5, 2)]);
        assert_eq!(got, vec![(5, 1), (5, 2)]);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let dev = Device::new(GpuProfile::k40());
        let k = dev.h2d(&[1u64]).unwrap();
        let v = dev.h2d(&[1u32, 2]).unwrap();
        let e = dev.h2d::<u64>(&[]).unwrap();
        let ev = dev.h2d::<u32>(&[]).unwrap();
        assert!(dev.merge_pairs(&k, &v, &e, &ev).is_err());
    }

    proptest! {
        #[test]
        fn merge_equals_sorted_concat(
            mut a in prop::collection::vec((any::<u64>(), any::<u32>()), 0..150),
            mut b in prop::collection::vec((any::<u64>(), any::<u32>()), 0..150),
        ) {
            a.sort_by_key(|p| p.0);
            b.sort_by_key(|p| p.0);
            let got = merge(&a, &b);
            let mut expect = [a, b].concat();
            expect.sort_by_key(|p| p.0);
            let got_keys: Vec<u64> = got.iter().map(|p| p.0).collect();
            let exp_keys: Vec<u64> = expect.iter().map(|p| p.0).collect();
            prop_assert_eq!(got_keys, exp_keys);
        }
    }
}
