//! LSD radix sort of key-value pairs on the device.
//!
//! The paper cites Merrill & Grimshaw's GPU radix sort (reference \[38\]) for the O(m_d)
//! per-chunk sorting bound. We implement the classic least-significant-digit
//! radix sort over 8-bit digits with a double buffer, which has the same
//! asymptotics and, importantly for the timing model, the same memory
//! traffic structure: `key-bytes` passes, each streaming every pair twice.

use crate::buffer::DeviceBuffer;
use crate::device::{Device, DeviceError};
use crate::stats::KernelCost;

/// Keys sortable by byte-wise LSD radix passes.
pub trait RadixKey: Copy + Ord + Default + Send + Sync {
    /// Width of the key in bytes (= number of radix passes).
    const BYTES: usize;
    /// The `i`-th least-significant byte of the key.
    fn byte(&self, i: usize) -> u8;
}

impl RadixKey for u32 {
    const BYTES: usize = 4;
    fn byte(&self, i: usize) -> u8 {
        (*self >> (8 * i)) as u8
    }
}

impl RadixKey for u64 {
    const BYTES: usize = 8;
    fn byte(&self, i: usize) -> u8 {
        (*self >> (8 * i)) as u8
    }
}

impl RadixKey for u128 {
    const BYTES: usize = 16;
    fn byte(&self, i: usize) -> u8 {
        (*self >> (8 * i)) as u8
    }
}

impl Device {
    /// Sort `keys` (and `vals` along with them) in place, ascending and
    /// stable. Allocates a same-sized double buffer on the device, so the
    /// chunk must leave at least half the device free — the same constraint
    /// that makes the paper's device block-size m_d at most half the card.
    pub fn sort_pairs<K: RadixKey>(
        &self,
        keys: &mut DeviceBuffer<K>,
        vals: &mut DeviceBuffer<u32>,
    ) -> crate::Result<()> {
        self.launch_gate()?;
        if keys.len() != vals.len() {
            return Err(DeviceError::BadLaunch(format!(
                "sort_pairs: {} keys vs {} values",
                keys.len(),
                vals.len()
            )));
        }
        let n = keys.len();
        let mut scratch_k = self.alloc::<K>(n)?;
        let mut scratch_v = self.alloc::<u32>(n)?;

        let pair_bytes = (std::mem::size_of::<K>() + 4) as u64;
        let passes = K::BYTES as u64;
        // Wide-key sorts (128-bit fingerprints exceed Thrust's native key
        // types) sustain roughly a quarter of streaming bandwidth on real
        // devices — scattered digit writes defeat coalescing. The 4×
        // inflation keeps the cross-GPU separation of the paper's Fig. 9
        // visible over the disk time.
        const SORT_EFFICIENCY_INV: u64 = 4;
        self.charge_kernel(
            "radix_sort_pairs",
            KernelCost::new(
                passes * n as u64 * 2,
                passes * n as u64 * pair_bytes * 2 * SORT_EFFICIENCY_INV,
            ),
        );

        let mut src_k = keys.as_mut_slice();
        let mut src_v = vals.as_mut_slice();
        let mut dst_k = scratch_k.as_mut_slice();
        let mut dst_v = scratch_v.as_mut_slice();
        let mut flipped = false;

        for pass in 0..K::BYTES {
            // Counting pass.
            let mut counts = [0usize; 256];
            for k in src_k.iter() {
                counts[k.byte(pass) as usize] += 1;
            }
            // Exclusive prefix sum over digit counts.
            let mut offsets = [0usize; 256];
            let mut total = 0;
            for d in 0..256 {
                offsets[d] = total;
                total += counts[d];
            }
            // Stable scatter.
            for i in 0..n {
                let d = src_k[i].byte(pass) as usize;
                let o = offsets[d];
                offsets[d] += 1;
                dst_k[o] = src_k[i];
                dst_v[o] = src_v[i];
            }
            std::mem::swap(&mut src_k, &mut dst_k);
            std::mem::swap(&mut src_v, &mut dst_v);
            flipped = !flipped;
        }

        if flipped {
            // Result lives in the scratch buffers; copy back.
            dst_k.copy_from_slice(src_k);
            dst_v.copy_from_slice(src_v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuProfile;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::new(GpuProfile::k40())
    }

    fn sort_on_device<K: RadixKey>(keys: &[K], vals: &[u32]) -> (Vec<K>, Vec<u32>) {
        let dev = device();
        let mut k = dev.h2d(keys).unwrap();
        let mut v = dev.h2d(vals).unwrap();
        dev.sort_pairs(&mut k, &mut v).unwrap();
        (dev.d2h(&k), dev.d2h(&v))
    }

    #[test]
    fn sorts_small_u64_input() {
        let (k, v) = sort_on_device(&[5u64, 3, 9, 1], &[50, 30, 90, 10]);
        assert_eq!(k, vec![1, 3, 5, 9]);
        assert_eq!(v, vec![10, 30, 50, 90]);
    }

    #[test]
    fn sorts_u128_keys() {
        let big = u128::MAX - 5;
        let (k, v) = sort_on_device(&[big, 0, 1 << 100, 42], &[0, 1, 2, 3]);
        assert_eq!(k, vec![0, 42, 1 << 100, big]);
        assert_eq!(v, vec![1, 3, 2, 0]);
    }

    #[test]
    fn sort_is_stable_for_duplicate_keys() {
        let keys = vec![7u64, 7, 7, 3, 3];
        let vals = vec![0, 1, 2, 3, 4];
        let (k, v) = sort_on_device(&keys, &vals);
        assert_eq!(k, vec![3, 3, 7, 7, 7]);
        assert_eq!(v, vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn empty_input_is_fine() {
        let (k, v) = sort_on_device::<u64>(&[], &[]);
        assert!(k.is_empty() && v.is_empty());
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let dev = device();
        let mut k = dev.h2d(&[1u64]).unwrap();
        let mut v = dev.h2d(&[1u32, 2]).unwrap();
        assert!(matches!(
            dev.sort_pairs(&mut k, &mut v),
            Err(DeviceError::BadLaunch(_))
        ));
    }

    #[test]
    fn sort_fails_when_scratch_does_not_fit() {
        // Capacity fits the input but not the double buffer.
        let dev = Device::with_capacity(GpuProfile::k40(), 1500);
        let keys: Vec<u64> = (0..100).rev().collect();
        let vals: Vec<u32> = (0..100).collect();
        let mut k = dev.h2d(&keys).unwrap(); // 800 B
        let mut v = dev.h2d(&vals).unwrap(); // 400 B -> 1200 used, scratch needs 1200 more
        assert!(matches!(
            dev.sort_pairs(&mut k, &mut v),
            Err(DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn scratch_is_released_after_sort() {
        let dev = device();
        let mut k = dev.h2d(&[2u64, 1]).unwrap();
        let mut v = dev.h2d(&[0u32, 1]).unwrap();
        let before = dev.stats().mem_used;
        dev.sort_pairs(&mut k, &mut v).unwrap();
        assert_eq!(dev.stats().mem_used, before);
    }

    #[test]
    fn radix_key_bytes_match_type_widths() {
        assert_eq!(<u32 as RadixKey>::BYTES, 4);
        assert_eq!(<u64 as RadixKey>::BYTES, 8);
        assert_eq!(<u128 as RadixKey>::BYTES, 16);
        assert_eq!(0xAB00u64.byte(1), 0xAB);
        assert_eq!((0x5u128 << 120).byte(15), 0x05);
    }

    proptest! {
        #[test]
        fn matches_std_sort_u64(pairs in prop::collection::vec((any::<u64>(), any::<u32>()), 0..300)) {
            let keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let vals: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let (got_k, got_v) = sort_on_device(&keys, &vals);

            let mut expect: Vec<(u64, u32)> = pairs.clone();
            expect.sort_by_key(|p| p.0);
            let exp_k: Vec<u64> = expect.iter().map(|p| p.0).collect();
            prop_assert_eq!(got_k, exp_k);
            // Stability: for equal keys values keep input order, which
            // std's stable sort_by_key also guarantees.
            let exp_v: Vec<u32> = expect.iter().map(|p| p.1).collect();
            prop_assert_eq!(got_v, exp_v);
        }

        #[test]
        fn matches_std_sort_u128(pairs in prop::collection::vec((any::<u128>(), any::<u32>()), 0..200)) {
            let keys: Vec<u128> = pairs.iter().map(|p| p.0).collect();
            let vals: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let (got_k, _) = sort_on_device(&keys, &vals);
            let mut exp = keys.clone();
            exp.sort_unstable();
            prop_assert_eq!(got_k, exp);
        }
    }
}
