//! The virtual device: allocation accounting, transfers, and time charging.

use crate::buffer::DeviceBuffer;
use crate::profile::GpuProfile;
use crate::stats::{DeviceStats, KernelCost, KernelStat, LAUNCH_OVERHEAD_S};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors surfaced by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation would exceed the device capacity.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes currently in use.
        in_use: u64,
        /// Configured capacity.
        capacity: u64,
    },
    /// Kernel arguments were inconsistent (e.g. key/value length mismatch).
    BadLaunch(String),
    /// A deterministic injected fault (see `faultsim` and ROBUSTNESS.md).
    Fault(faultsim::FaultError),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use} B in use of {capacity} B"
            ),
            DeviceError::BadLaunch(msg) => write!(f, "bad kernel launch: {msg}"),
            DeviceError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<faultsim::FaultError> for DeviceError {
    fn from(e: faultsim::FaultError) -> Self {
        DeviceError::Fault(e)
    }
}

#[derive(Debug)]
pub(crate) struct DeviceInner {
    pub(crate) capacity: u64,
    used: AtomicU64,
    peak: AtomicU64,
    counters: Mutex<Counters>,
    recorder: Mutex<obs::Recorder>,
    faults: Mutex<faultsim::Faults>,
}

#[derive(Debug, Default)]
struct Counters {
    kernel_launches: u64,
    kernel_seconds: f64,
    h2d_bytes: u64,
    d2h_bytes: u64,
    transfer_seconds: f64,
    per_kernel: BTreeMap<String, KernelStat>,
}

impl DeviceInner {
    fn reserve(&self, bytes: u64) -> Result<(), DeviceError> {
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let next = current + bytes;
            if next > self.capacity {
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    in_use: current,
                    capacity: self.capacity,
                });
            }
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => current = actual,
            }
        }
    }

    pub(crate) fn release(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// A virtual GPU.
///
/// Cheap to clone (all clones share allocation accounting and statistics),
/// which mirrors how multiple host threads share one physical device.
#[derive(Clone)]
pub struct Device {
    profile: GpuProfile,
    inner: Arc<DeviceInner>,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("profile", &self.profile.name)
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Device {
    /// A device with the full physical memory of `profile`.
    pub fn new(profile: GpuProfile) -> Self {
        let capacity = profile.device_mem_bytes;
        Self::with_capacity(profile, capacity)
    }

    /// A device whose usable memory is capped at `capacity` bytes. Used by
    /// the scaled-down experiments: a "12 GB K40" at scale 20,000 becomes a
    /// device with ~600 KB of usable memory but K40 bandwidth ratios.
    pub fn with_capacity(profile: GpuProfile, capacity: u64) -> Self {
        Device {
            profile,
            inner: Arc::new(DeviceInner {
                capacity,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                counters: Mutex::new(Counters::default()),
                recorder: Mutex::new(obs::Recorder::disabled()),
                faults: Mutex::new(faultsim::Faults::disabled()),
            }),
        }
    }

    /// The product profile this device models.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Attach an [`obs::Recorder`]: subsequent kernel launches emit
    /// `kernel.launches` / `kernel.seconds` events on the recorder's
    /// current span, and [`crate::exec::launch`] opens a `kernel:<name>`
    /// span per launch. Shared by all clones of this device.
    pub fn set_recorder(&self, recorder: obs::Recorder) {
        *self.inner.recorder.lock() = recorder;
    }

    /// The recorder attached via [`Device::set_recorder`]
    /// ([`obs::Recorder::disabled`] by default).
    pub fn recorder(&self) -> obs::Recorder {
        self.inner.recorder.lock().clone()
    }

    /// Arm fault injection: every public kernel method checks the
    /// `vgpu.launch` failpoint before running. Shared by all clones.
    pub fn set_faults(&self, faults: faultsim::Faults) {
        *self.inner.faults.lock() = faults;
    }

    /// The fault registry in effect (disabled by default).
    pub fn faults(&self) -> faultsim::Faults {
        self.inner.faults.lock().clone()
    }

    /// Check the `vgpu.launch` failpoint; kernel methods call this first so
    /// "fail the Nth kernel launch" aborts before any work or charging.
    pub(crate) fn launch_gate(&self) -> crate::Result<()> {
        self.inner
            .faults
            .lock()
            .hit(faultsim::KERNEL_LAUNCH)
            .map_err(DeviceError::from)?;
        Ok(())
    }

    /// Usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Allocate an uninitialized (zeroed) buffer of `len` elements.
    pub fn alloc<T: Default + Clone>(&self, len: usize) -> crate::Result<DeviceBuffer<T>> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        self.inner.reserve(bytes)?;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            bytes,
            owner: Arc::clone(&self.inner),
        })
    }

    /// Copy a host slice into a fresh device buffer, charging PCIe time.
    pub fn h2d<T: Clone>(&self, host: &[T]) -> crate::Result<DeviceBuffer<T>> {
        let bytes = std::mem::size_of_val(host) as u64;
        self.inner.reserve(bytes)?;
        let seconds = bytes as f64 / self.profile.pcie_bytes_per_s();
        {
            let mut c = self.inner.counters.lock();
            c.h2d_bytes += bytes;
            c.transfer_seconds += seconds;
        }
        Ok(DeviceBuffer {
            data: host.to_vec(),
            bytes,
            owner: Arc::clone(&self.inner),
        })
    }

    /// Copy a device buffer back to the host, charging PCIe time.
    pub fn d2h<T: Clone>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let bytes = buf.bytes();
        let seconds = bytes as f64 / self.profile.pcie_bytes_per_s();
        let mut c = self.inner.counters.lock();
        c.d2h_bytes += bytes;
        c.transfer_seconds += seconds;
        buf.data.clone()
    }

    /// Charge one kernel launch of the given cost to the device clock.
    /// Kernels in [`crate::kernels`] call this; custom kernels built on
    /// [`crate::exec`] do too.
    pub fn charge_kernel(&self, name: &str, cost: KernelCost) {
        let compute_s = cost.flops as f64 / self.profile.compute_ops_per_s();
        let memory_s = cost.bytes as f64 / self.profile.sustained_mem_bytes_per_s();
        let seconds = compute_s.max(memory_s) + LAUNCH_OVERHEAD_S;
        {
            let mut c = self.inner.counters.lock();
            c.kernel_launches += 1;
            c.kernel_seconds += seconds;
            let entry = c.per_kernel.entry(name.to_string()).or_default();
            entry.launches += 1;
            entry.flops += cost.flops;
            entry.bytes += cost.bytes;
            entry.seconds += seconds;
        }
        let rec = self.recorder();
        if rec.is_enabled() {
            rec.counter("kernel.launches", 1);
            rec.metric("kernel.seconds", seconds);
        }
    }

    /// Charge PCIe traffic without materializing buffers — used by fused
    /// pipelines that stage data through the device (e.g. fingerprint
    /// batches whose outputs stream straight into partition files).
    pub fn charge_transfer(&self, h2d_bytes: u64, d2h_bytes: u64) {
        let seconds = (h2d_bytes + d2h_bytes) as f64 / self.profile.pcie_bytes_per_s();
        let mut c = self.inner.counters.lock();
        c.h2d_bytes += h2d_bytes;
        c.d2h_bytes += d2h_bytes;
        c.transfer_seconds += seconds;
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> DeviceStats {
        let c = self.inner.counters.lock();
        DeviceStats {
            kernel_launches: c.kernel_launches,
            kernel_seconds: c.kernel_seconds,
            h2d_bytes: c.h2d_bytes,
            d2h_bytes: c.d2h_bytes,
            transfer_seconds: c.transfer_seconds,
            mem_used: self.inner.used.load(Ordering::Relaxed),
            mem_peak: self.inner.peak.load(Ordering::Relaxed),
            per_kernel: c.per_kernel.clone(),
        }
    }

    /// Reset the peak-memory watermark (used between pipeline phases when
    /// reporting per-phase peaks, Tables IV/V).
    pub fn reset_peak(&self) {
        self.inner
            .peak
            .store(self.inner.used.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Largest number of `T` elements that fit in the *remaining* device
    /// memory, after reserving `reserved_fraction` of capacity for scratch
    /// space (sorting needs double buffers).
    pub fn elements_that_fit<T>(&self, reserved_fraction: f64) -> usize {
        let usable = (self.inner.capacity as f64 * (1.0 - reserved_fraction)) as u64;
        (usable as usize) / std::mem::size_of::<T>().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_is_reported_with_context() {
        let dev = Device::with_capacity(GpuProfile::k20x(), 64);
        let _a = dev.alloc::<u64>(4).unwrap(); // 32 bytes
        let err = dev.alloc::<u64>(8).unwrap_err(); // needs 64 more
        match err {
            DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => {
                assert_eq!(requested, 64);
                assert_eq!(in_use, 32);
                assert_eq!(capacity, 64);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn transfers_accumulate_bytes_and_time() {
        let dev = Device::new(GpuProfile::k40());
        let buf = dev.h2d(&[0u8; 1000]).unwrap();
        let _ = dev.d2h(&buf);
        let stats = dev.stats();
        assert_eq!(stats.h2d_bytes, 1000);
        assert_eq!(stats.d2h_bytes, 1000);
        assert!(stats.transfer_seconds > 0.0);
    }

    #[test]
    fn kernel_time_is_roofline_bound() {
        let dev = Device::new(GpuProfile::k40());
        // Pure-compute kernel: time tracks flops.
        dev.charge_kernel("compute", KernelCost::new(1_000_000_000, 0));
        let t1 = dev.stats().kernel_seconds;
        // Pure-memory kernel with traffic that takes much longer than the
        // flops would.
        dev.charge_kernel("memory", KernelCost::new(0, 100_000_000_000));
        let t2 = dev.stats().kernel_seconds - t1;
        let expected_mem = 100_000_000_000.0 / GpuProfile::k40().sustained_mem_bytes_per_s();
        assert!((t2 - expected_mem - LAUNCH_OVERHEAD_S).abs() / expected_mem < 1e-9);
    }

    #[test]
    fn faster_device_charges_less_time_for_same_kernel() {
        let cost = KernelCost::new(1_000_000, 1_000_000_000);
        let k40 = Device::new(GpuProfile::k40());
        let v100 = Device::new(GpuProfile::v100());
        k40.charge_kernel("k", cost);
        v100.charge_kernel("k", cost);
        assert!(v100.stats().kernel_seconds < k40.stats().kernel_seconds);
    }

    #[test]
    fn clones_share_accounting() {
        let dev = Device::with_capacity(GpuProfile::k40(), 1024);
        let clone = dev.clone();
        let _buf = clone.alloc::<u8>(512).unwrap();
        assert_eq!(dev.stats().mem_used, 512);
    }

    #[test]
    fn reset_peak_rebases_to_current_usage() {
        let dev = Device::with_capacity(GpuProfile::k40(), 1024);
        {
            let _big = dev.alloc::<u8>(1000).unwrap();
        }
        assert_eq!(dev.stats().mem_peak, 1000);
        let _small = dev.alloc::<u8>(10).unwrap();
        dev.reset_peak();
        assert_eq!(dev.stats().mem_peak, 10);
    }

    #[test]
    fn armed_launch_failpoint_fails_the_nth_kernel_method() {
        let dev = Device::new(GpuProfile::k40());
        dev.set_faults(faultsim::Faults::from_plan(
            &faultsim::FaultPlan::new().fail_at(faultsim::KERNEL_LAUNCH, 2),
        ));
        let a = dev.h2d(&[5u32, 1, 3]).unwrap();
        let b = dev.h2d(&[2u32, 4]).unwrap();
        // First launch passes, second fails, third (retry) passes again.
        assert!(dev.gather(&a, &dev.h2d(&[0u32]).unwrap()).is_ok());
        let err = dev.gather(&a, &b).unwrap_err();
        assert!(matches!(err, DeviceError::Fault(_)), "got {err}");
        assert!(dev.gather(&a, &dev.h2d(&[1u32]).unwrap()).is_ok());
    }

    #[test]
    fn elements_that_fit_respects_reserved_fraction() {
        let dev = Device::with_capacity(GpuProfile::k40(), 1000);
        assert_eq!(dev.elements_that_fit::<u64>(0.0), 125);
        assert_eq!(dev.elements_that_fit::<u64>(0.5), 62);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::kernels::radix::RadixKey;

    #[test]
    fn u32_keys_sort_correctly_with_fewer_passes() {
        let dev = Device::new(GpuProfile::k40());
        let keys: Vec<u32> = (0..500).map(|i| (i * 2654435761u64 % 97) as u32).collect();
        let vals: Vec<u32> = (0..500).collect();
        let mut dk = dev.h2d(&keys).unwrap();
        let mut dv = dev.h2d(&vals).unwrap();
        dev.sort_pairs(&mut dk, &mut dv).unwrap();
        let got = dev.d2h(&dk);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
        // u32 keys take 4 radix passes, u128 take 16: flop accounting
        // must reflect the narrower key.
        let stat = &dev.stats().per_kernel["radix_sort_pairs"];
        assert_eq!(stat.flops, <u32 as RadixKey>::BYTES as u64 * 500 * 2);
    }

    #[test]
    fn concurrent_allocations_respect_capacity() {
        let dev = Device::with_capacity(GpuProfile::k40(), 10_000);
        let failures = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let dev = dev.clone();
                let failures = &failures;
                s.spawn(move || {
                    for _ in 0..50 {
                        match dev.alloc::<u8>(400) {
                            Ok(buf) => {
                                assert!(dev.stats().mem_used <= 10_000);
                                drop(buf);
                            }
                            Err(_) => {
                                failures.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        // All buffers dropped: accounting returns to zero regardless of
        // how the threads interleaved.
        assert_eq!(dev.stats().mem_used, 0);
        assert!(dev.stats().mem_peak <= 10_000);
    }

    #[test]
    fn kernel_stats_are_thread_safe() {
        let dev = Device::new(GpuProfile::k40());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let dev = dev.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        dev.charge_kernel("t", KernelCost::new(1, 1));
                    }
                });
            }
        });
        assert_eq!(dev.stats().kernel_launches, 400);
        assert_eq!(dev.stats().per_kernel["t"].launches, 400);
    }
}
