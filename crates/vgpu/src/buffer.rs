//! Device-resident buffers.

use crate::device::DeviceInner;
use std::sync::Arc;

/// A typed allocation in virtual device memory.
///
/// Created by [`crate::Device::alloc`] / [`crate::Device::h2d`]; the bytes it
/// occupies count against the device capacity until it is dropped. The
/// backing store is host RAM — the point is the *accounting*, which makes
/// out-of-memory behave exactly like `cudaMalloc` failing on a 6 GB card.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    pub(crate) data: Vec<T>,
    pub(crate) bytes: u64,
    pub(crate) owner: Arc<DeviceInner>,
}

impl<T> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes this buffer charges against device capacity.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Device-side view of the contents. Reading it does *not* model a
    /// transfer — use [`crate::Device::d2h`] when data crosses back to the
    /// host so the PCIe traffic is charged.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable device-side view (for in-place kernels).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Shrink the buffer to `len` elements, releasing the freed bytes back
    /// to the device. Mirrors the paper's `RESIZE` step in Algorithms 1/2.
    ///
    /// # Panics
    /// Panics if `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        assert!(
            len <= self.data.len(),
            "truncate({len}) beyond buffer length {}",
            self.data.len()
        );
        let elem = std::mem::size_of::<T>() as u64;
        let freed = (self.data.len() - len) as u64 * elem;
        self.data.truncate(len);
        self.data.shrink_to_fit();
        self.bytes -= freed;
        self.owner.release(freed);
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.owner.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Device, GpuProfile};

    fn tiny_device() -> Device {
        Device::with_capacity(GpuProfile::k40(), 1024)
    }

    #[test]
    fn alloc_and_drop_balance_usage() {
        let dev = tiny_device();
        {
            let buf = dev.alloc::<u64>(16).unwrap();
            assert_eq!(buf.len(), 16);
            assert_eq!(dev.stats().mem_used, 128);
        }
        assert_eq!(dev.stats().mem_used, 0);
        assert_eq!(dev.stats().mem_peak, 128);
    }

    #[test]
    fn truncate_releases_bytes() {
        let dev = tiny_device();
        let mut buf = dev.h2d(&[1u64, 2, 3, 4]).unwrap();
        assert_eq!(dev.stats().mem_used, 32);
        buf.truncate(1);
        assert_eq!(buf.len(), 1);
        assert_eq!(dev.stats().mem_used, 8);
        assert_eq!(buf.as_slice(), &[1]);
    }

    #[test]
    #[should_panic(expected = "beyond buffer length")]
    fn truncate_growing_panics() {
        let dev = tiny_device();
        let mut buf = dev.h2d(&[1u8]).unwrap();
        buf.truncate(2);
    }

    #[test]
    fn zero_len_buffer_is_empty() {
        let dev = tiny_device();
        let buf = dev.alloc::<u32>(0).unwrap();
        assert!(buf.is_empty());
        assert_eq!(buf.bytes(), 0);
    }
}
