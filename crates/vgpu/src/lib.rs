//! # vgpu — a virtual GPU device
//!
//! LaSAGNA (Goswami et al., IPDPS 2018) runs its map/sort/reduce kernels on
//! CUDA devices. This crate substitutes a *virtual* device that reproduces
//! the properties the paper's algorithms depend on:
//!
//! * a **bounded device memory** — allocations go through [`Device`] and fail
//!   with [`DeviceError::OutOfMemory`] when the configured capacity would be
//!   exceeded, exactly like `cudaMalloc` on a 6 GB K20X;
//! * **explicit host↔device transfers** ([`Device::h2d`] / [`Device::d2h`])
//!   whose bytes are counted and charged to a PCIe bandwidth model;
//! * a set of **device kernels** (radix sort, pairwise merge, Hillis-Steele
//!   scans, vectorized lower/upper bounds, gather) mirroring the Thrust
//!   primitives the paper builds on;
//! * an **analytic timing model** per GPU product ([`GpuProfile`]): kernel
//!   time is `max(work / compute-throughput, bytes / memory-bandwidth)` plus
//!   launch overhead, which is what makes the paper's Fig. 9 (V100 > P100 >
//!   P40 ≈ K40, converging as I/O dominates) reproducible without hardware.
//!
//! Kernels execute on the host CPU (optionally in parallel via rayon), so
//! results are real; only the *reported device time* comes from the model.
//!
//! ```
//! use vgpu::{Device, GpuProfile};
//!
//! let dev = Device::new(GpuProfile::k40());
//! let mut keys = dev.h2d(&[3u64, 1, 2]).unwrap();
//! let mut vals = dev.h2d(&[30u32, 10, 20]).unwrap();
//! dev.sort_pairs(&mut keys, &mut vals).unwrap();
//! assert_eq!(dev.d2h(&keys), vec![1, 2, 3]);
//! assert_eq!(dev.d2h(&vals), vec![10, 20, 30]);
//! ```

pub mod buffer;
pub mod device;
pub mod exec;
pub mod kernels;
pub mod profile;
pub mod stats;

pub use buffer::DeviceBuffer;
pub use device::{Device, DeviceError};
pub use exec::BlockCtx;
pub use kernels::radix::RadixKey;
pub use profile::GpuProfile;
pub use stats::{DeviceStats, KernelCost};

/// Convenience alias for fallible device operations.
pub type Result<T> = std::result::Result<T, DeviceError>;
