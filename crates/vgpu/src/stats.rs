//! Device statistics and the analytic kernel cost model.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Work estimate for one kernel launch, fed to the timing model.
///
/// `flops` is the number of scalar operations the kernel performs; `bytes`
/// the device-memory traffic it generates (reads + writes). Kernel time is
/// `max(flops / compute-throughput, bytes / memory-bandwidth)` — the
/// roofline model, which captures why sorting is bandwidth-bound on every
/// device in the paper's Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCost {
    /// Scalar operations performed by the kernel.
    pub flops: u64,
    /// Device-memory bytes moved (reads + writes).
    pub bytes: u64,
}

impl KernelCost {
    /// A cost of `flops` operations and `bytes` of memory traffic.
    pub fn new(flops: u64, bytes: u64) -> Self {
        KernelCost { flops, bytes }
    }

    /// Combine two costs (e.g. for a fused kernel).
    pub fn plus(self, other: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// Fixed per-launch overhead in seconds (driver + scheduling), a few
/// microseconds on real hardware.
pub const LAUNCH_OVERHEAD_S: f64 = 5e-6;

/// Accumulated per-kernel counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStat {
    /// Number of launches of this kernel.
    pub launches: u64,
    /// Total scalar operations across launches.
    pub flops: u64,
    /// Total device-memory bytes across launches.
    pub bytes: u64,
    /// Modeled device seconds across launches.
    pub seconds: f64,
}

/// Snapshot of everything a [`crate::Device`] has done.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Total kernel launches.
    pub kernel_launches: u64,
    /// Modeled seconds spent in kernels.
    pub kernel_seconds: f64,
    /// Bytes copied host → device.
    pub h2d_bytes: u64,
    /// Bytes copied device → host.
    pub d2h_bytes: u64,
    /// Modeled seconds spent in transfers.
    pub transfer_seconds: f64,
    /// Current device-memory allocation in bytes.
    pub mem_used: u64,
    /// Peak device-memory allocation in bytes.
    pub mem_peak: u64,
    /// Per-kernel breakdown, keyed by kernel name.
    pub per_kernel: BTreeMap<String, KernelStat>,
}

impl DeviceStats {
    /// Total modeled device time (kernels + transfers) in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.transfer_seconds
    }

    /// Difference between two snapshots (`self` must be the later one);
    /// used to attribute device time to pipeline phases.
    pub fn since(&self, earlier: &DeviceStats) -> DeviceStats {
        let mut per_kernel = BTreeMap::new();
        for (name, now) in &self.per_kernel {
            let before = earlier.per_kernel.get(name).cloned().unwrap_or_default();
            per_kernel.insert(
                name.clone(),
                KernelStat {
                    launches: now.launches - before.launches,
                    flops: now.flops - before.flops,
                    bytes: now.bytes - before.bytes,
                    seconds: now.seconds - before.seconds,
                },
            );
        }
        DeviceStats {
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            kernel_seconds: self.kernel_seconds - earlier.kernel_seconds,
            h2d_bytes: self.h2d_bytes - earlier.h2d_bytes,
            d2h_bytes: self.d2h_bytes - earlier.d2h_bytes,
            transfer_seconds: self.transfer_seconds - earlier.transfer_seconds,
            mem_used: self.mem_used,
            mem_peak: self.mem_peak,
            per_kernel,
        }
    }

    /// Emit this snapshot (usually a [`DeviceStats::since`] delta) as the
    /// canonical `device.*` events on `span`. [`DeviceStats::from_agg`]
    /// inverts this exactly, so a report built from the trace carries the
    /// same numbers as the snapshot.
    pub fn emit(&self, rec: &obs::Recorder, span: u64) {
        rec.counter_on(span, "device.kernel_launches", self.kernel_launches);
        rec.metric_on(span, "device.kernel_seconds", self.kernel_seconds);
        rec.counter_on(span, "device.h2d_bytes", self.h2d_bytes);
        rec.counter_on(span, "device.d2h_bytes", self.d2h_bytes);
        rec.metric_on(span, "device.transfer_seconds", self.transfer_seconds);
        for (kernel, stat) in &self.per_kernel {
            rec.counter_on(
                span,
                &format!("device.kernel.{kernel}.launches"),
                stat.launches,
            );
            rec.counter_on(span, &format!("device.kernel.{kernel}.flops"), stat.flops);
            rec.counter_on(span, &format!("device.kernel.{kernel}.bytes"), stat.bytes);
            rec.metric_on(
                span,
                &format!("device.kernel.{kernel}.seconds"),
                stat.seconds,
            );
        }
    }

    /// Rebuild a snapshot from rolled-up `device.*` events (the inverse of
    /// [`DeviceStats::emit`]). `mem_used` is transient and not part of the
    /// event schema; `mem_peak` travels as the `device.peak_bytes` gauge.
    pub fn from_agg(agg: &obs::SpanAgg) -> DeviceStats {
        let mut stats = DeviceStats {
            kernel_launches: agg.counter("device.kernel_launches"),
            kernel_seconds: agg.metric("device.kernel_seconds"),
            h2d_bytes: agg.counter("device.h2d_bytes"),
            d2h_bytes: agg.counter("device.d2h_bytes"),
            transfer_seconds: agg.metric("device.transfer_seconds"),
            mem_used: 0,
            mem_peak: agg.gauge("device.peak_bytes"),
            per_kernel: BTreeMap::new(),
        };
        for (name, value) in &agg.counters {
            if let Some(rest) = name.strip_prefix("device.kernel.") {
                if let Some((kernel, field)) = rest.rsplit_once('.') {
                    let entry = stats.per_kernel.entry(kernel.to_string()).or_default();
                    match field {
                        "launches" => entry.launches = *value,
                        "flops" => entry.flops = *value,
                        "bytes" => entry.bytes = *value,
                        _ => {}
                    }
                }
            }
        }
        for (name, value) in &agg.metrics {
            if let Some(rest) = name.strip_prefix("device.kernel.") {
                if let Some((kernel, "seconds")) = rest.rsplit_once('.') {
                    stats
                        .per_kernel
                        .entry(kernel.to_string())
                        .or_default()
                        .seconds = *value;
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_plus_adds_componentwise() {
        let a = KernelCost::new(10, 100);
        let b = KernelCost::new(1, 2);
        assert_eq!(a.plus(b), KernelCost::new(11, 102));
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let earlier = DeviceStats {
            kernel_launches: 2,
            kernel_seconds: 1.0,
            h2d_bytes: 10,
            ..Default::default()
        };

        let mut later = earlier.clone();
        later.kernel_launches = 5;
        later.kernel_seconds = 3.5;
        later.h2d_bytes = 25;
        later.per_kernel.insert(
            "sort".into(),
            KernelStat {
                launches: 4,
                flops: 100,
                bytes: 200,
                seconds: 2.0,
            },
        );

        let delta = later.since(&earlier);
        assert_eq!(delta.kernel_launches, 3);
        assert!((delta.kernel_seconds - 2.5).abs() < 1e-12);
        assert_eq!(delta.h2d_bytes, 15);
        assert_eq!(delta.per_kernel["sort"].launches, 4);
    }

    #[test]
    fn emit_then_from_agg_round_trips_exactly() {
        let mut stats = DeviceStats {
            kernel_launches: 7,
            kernel_seconds: 0.875,
            h2d_bytes: 4096,
            d2h_bytes: 1024,
            transfer_seconds: 0.125,
            ..Default::default()
        };
        stats.per_kernel.insert(
            "radix_sort_pairs".into(),
            KernelStat {
                launches: 5,
                flops: 1000,
                bytes: 2000,
                seconds: 0.5,
            },
        );
        let rec = obs::Recorder::new();
        let span = rec.span("phase");
        stats.emit(&rec, span.id());
        drop(span);
        let rollup = obs::Rollup::from_events(&rec.events());
        let root = rollup.root_named("phase").unwrap();
        let back = DeviceStats::from_agg(&rollup.subtree(root.id));
        assert_eq!(back.kernel_launches, stats.kernel_launches);
        assert_eq!(back.kernel_seconds, stats.kernel_seconds);
        assert_eq!(back.h2d_bytes, stats.h2d_bytes);
        assert_eq!(back.d2h_bytes, stats.d2h_bytes);
        assert_eq!(back.transfer_seconds, stats.transfer_seconds);
        assert_eq!(back.per_kernel, stats.per_kernel);
    }

    #[test]
    fn total_seconds_sums_kernels_and_transfers() {
        let stats = DeviceStats {
            kernel_seconds: 1.25,
            transfer_seconds: 0.75,
            ..Default::default()
        };
        assert!((stats.total_seconds() - 2.0).abs() < 1e-12);
    }
}
