//! The prefix-fingerprint scan and suffix derivation.

use crate::params::{HashParams, PlaceValues};
use crate::{pack, Fingerprint128};

/// Dual Rabin-Karp hasher over 2-bit base codes.
///
/// `prefix_scan`/`suffix_from_prefix` follow the paper's kernels exactly:
/// the prefix pass is a Hillis-Steele scan with doubling offsets (Fig. 5),
/// the suffix pass one algebraic step over the prefix results (Fig. 6).
/// `prefix_naive`/`suffix_naive` are straight Horner evaluations used as
/// test oracles and as the CPU half of ablation comparisons.
#[derive(Debug, Clone)]
pub struct RabinKarp {
    places: [PlaceValues; 2],
}

impl RabinKarp {
    /// Dual hasher with the default parameter sets, for reads up to
    /// `max_len` bases.
    pub fn new(max_len: usize) -> Self {
        RabinKarp {
            places: [
                PlaceValues::new(HashParams::set0(), max_len),
                PlaceValues::new(HashParams::set1(), max_len),
            ],
        }
    }

    /// Hasher with explicit parameter sets (tests use the Fig. 5 toys).
    pub fn with_params(p0: HashParams, p1: HashParams, max_len: usize) -> Self {
        RabinKarp {
            places: [PlaceValues::new(p0, max_len), PlaceValues::new(p1, max_len)],
        }
    }

    /// Longest read this hasher supports.
    pub fn max_len(&self) -> usize {
        self.places[0].max_len()
    }

    /// Hillis-Steele prefix scan for one parameter set: returns `P` where
    /// `P[i]` is the hash of the prefix ending at position `i` (length
    /// `i + 1`).
    fn prefix_scan_one(&self, set: usize, codes: &[u8], out: &mut Vec<u64>) {
        let pv = &self.places[set];
        let p = pv.params();
        let n = codes.len();
        out.clear();
        out.extend(codes.iter().map(|&c| c as u64 % p.q));

        // Double-buffered log-step loop: the simulated lock-step of one
        // thread block (threads = read length, Fig. 5).
        let mut next = vec![0u64; n];
        let mut offset = 1usize;
        while offset < n {
            let m_off = pv.get(offset);
            for i in 0..n {
                next[i] = if i >= offset {
                    // P[i] <- P[i-offset] * sigma^offset + P[i]
                    p.addmod(p.mulmod(out[i - offset], m_off), out[i])
                } else {
                    out[i]
                };
            }
            out.copy_from_slice(&next);
            offset *= 2;
        }
    }

    /// Suffix hashes for one parameter set, derived from the prefix hashes
    /// (Fig. 6): `S[i] = (F − P[i−1] · σ^(n−i)) mod q`, `S[0] = F`.
    fn suffix_from_prefix_one(&self, set: usize, prefix: &[u64], out: &mut Vec<u64>) {
        let pv = &self.places[set];
        let p = pv.params();
        let n = prefix.len();
        out.clear();
        if n == 0 {
            return;
        }
        let full = prefix[n - 1];
        out.push(full);
        for i in 1..n {
            let shifted = p.mulmod(prefix[i - 1], pv.get(n - i));
            out.push(p.submod(full, shifted));
        }
    }

    /// All prefix fingerprints of a read: `result[i]` is the fingerprint of
    /// the `(i+1)`-length prefix.
    pub fn prefix_fingerprints(&self, codes: &[u8]) -> Vec<Fingerprint128> {
        assert!(
            codes.len() <= self.max_len(),
            "read longer than place table"
        );
        let mut h0 = Vec::new();
        let mut h1 = Vec::new();
        self.prefix_scan_one(0, codes, &mut h0);
        self.prefix_scan_one(1, codes, &mut h1);
        h0.into_iter().zip(h1).map(|(a, b)| pack(a, b)).collect()
    }

    /// All suffix fingerprints of a read: `result[i]` is the fingerprint of
    /// the suffix *starting* at position `i` (length `n − i`).
    pub fn suffix_fingerprints(&self, codes: &[u8]) -> Vec<Fingerprint128> {
        assert!(
            codes.len() <= self.max_len(),
            "read longer than place table"
        );
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        self.prefix_scan_one(0, codes, &mut p0);
        self.prefix_scan_one(1, codes, &mut p1);
        let mut s0 = Vec::new();
        let mut s1 = Vec::new();
        self.suffix_from_prefix_one(0, &p0, &mut s0);
        self.suffix_from_prefix_one(1, &p1, &mut s1);
        s0.into_iter().zip(s1).map(|(a, b)| pack(a, b)).collect()
    }

    /// Both prefix and suffix fingerprints in one pass (the paper fuses
    /// them into "a single kernel using shared memory").
    pub fn all_fingerprints(&self, codes: &[u8]) -> (Vec<Fingerprint128>, Vec<Fingerprint128>) {
        assert!(
            codes.len() <= self.max_len(),
            "read longer than place table"
        );
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        self.prefix_scan_one(0, codes, &mut p0);
        self.prefix_scan_one(1, codes, &mut p1);
        let mut s0 = Vec::new();
        let mut s1 = Vec::new();
        self.suffix_from_prefix_one(0, &p0, &mut s0);
        self.suffix_from_prefix_one(1, &p1, &mut s1);
        (
            p0.into_iter().zip(p1).map(|(a, b)| pack(a, b)).collect(),
            s0.into_iter().zip(s1).map(|(a, b)| pack(a, b)).collect(),
        )
    }

    /// Horner-rule hash of a whole string for one parameter set — the
    /// sequential oracle.
    pub fn horner_one(&self, set: usize, codes: &[u8]) -> u64 {
        let p = self.places[set].params();
        let mut h = 0u64;
        for &c in codes {
            h = p.addmod(p.mulmod(h, p.sigma), c as u64);
        }
        h
    }

    /// Horner-rule fingerprint of a whole string (both sets packed).
    pub fn fingerprint(&self, codes: &[u8]) -> Fingerprint128 {
        pack(self.horner_one(0, codes), self.horner_one(1, codes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Codes under the paper's Fig. 5 convention (A=0, C=1, T=2, G=3) for
    /// the worked example GATACCAGTA.
    fn fig5_codes() -> Vec<u8> {
        // G A T A C C A G T A
        vec![3, 0, 2, 0, 1, 1, 0, 3, 2, 0]
    }

    fn fig5_rk() -> RabinKarp {
        RabinKarp::with_params(HashParams::fig5(), HashParams::set1(), 16)
    }

    #[test]
    fn reproduces_fig5_prefix_fingerprints() {
        let rk = fig5_rk();
        let prefixes = rk.prefix_fingerprints(&fig5_codes());
        let h0: Vec<u64> = prefixes.iter().map(|&fp| (fp >> 64) as u64).collect();
        // Fig. 5's output row: 3 12 11 5 8 7 2 11 7 2.
        assert_eq!(h0, vec![3, 12, 11, 5, 8, 7, 2, 11, 7, 2]);
    }

    #[test]
    fn reproduces_fig6_suffix_fingerprints() {
        let rk = fig5_rk();
        let suffixes = rk.suffix_fingerprints(&fig5_codes());
        let h0: Vec<u64> = suffixes.iter().map(|&fp| (fp >> 64) as u64).collect();
        // Fig. 6's output row S: 2 5 5 10 10 0 4 4 8 0.
        assert_eq!(h0, vec![2, 5, 5, 10, 10, 0, 4, 4, 8, 0]);
    }

    #[test]
    fn scan_matches_horner_for_every_prefix() {
        let rk = RabinKarp::new(64);
        let codes: Vec<u8> = (0..37).map(|i| (i * 7 % 4) as u8).collect();
        let prefixes = rk.prefix_fingerprints(&codes);
        for (i, &fp) in prefixes.iter().enumerate() {
            assert_eq!(fp, rk.fingerprint(&codes[..=i]), "prefix length {}", i + 1);
        }
    }

    #[test]
    fn suffix_derivation_matches_direct_hash() {
        let rk = RabinKarp::new(64);
        let codes: Vec<u8> = (0..41).map(|i| (i * 13 % 4) as u8).collect();
        let suffixes = rk.suffix_fingerprints(&codes);
        for (i, &fp) in suffixes.iter().enumerate() {
            assert_eq!(fp, rk.fingerprint(&codes[i..]), "suffix start {i}");
        }
    }

    #[test]
    fn matching_suffix_prefix_pairs_share_fingerprints() {
        // Overlap: suffix of r1 == prefix of r2 of length 5.
        let r1: Vec<u8> = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let r2: Vec<u8> = vec![0, 1, 2, 3, 3, 3, 3, 3];
        let rk = RabinKarp::new(16);
        let s1 = rk.suffix_fingerprints(&r1);
        let p2 = rk.prefix_fingerprints(&r2);
        // r1's 4-length suffix is [0,1,2,3] = r2's 4-length prefix.
        assert_eq!(s1[4], p2[3]);
        // And a non-matching length disagrees.
        assert_ne!(s1[5], p2[2]);
    }

    #[test]
    fn empty_and_single_base_inputs() {
        let rk = RabinKarp::new(8);
        assert!(rk.prefix_fingerprints(&[]).is_empty());
        assert!(rk.suffix_fingerprints(&[]).is_empty());
        let one = rk.prefix_fingerprints(&[2]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], rk.fingerprint(&[2]));
        assert_eq!(rk.suffix_fingerprints(&[2]), one);
    }

    #[test]
    #[should_panic(expected = "read longer than place table")]
    fn read_longer_than_table_panics() {
        RabinKarp::new(4).prefix_fingerprints(&[0; 5]);
    }

    proptest! {
        #[test]
        fn scan_equals_horner_for_random_reads(
            codes in prop::collection::vec(0u8..4, 1..150)
        ) {
            let rk = RabinKarp::new(150);
            let (prefixes, suffixes) = rk.all_fingerprints(&codes);
            for (i, &fp) in prefixes.iter().enumerate() {
                prop_assert_eq!(fp, rk.fingerprint(&codes[..=i]));
            }
            for (i, &fp) in suffixes.iter().enumerate() {
                prop_assert_eq!(fp, rk.fingerprint(&codes[i..]));
            }
        }

        #[test]
        fn distinct_short_strings_have_distinct_fingerprints(
            a in prop::collection::vec(0u8..4, 1..40),
            b in prop::collection::vec(0u8..4, 1..40),
        ) {
            let rk = RabinKarp::new(40);
            if a != b {
                prop_assert_ne!(rk.fingerprint(&a), rk.fingerprint(&b));
            }
        }
    }
}
