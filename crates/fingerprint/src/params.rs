//! Hash parameters and place-value tables.

use serde::{Deserialize, Serialize};

/// Parameters of one Rabin-Karp hash: a radix σ ("a small prime larger than
/// the alphabet size") and a prime modulus q ("a large prime number") —
/// Section III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashParams {
    /// Radix σ.
    pub sigma: u64,
    /// Prime modulus q (must exceed the radix; may be up to 2^64 − 1 since
    /// products are computed in 128-bit arithmetic).
    pub q: u64,
}

impl HashParams {
    /// First default parameter set: σ = 5, q = 2^64 − 83 (the second
    /// largest 64-bit prime). A full-width modulus matters beyond collision
    /// resistance: the packed fingerprint's *high* word drives both
    /// fingerprint-range partitioning and width truncation, so its top
    /// bits must carry entropy.
    pub fn set0() -> Self {
        HashParams {
            sigma: 5,
            q: 18_446_744_073_709_551_533,
        }
    }

    /// Second default parameter set: σ = 11, q = 2^64 − 59 (largest prime
    /// below 2^64).
    pub fn set1() -> Self {
        HashParams {
            sigma: 11,
            q: 18_446_744_073_709_551_557,
        }
    }

    /// The toy parameters of the paper's worked example in Fig. 5
    /// (radix 4, prime 13) — used by tests that recompute the figure.
    pub fn fig5() -> Self {
        HashParams { sigma: 4, q: 13 }
    }

    /// `(a · b) mod q` without overflow.
    pub fn mulmod(&self, a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % self.q as u128) as u64
    }

    /// `(a + b) mod q` without overflow.
    pub fn addmod(&self, a: u64, b: u64) -> u64 {
        ((a as u128 + b as u128) % self.q as u128) as u64
    }

    /// `(a − b) mod q`, wrapped into `[0, q)`.
    pub fn submod(&self, a: u64, b: u64) -> u64 {
        let (a, b, q) = (a as u128, b as u128, self.q as u128);
        (((a + q) - (b % q)) % q) as u64
    }
}

/// The precomputed place values `M[i] = σ^i mod q`.
///
/// "This step is done once for the entire program and reused for all reads"
/// (Section III-A): one table per parameter set, sized to the read length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceValues {
    params: HashParams,
    m: Vec<u64>,
}

impl PlaceValues {
    /// Table of `σ^0 .. σ^max_len mod q` (inclusive, so `get(max_len)` is
    /// valid — the suffix derivation indexes by suffix *length*).
    pub fn new(params: HashParams, max_len: usize) -> Self {
        let mut m = Vec::with_capacity(max_len + 1);
        let mut v = 1u64 % params.q;
        for _ in 0..=max_len {
            m.push(v);
            v = params.mulmod(v, params.sigma);
        }
        PlaceValues { params, m }
    }

    /// The parameters this table belongs to.
    pub fn params(&self) -> HashParams {
        self.params
    }

    /// `σ^i mod q`.
    pub fn get(&self, i: usize) -> u64 {
        self.m[i]
    }

    /// Largest exponent in the table.
    pub fn max_len(&self) -> usize {
        self.m.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_values_are_powers_of_sigma() {
        let p = HashParams::fig5();
        let pv = PlaceValues::new(p, 6);
        assert_eq!(pv.get(0), 1);
        assert_eq!(pv.get(1), 4);
        assert_eq!(pv.get(2), 3); // 16 mod 13
        assert_eq!(pv.get(3), 12); // 64 mod 13
        assert_eq!(pv.max_len(), 6);
    }

    #[test]
    fn modular_ops_stay_in_range_at_extreme_values() {
        let p = HashParams::set1(); // q just below 2^64
        let a = p.q - 1;
        assert_eq!(p.addmod(a, a), p.q - 2);
        assert_eq!(p.mulmod(a, a), 1); // (-1)^2 = 1 mod q
        assert_eq!(p.submod(0, a), 1);
        assert_eq!(p.submod(a, a), 0);
    }

    #[test]
    fn default_sets_use_distinct_primes_and_radixes() {
        let (a, b) = (HashParams::set0(), HashParams::set1());
        assert_ne!(a.sigma, b.sigma);
        assert_ne!(a.q, b.q);
        assert!(
            a.sigma > 4 && b.sigma > 4,
            "radix must exceed alphabet size"
        );
    }

    #[test]
    fn place_values_wrap_modulo_q() {
        let pv = PlaceValues::new(HashParams::fig5(), 12);
        for i in 0..=12 {
            assert!(pv.get(i) < 13);
        }
        // σ^6 = 4096 mod 13 = 1, so the sequence is periodic with period 6.
        assert_eq!(pv.get(6), 1);
        assert_eq!(pv.get(7), 4);
    }
}
