//! # fingerprint — Rabin-Karp fingerprints of all prefixes and suffixes
//!
//! The map phase needs, for every read (and its reverse complement), the
//! fingerprints of *all* of its prefixes and suffixes (Section III-A).
//! LaSAGNA computes the prefix fingerprints as a **Hillis-Steele scan**
//! (paper Fig. 5): after `log2(l)` steps, lane `i` holds the hash of the
//! prefix ending at position `i`. The suffix fingerprints are then derived
//! from the prefix fingerprints and the place-value table in one more step
//! (Fig. 6): `S[i] = (F − P[i−1]·σ^(n−i)) mod q` where `F` is the full-read
//! hash.
//!
//! Following Section IV-B, a fingerprint is **two independent 64-bit
//! hashes** (different radixes and prime moduli) packed into a `u128` —
//! wide enough that the paper observed zero false-positive edges, a claim
//! the `fpcheck` experiment reproduces (and the `fp_width` ablation breaks
//! on purpose by truncating).

pub mod batch;
pub mod params;
pub mod scan;

pub use batch::{batch_fingerprints, BatchOutput, FingerprintScheme};
pub use params::{HashParams, PlaceValues};
pub use scan::RabinKarp;

/// A 128-bit fingerprint: hash under parameter set 0 in the high 64 bits,
/// hash under parameter set 1 in the low 64 bits.
pub type Fingerprint128 = u128;

/// Pack two 64-bit hashes into a [`Fingerprint128`].
pub fn pack(h0: u64, h1: u64) -> Fingerprint128 {
    ((h0 as u128) << 64) | h1 as u128
}

/// Keep only the `bits` most significant bits of a fingerprint (used by the
/// fingerprint-width ablation to emulate narrower hashes; `bits = 128` is
/// the identity).
pub fn truncate_bits(fp: Fingerprint128, bits: u32) -> Fingerprint128 {
    assert!((1..=128).contains(&bits), "bits must be in 1..=128");
    if bits == 128 {
        fp
    } else {
        fp >> (128 - bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_places_hashes_in_expected_halves() {
        let fp = pack(0xAAAA, 0xBBBB);
        assert_eq!((fp >> 64) as u64, 0xAAAA);
        assert_eq!(fp as u64, 0xBBBB);
    }

    #[test]
    fn truncate_keeps_high_bits() {
        let fp = pack(u64::MAX, 0);
        assert_eq!(truncate_bits(fp, 64), u64::MAX as u128);
        assert_eq!(truncate_bits(fp, 128), fp);
        assert_eq!(truncate_bits(fp, 1), 1);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=128")]
    fn truncate_zero_bits_panics() {
        truncate_bits(1, 0);
    }
}
