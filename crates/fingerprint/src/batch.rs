//! Batched fingerprint generation on the virtual device.
//!
//! The map phase loads "batches of reads ... in the GPU" and fingerprints
//! them. The paper contrasts two kernel schemes (Section III-A):
//!
//! * **thread-per-read** — natural but slow on real GPUs: each thread walks
//!   one read sequentially, producing strided (uncoalesced) memory traffic
//!   and "excessive memory throttling";
//! * **block-per-read** — one block per read, threads = read length, prefix
//!   fingerprints by Hillis-Steele scan, suffixes derived in shared memory.
//!
//! Both schemes compute identical fingerprints here; they differ in the
//! *cost* charged to the device. Thread-per-read issues one 1-byte global
//! transaction per base per step with no coalescing — we charge its traffic
//! at the 32-byte transaction granularity real devices use, an 8× penalty
//! per logical byte. Block-per-read performs `log2(l)` coalesced passes via
//! shared memory. The `fingerprint` ablation bench shows the resulting gap.

use crate::scan::RabinKarp;
use crate::Fingerprint128;
use rayon::prelude::*;
use vgpu::{Device, KernelCost};

/// Kernel organization for fingerprint generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintScheme {
    /// One thread walks each read (the strawman).
    ThreadPerRead,
    /// One block of `read_len` threads per read (the paper's kernel).
    BlockPerRead,
}

/// Fingerprints of one batch: `prefix[r][i]` is the fingerprint of read
/// `r`'s `(i+1)`-length prefix, `suffix[r][i]` of its suffix starting at
/// `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutput {
    /// Per-read prefix fingerprints.
    pub prefix: Vec<Vec<Fingerprint128>>,
    /// Per-read suffix fingerprints.
    pub suffix: Vec<Vec<Fingerprint128>>,
}

/// Uncoalesced global-memory transaction size on real devices.
const TRANSACTION_BYTES: u64 = 32;

fn scheme_cost(scheme: FingerprintScheme, reads: usize, read_len: usize) -> KernelCost {
    let n = reads as u64;
    let l = read_len.max(1) as u64;
    let steps = (read_len.max(2) as f64).log2().ceil() as u64;
    match scheme {
        FingerprintScheme::ThreadPerRead => KernelCost {
            // Sequential Horner per thread. Every base load and every
            // fingerprint store is strided across threads, so each logical
            // access burns a full 32-byte transaction: one per base read
            // and four per position for the two 16-byte fingerprint halves.
            flops: n * l * 8,
            bytes: n * l * TRANSACTION_BYTES + n * l * 4 * TRANSACTION_BYTES,
        },
        FingerprintScheme::BlockPerRead => KernelCost {
            // One coalesced load of the encoded read, log2(l) scan steps
            // entirely in *shared memory* (no global traffic), and one
            // coalesced 32-byte fingerprint store per position.
            flops: n * l * steps * 4,
            bytes: n * l + n * l * 32,
        },
    }
}

/// Fingerprint a batch of same-length reads on `device`.
///
/// `batch` holds the 2-bit codes of each read. The math is identical for
/// both schemes; only the modeled device time differs.
pub fn batch_fingerprints(
    device: &Device,
    rk: &RabinKarp,
    batch: &[Vec<u8>],
    scheme: FingerprintScheme,
) -> BatchOutput {
    let read_len = batch.first().map_or(0, |r| r.len());
    device.charge_kernel(
        match scheme {
            FingerprintScheme::ThreadPerRead => "fingerprint_thread_per_read",
            FingerprintScheme::BlockPerRead => "fingerprint_block_per_read",
        },
        scheme_cost(scheme, batch.len(), read_len),
    );
    // One rayon task per block (= per read), mirroring grid-of-blocks
    // execution; the scan inside is the simulated lock-step of the block.
    let results: Vec<(Vec<Fingerprint128>, Vec<Fingerprint128>)> = batch
        .par_iter()
        .map(|codes| rk.all_fingerprints(codes))
        .collect();
    let mut prefix = Vec::with_capacity(results.len());
    let mut suffix = Vec::with_capacity(results.len());
    for (p, s) in results {
        prefix.push(p);
        suffix.push(s);
    }
    BatchOutput { prefix, suffix }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::GpuProfile;

    fn batch() -> Vec<Vec<u8>> {
        vec![
            vec![0, 1, 2, 3, 0, 1, 2, 3],
            vec![3, 3, 3, 3, 3, 3, 3, 3],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        ]
    }

    #[test]
    fn both_schemes_compute_identical_fingerprints() {
        let dev = Device::new(GpuProfile::k40());
        let rk = RabinKarp::new(8);
        let a = batch_fingerprints(&dev, &rk, &batch(), FingerprintScheme::ThreadPerRead);
        let b = batch_fingerprints(&dev, &rk, &batch(), FingerprintScheme::BlockPerRead);
        assert_eq!(a, b);
        assert_eq!(a.prefix.len(), 3);
        assert_eq!(a.prefix[0].len(), 8);
    }

    #[test]
    fn batch_matches_single_read_api() {
        let dev = Device::new(GpuProfile::k40());
        let rk = RabinKarp::new(8);
        let out = batch_fingerprints(&dev, &rk, &batch(), FingerprintScheme::BlockPerRead);
        for (i, codes) in batch().iter().enumerate() {
            let (p, s) = rk.all_fingerprints(codes);
            assert_eq!(out.prefix[i], p);
            assert_eq!(out.suffix[i], s);
        }
    }

    #[test]
    fn thread_per_read_charges_more_device_time() {
        let reads: Vec<Vec<u8>> = (0..64).map(|i| vec![(i % 4) as u8; 100]).collect();
        let rk = RabinKarp::new(100);

        let dev_naive = Device::new(GpuProfile::k40());
        batch_fingerprints(&dev_naive, &rk, &reads, FingerprintScheme::ThreadPerRead);
        let dev_block = Device::new(GpuProfile::k40());
        batch_fingerprints(&dev_block, &rk, &reads, FingerprintScheme::BlockPerRead);

        let naive_s = dev_naive.stats().kernel_seconds;
        let block_s = dev_block.stats().kernel_seconds;
        assert!(
            naive_s > block_s,
            "memory-throttled scheme must be slower: {naive_s} vs {block_s}"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let dev = Device::new(GpuProfile::k40());
        let rk = RabinKarp::new(8);
        let out = batch_fingerprints(&dev, &rk, &[], FingerprintScheme::BlockPerRead);
        assert!(out.prefix.is_empty() && out.suffix.is_empty());
        assert_eq!(dev.stats().kernel_launches, 1);
    }
}
