//! Bounded exhaustive schedule exploration with sleep-set-style
//! pruning.
//!
//! The schedule space is a tree: each node is an enabled set (more than
//! one candidate), each edge a grant. DFS enumerates every path through
//! the first [`DfsConfig::decision_depth`] decisions by *re-executing*
//! the scenario with the chosen prefix pinned — the scheduler has no
//! snapshot/restore, so replaying the prefix from scratch is how a
//! branch is revisited. Past the depth bound every decision takes the
//! deterministic default (lowest task id), so each explored prefix
//! still runs to completion and gets its invariants checked.
//!
//! ## Pruning
//!
//! At a node, simultaneously-enabled *pure socket-read waits*
//! (`qnet.conn.read`, `sc.client.read`) on different tasks commute: a
//! grant runs its task only until the next point, and such a step reads
//! solely from that task's own socket, so neither order can disable or
//! affect the other and both orders reach the same state. Among them
//! only the lowest-task candidate is branched on; the skipped candidate
//! is still enabled — and explored — at the child node, so every
//! reachable state survives, Godefroid-sleep-set style. The class is
//! deliberately conservative: dequeues, gates, and drain points all
//! contend on shared state and are never pruned.
//!
//! Replay divergence (the re-executed prefix producing a different
//! enabled set than recorded) is counted honestly in
//! [`ExploreReport::diverged`], never silently retried.

use crate::scenario::run_schedule;
use crate::trace::trace_hash;
use crate::{ExploreReport, ScenarioConfig, Violation};
use faultsim::sched::Candidate;
use std::collections::HashSet;

/// Tuning for [`explore_dfs`].
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// The scenario every schedule runs.
    pub scenario: ScenarioConfig,
    /// How many decisions (enabled sets with ≥ 2 candidates) are
    /// explored exhaustively; deeper decisions take the default branch.
    pub decision_depth: usize,
    /// Hard cap on schedules executed, as a wall-clock guard.
    pub max_schedules: u64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            scenario: ScenarioConfig::default(),
            decision_depth: 5,
            max_schedules: 4_000,
        }
    }
}

/// One decision node on the current DFS path.
struct Node {
    /// Branchable choices at this node (pruned, sorted by task id).
    keys: Vec<String>,
    /// Index of the branch currently being explored.
    cur: usize,
}

/// Interleaving identity of a candidate — stable across re-executions
/// because task *names* are deterministic while raw ids can shift.
fn cand_key(c: &Candidate) -> String {
    format!("{}@{}", c.task_name, c.point)
}

/// Points that are pure single-socket read waits, the commuting class.
const PURE_WAIT: [&str; 2] = ["qnet.conn.read", "sc.client.read"];

/// The branchable choices at a node: every candidate key, minus
/// pure-read candidates that commute with an earlier-kept pure read.
fn branch_keys(cands: &[Candidate]) -> Vec<String> {
    let mut kept: Vec<&Candidate> = Vec::new();
    let mut keys = Vec::new();
    for c in cands {
        let commutes = PURE_WAIT.contains(&c.point.as_str())
            && kept
                .iter()
                .any(|p| p.task != c.task && PURE_WAIT.contains(&p.point.as_str()));
        if !commutes {
            kept.push(c);
            keys.push(cand_key(c));
        }
    }
    keys
}

/// Exhaustively explore the schedule tree to the configured depth,
/// running the full scenario (and its invariants) on every leaf.
pub fn explore_dfs(cfg: &DfsConfig) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut hashes: HashSet<u64> = HashSet::new();
    let mut nodes: Vec<Node> = Vec::new();

    loop {
        let mut depth = 0usize;
        let mut mismatch = false;
        let run = {
            let nodes = &mut nodes;
            let mismatch = &mut mismatch;
            let depth = &mut depth;
            run_schedule(&cfg.scenario, &mut |cands, _trace| {
                if cands.len() == 1 {
                    return 0;
                }
                let d = *depth;
                *depth += 1;
                if d >= cfg.decision_depth || *mismatch {
                    return 0;
                }
                let keys = branch_keys(cands);
                if d < nodes.len() {
                    if nodes[d].keys == keys {
                        let key = &nodes[d].keys[nodes[d].cur];
                        return cands.iter().position(|c| &cand_key(c) == key).unwrap_or(0);
                    }
                    // The re-executed prefix no longer produces the
                    // recorded enabled set: count it and re-seed the
                    // tree from here rather than grant blindly.
                    *mismatch = true;
                    nodes.truncate(d);
                }
                let first = keys.first().cloned();
                nodes.push(Node { keys, cur: 0 });
                match first {
                    Some(key) => cands.iter().position(|c| cand_key(c) == key).unwrap_or(0),
                    None => 0,
                }
            })
        };

        report.observe_run(&run);
        hashes.insert(trace_hash(&run.trace));
        if mismatch {
            report.diverged += 1;
        }
        if !run.violations.is_empty() {
            report.violations.push(Violation {
                strategy: "dfs".to_string(),
                detail: run.violations.join("; "),
                trace: run.trace.clone(),
            });
        }

        // Backtrack: advance the deepest node with branches left.
        while let Some(last) = nodes.last_mut() {
            last.cur += 1;
            if last.cur < last.keys.len() {
                break;
            }
            nodes.pop();
        }
        if nodes.is_empty() || report.schedules_explored >= cfg.max_schedules {
            break;
        }
    }

    report.distinct_interleavings = hashes.len() as u64;
    report
}
