//! The model-checked serving scenario: the real [`qnet::Server`] and
//! [`qserve::QueryService`] plus a small cast of scripted tasks, all
//! driven by the [`faultsim::sched`] controller.
//!
//! ## Topology
//!
//! * **engine** — a tiny in-memory contig store (one deterministic
//!   ~600-base contig) with a minimizer index, so a query resolves in
//!   microseconds and the schedule — not the work — dominates.
//! * **workers** — the real worker pool (`qserve-worker-{i}` tasks).
//! * **server** — the real accept loop and per-connection handlers,
//!   with every admission gate live.
//! * **clients** — `sc.client{i}` tasks speaking the wire protocol
//!   *directly* (frame + [`qnet::Request`]), one connection each, so
//!   every response maps to exactly one typed [`OutcomeKind`] — the
//!   retrying `QueryClient` would fold typed sheds into
//!   `RetriesExhausted` and destroy the classification.
//! * **drainer** — `sc.drainer` owns the [`Server`]; when the
//!   scheduler grants its `sc.drain.go` point it runs the full
//!   graceful drain, snapshots the stats, and tears everything down.
//!   *When* that grant lands relative to client progress is the main
//!   axis of exploration: before the first connect, mid-batch (the
//!   force-close path), or after everything finished.
//! * **prober** (optional) — `sc.prober` fires one wire `Stats`
//!   request at a schedule-chosen moment, racing the drain.
//!
//! Every schedule terminates: clients run a fixed script and exit,
//! handlers exit on client EOF or force-close, the drainer joins
//! everything, and the controller then sees `AllExited`.
//!
//! ## Virtual time
//!
//! The scheduler's clock advances 1 ms per grant, so a client
//! configured with a tiny `deadline_ms` can watch its budget expire
//! *because of* scheduling (the deadline gate), and the drain deadline
//! expires during ordinary granting — force-close is reachable without
//! any all-blocked clock jump.

use crate::trace::GrantRecord;
use crate::{invariants, sched_lock};
use faultsim::sched::{self, Candidate, StepState};
use genome::PackedSeq;
use qnet::{DrainReport, Request, Response, Server, ServerConfig, StatsSnapshot};
use qserve::{
    AdmissionConfig, ContigStore, Hit, IndexConfig, MinimizerIndex, QueryConfig, QueryEngine,
    QueryService, ServiceConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Base length of the scenario's single reference contig.
const CONTIG_BASES: usize = 600;
/// Base length of each query read.
const READ_BASES: usize = 60;
/// Hard cap on grants per schedule — a backstop far above what the
/// scenario needs (a full run takes a few hundred), so a runaway loop
/// becomes a reported violation instead of a wedged explorer.
const MAX_GRANTS: usize = 5_000;
/// Client socket timeouts. Generous: they only matter after an
/// abnormal teardown, when tasks free-run without a scheduler.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// How clients and server treat the shared-secret auth tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthMode {
    /// No secret anywhere; tags ride as `0` and are ignored.
    Off,
    /// Server and every client share the secret — auth always passes.
    Shared,
    /// Client 0 signs with the wrong secret; every one of its queries
    /// must be rejected at gate 0 without charging its fairness bucket.
    OneBadClient,
}

/// Scenario shape. The default is the 2-clients × 2-workers drain/reload
/// configuration from the exploration plan; tests shrink or skew it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Worker threads in the query service.
    pub workers: usize,
    /// Concurrent clients (`sc.client{i}`, wire id `c{i}`).
    pub clients: usize,
    /// Query batches each client sends, sequentially on one connection.
    pub batches_per_client: usize,
    /// Reads per batch.
    pub reads_per_batch: usize,
    /// Per-client deadline budgets, cycled by client index. A small
    /// entry makes deadline expiry reachable purely via grant count.
    pub deadline_ms: Vec<u32>,
    /// Server drain deadline in virtual milliseconds. Small, so the
    /// force-close path is reachable in bounded schedules.
    pub drain_deadline_ms: u64,
    /// Fairness bucket capacity (reads). Refill is always `0.0` here,
    /// so token accounting stays integral and schedule-independent.
    pub burst: f64,
    /// Worker queue admission limit, in chunks.
    pub max_queue: usize,
    /// Reads per worker chunk.
    pub batch_chunk: usize,
    /// Auth topology.
    pub auth: AuthMode,
    /// Add the `sc.prober` task racing a wire `Stats` probe.
    pub with_prober: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            workers: 2,
            clients: 2,
            batches_per_client: 2,
            reads_per_batch: 2,
            deadline_ms: vec![64, 3],
            drain_deadline_ms: 8,
            burst: 16.0,
            max_queue: 8,
            batch_chunk: 2,
            auth: AuthMode::Off,
            with_prober: false,
        }
    }
}

impl ScenarioConfig {
    /// Shared secret in effect for the server, if any.
    fn server_secret(&self) -> Option<String> {
        match self.auth {
            AuthMode::Off => None,
            AuthMode::Shared | AuthMode::OneBadClient => Some("schedcheck".to_string()),
        }
    }

    /// Secret client `idx` signs with, if any.
    fn client_secret(&self, idx: usize) -> Option<String> {
        match self.auth {
            AuthMode::Off => None,
            AuthMode::Shared => Some("schedcheck".to_string()),
            AuthMode::OneBadClient if idx == 0 => Some("not-the-secret".to_string()),
            AuthMode::OneBadClient => Some("schedcheck".to_string()),
        }
    }

    /// Total reads offered across all clients and batches.
    pub fn offered_reads(&self) -> u64 {
        (self.clients * self.batches_per_client * self.reads_per_batch) as u64
    }
}

/// What one client observed for one batch — exactly one per batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Client index (wire id `c{client}`).
    pub client: usize,
    /// Batch index within the client's script.
    pub batch: usize,
    /// Reads in the batch.
    pub n_reads: u64,
    /// The typed classification.
    pub kind: OutcomeKind,
    /// Human detail (mismatch description, io error, ...).
    pub detail: String,
    /// False when the TCP connect itself failed — those reads never
    /// reached the server and no gate counted them.
    pub connected: bool,
}

/// Every way a batch can end, from the client's chair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// Byte-correct `Hits` for the right `request_id`.
    Hits,
    /// Typed `Draining` (gate 1 or the force-close frame).
    DrainShed,
    /// Typed `DeadlineExceeded`.
    DeadlineShed,
    /// Typed `Overloaded { scope: Fairness }`.
    FairnessShed,
    /// Typed `Overloaded { scope: Queue }`.
    QueueShed,
    /// Typed `AuthFailed`.
    AuthRejected,
    /// Typed `Error` from the server — unexpected in this scenario and
    /// treated as a violation.
    RemoteError,
    /// Transport failure: connect refused, EOF, read/write error.
    Io,
    /// A protocol violation the client *proved*: mispaired request id,
    /// wrong answer bytes, or an impossible response variant.
    Corrupt,
}

/// Everything one executed schedule produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The interleaving, one record per grant.
    pub trace: Vec<GrantRecord>,
    /// One outcome per (client, batch).
    pub outcomes: Vec<BatchOutcome>,
    /// The drain's own accounting (`None` only on aborted schedules).
    pub report: Option<DrainReport>,
    /// In-process stats snapshot taken after the drain completed.
    pub snap: Option<StatsSnapshot>,
    /// Post-hoc rollup of the run's trace events, `qnet.*` counters.
    pub counters: BTreeMap<String, u64>,
    /// Scheduler-level failure (deadlock/hang/grant-cap), if any.
    pub sched_violation: Option<String>,
    /// Protocol invariants that did not hold (empty on a good run).
    pub violations: Vec<String>,
    /// Reads force-closed at the drain deadline, for coverage stats.
    pub force_closed: u64,
}

/// The deterministic reference contig: bases from the repo's splitmix64
/// mixer, so every run (and every process) builds the same sequence.
pub(crate) fn contig() -> PackedSeq {
    let mut codes = Vec::with_capacity(CONTIG_BASES);
    let mut x: u64 = 0x5eed_cafe_f00d_0001;
    while codes.len() < CONTIG_BASES {
        x = crate::splitmix64(x);
        // 32 two-bit codes per mixed word.
        let mut w = x;
        for _ in 0..32 {
            if codes.len() == CONTIG_BASES {
                break;
            }
            codes.push((w & 3) as u8);
            w >>= 2;
        }
    }
    PackedSeq::from_codes(&codes)
}

pub(crate) fn build_engine(reference: &PackedSeq) -> QueryEngine {
    let store = ContigStore::from_contigs(vec![reference.clone()]);
    let index = MinimizerIndex::build(
        &store,
        &IndexConfig {
            k: 9,
            w: 5,
            threads: 1,
        },
    );
    QueryEngine::new(store, index, QueryConfig::default()).expect("scenario engine binds")
}

/// Deterministic query script: read `q` is a striding 60-base window of
/// the contig, alternating strands (the `tests/qnet_stats.rs` idiom).
pub(crate) fn query(reference: &PackedSeq, q: usize) -> PackedSeq {
    let start = (q * 37) % (reference.len() - READ_BASES + 1);
    let s = reference.slice(start, READ_BASES);
    if q % 2 == 0 {
        s
    } else {
        s.reverse_complement()
    }
}

/// Write and flush a whole buffer on a shared socket handle.
fn send_all(sock: &TcpStream, buf: &[u8]) -> std::io::Result<()> {
    let mut w = sock;
    w.write_all(buf)?;
    w.flush()
}

/// True when a read on `sock` would not block (data, EOF, or error) —
/// a non-consuming probe, safe as a scheduler re-poll predicate.
fn sock_readable(sock: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    let _ = sock.set_nonblocking(true);
    let r = sock.peek(&mut probe);
    let _ = sock.set_nonblocking(false);
    match r {
        Ok(_) => true,
        Err(e) => e.kind() != std::io::ErrorKind::WouldBlock,
    }
}

/// Send one query batch on an open connection and classify the reply.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    sock: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    client: usize,
    batch: usize,
    request_id: u64,
    deadline_ms: u32,
    reads: &[PackedSeq],
    expected: &[Option<Hit>],
    secret: Option<&str>,
    nonce: u64,
    seq: u64,
) -> BatchOutcome {
    let n_reads = reads.len() as u64;
    let client_id = format!("c{client}");
    let mk = |kind: OutcomeKind, detail: String| BatchOutcome {
        client,
        batch,
        n_reads,
        kind,
        detail,
        connected: true,
    };
    let (auth_seq, auth_tag) = match secret {
        Some(s) => (
            seq,
            qnet::auth_tag(
                s,
                qnet::AUTH_KIND_QUERY,
                nonce,
                seq,
                request_id,
                deadline_ms,
                &client_id,
                reads,
            ),
        ),
        None => (0, 0),
    };
    let body = Request::Query {
        request_id,
        deadline_ms,
        client_id,
        reads: reads.to_vec(),
        auth_seq,
        auth_tag,
        generation: 0,
    }
    .encode();
    let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
    if gstream::write_frame(&mut frame, &body).is_err() {
        return mk(OutcomeKind::Io, "frame encode".to_string());
    }
    sched::point("sc.client.send");
    if send_all(sock, &frame).is_err() {
        return mk(OutcomeKind::Io, "request write failed".to_string());
    }
    // Park until the response (or EOF, or the force-close) is
    // observable, so "the answer arrived" is an explored step.
    {
        let reader = &*reader;
        sched::wait_until("sc.client.read", &mut || {
            !reader.buffer().is_empty() || sock_readable(reader.get_ref())
        });
    }
    let payload = match gstream::read_frame(reader, "server") {
        Ok(Some(p)) => p,
        Ok(None) => return mk(OutcomeKind::Io, "eof before response".to_string()),
        Err(e) => return mk(OutcomeKind::Io, format!("response read: {e}")),
    };
    let resp = match Response::decode(&payload, "server") {
        Ok(r) => r,
        Err(e) => return mk(OutcomeKind::Corrupt, format!("response decode: {e}")),
    };
    let check_id = |rid: u64| rid == request_id;
    match resp {
        Response::Hits {
            request_id: rid,
            generation: _,
            hits,
        } => {
            if !check_id(rid) {
                mk(
                    OutcomeKind::Corrupt,
                    format!("mispaired Hits: sent id {request_id}, got {rid}"),
                )
            } else if hits != expected {
                mk(
                    OutcomeKind::Corrupt,
                    format!("wrong answer bytes: got {hits:?}, want {expected:?}"),
                )
            } else {
                mk(OutcomeKind::Hits, String::new())
            }
        }
        Response::Draining { request_id: rid } => {
            if check_id(rid) {
                mk(OutcomeKind::DrainShed, String::new())
            } else {
                mk(OutcomeKind::Corrupt, format!("mispaired Draining id {rid}"))
            }
        }
        Response::DeadlineExceeded { request_id: rid } => {
            if check_id(rid) {
                mk(OutcomeKind::DeadlineShed, String::new())
            } else {
                mk(
                    OutcomeKind::Corrupt,
                    format!("mispaired DeadlineExceeded id {rid}"),
                )
            }
        }
        Response::Overloaded {
            request_id: rid,
            scope,
            ..
        } => {
            if !check_id(rid) {
                mk(
                    OutcomeKind::Corrupt,
                    format!("mispaired Overloaded id {rid}"),
                )
            } else {
                match scope {
                    qnet::ShedScope::Fairness => mk(OutcomeKind::FairnessShed, String::new()),
                    qnet::ShedScope::Queue => mk(OutcomeKind::QueueShed, String::new()),
                }
            }
        }
        Response::AuthFailed { request_id: rid } => {
            if check_id(rid) {
                mk(OutcomeKind::AuthRejected, String::new())
            } else {
                mk(
                    OutcomeKind::Corrupt,
                    format!("mispaired AuthFailed id {rid}"),
                )
            }
        }
        Response::Error {
            request_id: rid,
            message,
        } => {
            if check_id(rid) {
                mk(OutcomeKind::RemoteError, message)
            } else {
                mk(OutcomeKind::Corrupt, format!("mispaired Error id {rid}"))
            }
        }
        other => mk(
            OutcomeKind::Corrupt,
            format!("impossible response variant for a query: {other:?}"),
        ),
    }
}

/// One client's full script: connect once, run every batch in order.
#[allow(clippy::too_many_arguments)]
fn client_task(
    idx: usize,
    addr: SocketAddr,
    cfg: ScenarioConfig,
    reference: Arc<PackedSeq>,
    expected: Vec<Vec<Option<Hit>>>,
    outcomes: Arc<Mutex<Vec<BatchOutcome>>>,
) {
    let push = |o: BatchOutcome| {
        outcomes.lock().unwrap_or_else(|e| e.into_inner()).push(o);
    };
    sched::point("sc.client.connect");
    let sock = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            // The listener is already gone (drain won the race): every
            // batch of this client becomes an unconnected Io outcome.
            for b in 0..cfg.batches_per_client {
                push(BatchOutcome {
                    client: idx,
                    batch: b,
                    n_reads: cfg.reads_per_batch as u64,
                    kind: OutcomeKind::Io,
                    detail: format!("connect: {e}"),
                    connected: false,
                });
            }
            return;
        }
    };
    let _ = sock.set_read_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = sock.set_write_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = sock.set_nodelay(true);
    let Ok(read_half) = sock.try_clone() else {
        for b in 0..cfg.batches_per_client {
            push(BatchOutcome {
                client: idx,
                batch: b,
                n_reads: cfg.reads_per_batch as u64,
                kind: OutcomeKind::Io,
                detail: "socket clone failed".to_string(),
                connected: false,
            });
        }
        return;
    };
    let mut reader = BufReader::new(read_half);
    let deadline_ms = cfg.deadline_ms[idx % cfg.deadline_ms.len().max(1)];
    let secret = cfg.client_secret(idx);
    // Authed clients open with the nonce handshake; losing the race
    // with the drain here is an ordinary Io outcome for every batch.
    let mut nonce = 0u64;
    if secret.is_some() {
        match auth_handshake(&sock, &mut reader) {
            Ok(n) => nonce = n,
            Err(detail) => {
                for b in 0..cfg.batches_per_client {
                    push(BatchOutcome {
                        client: idx,
                        batch: b,
                        n_reads: cfg.reads_per_batch as u64,
                        kind: OutcomeKind::Io,
                        detail: detail.clone(),
                        connected: true,
                    });
                }
                return;
            }
        }
    }
    for b in 0..cfg.batches_per_client {
        let reads: Vec<PackedSeq> = (0..cfg.reads_per_batch)
            .map(|r| {
                query(
                    &reference,
                    (idx * cfg.batches_per_client + b) * cfg.reads_per_batch + r,
                )
            })
            .collect();
        let request_id = ((idx as u64) + 1) * 1_000 + b as u64;
        push(run_batch(
            &sock,
            &mut reader,
            idx,
            b,
            request_id,
            deadline_ms,
            &reads,
            &expected[b],
            secret.as_deref(),
            nonce,
            (b as u64) + 1,
        ));
    }
}

/// Run the `AuthHello` handshake on a fresh connection, returning the
/// dealt nonce. Any transport failure is reported as a string.
fn auth_handshake(sock: &TcpStream, reader: &mut BufReader<TcpStream>) -> Result<u64, String> {
    let body = Request::AuthHello.encode();
    let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
    gstream::write_frame(&mut frame, &body).map_err(|e| format!("handshake encode: {e}"))?;
    sched::point("sc.client.hello");
    send_all(sock, &frame).map_err(|e| format!("handshake write: {e}"))?;
    {
        let reader = &*reader;
        sched::wait_until("sc.client.read", &mut || {
            !reader.buffer().is_empty() || sock_readable(reader.get_ref())
        });
    }
    let payload = match gstream::read_frame(reader, "server") {
        Ok(Some(p)) => p,
        Ok(None) => return Err("eof during handshake".to_string()),
        Err(e) => return Err(format!("handshake read: {e}")),
    };
    match Response::decode(&payload, "server") {
        Ok(Response::AuthNonce { nonce }) => Ok(nonce),
        Ok(other) => Err(format!("handshake answered {other:?}")),
        Err(e) => Err(format!("handshake decode: {e}")),
    }
}

/// Execute one schedule of the scenario under a fresh controller. The
/// `picker` chooses, at every enabled-set decision, which candidate to
/// grant (candidates arrive sorted by task id); the chosen interleaving
/// is returned as `trace` and the protocol invariants are checked on
/// the completed run. Process-exclusive: serialized via
/// [`crate::sched_lock`] internally.
pub fn run_schedule(
    cfg: &ScenarioConfig,
    picker: &mut dyn FnMut(&[Candidate], &[GrantRecord]) -> usize,
) -> RunResult {
    let _exclusive = sched_lock();
    let reference = Arc::new(contig());

    // Reference answers, computed on a *separate* engine before any
    // scheduling begins: the oracle for byte-correctness is independent
    // of the system under test's threading entirely.
    let oracle = build_engine(&reference);
    let expected: Vec<Vec<Vec<Option<Hit>>>> = (0..cfg.clients)
        .map(|c| {
            (0..cfg.batches_per_client)
                .map(|b| {
                    (0..cfg.reads_per_batch)
                        .map(|r| {
                            oracle.query(&query(
                                &reference,
                                (c * cfg.batches_per_client + b) * cfg.reads_per_batch + r,
                            ))
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let ctl = sched::Controller::install();
    let rec = obs::Recorder::new();

    // The system under test. Worker and accept tasks announce
    // themselves inside these constructors, in deterministic order:
    // workers 0..n, then the accept loop, then our scripted tasks.
    let service = QueryService::start(
        build_engine(&reference),
        ServiceConfig {
            workers: cfg.workers,
            batch_chunk: cfg.batch_chunk,
            max_queue: cfg.max_queue,
        },
        &rec,
    );
    let server = Server::start(
        service,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: CLIENT_IO_TIMEOUT,
            write_timeout: CLIENT_IO_TIMEOUT,
            drain_deadline: Duration::from_millis(cfg.drain_deadline_ms),
            admission: AdmissionConfig {
                refill_per_s: 0.0,
                burst: cfg.burst,
            },
            stall_ms: 0,
            auth_secret: cfg.server_secret(),
            reload: None,
        },
        &rec,
        faultsim::Faults::disabled(),
    )
    .expect("bind scenario server");
    let addr = server.local_addr();

    let outcomes: Arc<Mutex<Vec<BatchOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let mut joins: Vec<std::thread::JoinHandle<()>> = Vec::new();

    for idx in 0..cfg.clients {
        let token = sched::announce(&format!("sc.client{idx}"));
        let cfg_c = cfg.clone();
        let reference_c = Arc::clone(&reference);
        let expected_c = expected[idx].clone();
        let outcomes_c = Arc::clone(&outcomes);
        joins.push(std::thread::spawn(move || {
            let _task = sched::begin(token);
            client_task(idx, addr, cfg_c, reference_c, expected_c, outcomes_c);
        }));
    }

    let prober_issues: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    if cfg.with_prober {
        let token = sched::announce("sc.prober");
        let issues = Arc::clone(&prober_issues);
        joins.push(std::thread::spawn(move || {
            let _task = sched::begin(token);
            prober_task(addr, &issues);
        }));
    }

    // The drainer owns the server: its `sc.drain.go` grant *is* the
    // shutdown moment the strategy explores.
    let stash: Arc<Mutex<Option<(DrainReport, StatsSnapshot)>>> = Arc::new(Mutex::new(None));
    {
        let token = sched::announce("sc.drainer");
        let stash = Arc::clone(&stash);
        let mut server = server;
        joins.push(std::thread::spawn(move || {
            let _task = sched::begin(token);
            sched::point("sc.drain.go");
            let report = server.shutdown();
            let snap = server.stats_snapshot();
            *stash.lock().unwrap_or_else(|e| e.into_inner()) = Some((report, snap));
            drop(server);
        }));
    }

    // Drive the schedule.
    let mut trace: Vec<GrantRecord> = Vec::new();
    let mut sched_violation: Option<String> = None;
    loop {
        if trace.len() >= MAX_GRANTS {
            sched_violation = Some(format!("schedule exceeded {MAX_GRANTS} grants"));
            break;
        }
        match ctl.step() {
            Err(v) => {
                sched_violation = Some(v.to_string());
                break;
            }
            Ok(StepState::AllExited) => break,
            Ok(StepState::Enabled(mut cands)) => {
                cands.sort_by_key(|c| c.task);
                let pick = picker(&cands, &trace).min(cands.len() - 1);
                let c = &cands[pick];
                rec.sched(trace.len() as u64, c.task as u64, &c.task_name, &c.point);
                trace.push(GrantRecord {
                    step: trace.len() as u64,
                    task: c.task as u64,
                    task_name: c.task_name.clone(),
                    point: c.point.clone(),
                    clock_ms: ctl.clock_ms(),
                });
                ctl.grant(c.task);
            }
        }
    }

    // Uninstall *before* joining: on an aborted schedule the tasks
    // free-run to completion; on a clean one everything has exited.
    drop(ctl);
    let mut panicked = Vec::new();
    for (i, j) in joins.into_iter().enumerate() {
        if j.join().is_err() {
            panicked.push(format!("scripted task #{i} panicked"));
        }
    }
    rec.flush();

    let totals = obs::Rollup::from_events(&rec.events()).totals();
    let counters: BTreeMap<String, u64> = [
        "qnet.accepted",
        "qnet.rejected",
        "qnet.deadline_shed",
        "qnet.fairness_shed",
        "qnet.auth_failed",
        "qnet.drain.force_closed",
    ]
    .into_iter()
    .map(|name| (name.to_string(), totals.counter(name)))
    .collect();

    let outcomes = Arc::try_unwrap(outcomes)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default();
    let (report, snap) = match Arc::try_unwrap(stash) {
        Ok(m) => match m.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some((r, s)) => (Some(r), Some(s)),
            None => (None, None),
        },
        Err(_) => (None, None),
    };
    let force_closed = report.map(|r| r.force_closed).unwrap_or(0);

    let mut violations = panicked;
    violations.extend(
        prober_issues
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..),
    );
    if let Some(v) = &sched_violation {
        violations.push(format!("scheduler: {v}"));
    } else {
        // Invariants only make sense on schedules that ran to
        // completion; an aborted run is already a violation.
        match (&report, &snap) {
            (Some(report), Some(snap)) => {
                violations.extend(invariants::check(cfg, &outcomes, report, snap, &counters));
            }
            _ => violations.push("drainer never produced a report/snapshot".to_string()),
        }
    }

    RunResult {
        trace,
        outcomes,
        report,
        snap,
        counters,
        sched_violation,
        violations,
        force_closed,
    }
}

/// One wire `Stats` probe at a schedule-chosen moment. Losing the race
/// with the drain (refused connect, EOF) is fine; a malformed or
/// wrongly-versioned snapshot is a violation.
fn prober_task(addr: SocketAddr, issues: &Mutex<Vec<String>>) {
    sched::point("sc.probe.go");
    let Ok(sock) = TcpStream::connect(addr) else {
        return;
    };
    let _ = sock.set_read_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = sock.set_write_timeout(Some(CLIENT_IO_TIMEOUT));
    let body = Request::Stats.encode();
    let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
    if gstream::write_frame(&mut frame, &body).is_err() {
        return;
    }
    if send_all(&sock, &frame).is_err() {
        return;
    }
    let Ok(read_half) = sock.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    {
        let reader = &reader;
        sched::wait_until("sc.probe.read", &mut || {
            !reader.buffer().is_empty() || sock_readable(reader.get_ref())
        });
    }
    let payload = match gstream::read_frame(&mut reader, "server") {
        Ok(Some(p)) => p,
        _ => return, // EOF / error: the drain won the race
    };
    let mut push = |s: String| issues.lock().unwrap_or_else(|e| e.into_inner()).push(s);
    match Response::decode(&payload, "server") {
        Ok(Response::Stats(snap)) => {
            if snap.version != qnet::STATS_VERSION {
                push(format!(
                    "prober: stats version {} != {}",
                    snap.version,
                    qnet::STATS_VERSION
                ));
            }
        }
        Ok(other) => push(format!("prober: non-Stats reply {other:?}")),
        Err(e) => push(format!("prober: corrupt stats reply: {e}")),
    }
}

/// Replay a recorded trace: at each step grant the candidate whose
/// `task_name@point` matches the recording. Returns the re-executed run
/// and the first step at which the live enabled set no longer contained
/// the recorded choice (`None` when the replay followed the recording
/// to the end — byte-for-byte the same interleaving, which callers
/// assert via [`crate::trace_hash`]).
pub fn replay_trace(cfg: &ScenarioConfig, recorded: &[GrantRecord]) -> (RunResult, Option<u64>) {
    let mut diverged_at: Option<u64> = None;
    let result = run_schedule(cfg, &mut |cands, trace| {
        let step = trace.len();
        if diverged_at.is_none() {
            if let Some(want) = recorded.get(step) {
                if let Some(i) = cands
                    .iter()
                    .position(|c| c.task_name == want.task_name && c.point == want.point)
                {
                    return i;
                }
                diverged_at = Some(step as u64);
            }
        }
        0
    });
    (result, diverged_at)
}
