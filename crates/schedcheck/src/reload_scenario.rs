//! The model-checked zero-downtime reload scenario: the real
//! [`qnet::Server`] serving generation 1 from an on-disk work dir while
//! a scripted reloader fires the wire `Reload` verb at a
//! schedule-chosen moment, swapping to generation 2 *under live
//! queries*.
//!
//! ## Topology
//!
//! * **work dir** — a real generation store built before scheduling
//!   begins: `gen-000001` (one contig) and `gen-000002` (a delta: the
//!   same contig plus a second one), both listed in `generations.json`.
//! * **server** — the real accept loop with
//!   [`qnet::ReloadConfig`] pointing at the work dir, started on
//!   generation 1.
//! * **clients** — `sr.client{i}` tasks speaking the wire protocol
//!   directly, unpinned (`generation: 0`), so which generation answers
//!   each batch is decided purely by where the reload lands in the
//!   schedule.
//! * **reloader** — `sr.reloader` sends one `Reload` targeting
//!   generation 2; its `sr.reload.go` grant *is* the swap moment the
//!   strategy explores, racing every client batch.
//! * **drainer** — `sr.drainer` waits until every scripted outcome is
//!   recorded, then drains and snapshots — so the drain itself can
//!   never shed a batch and every shed would be the reload's fault.
//!
//! ## Invariants (the zero-downtime contract)
//!
//! * Every batch is answered with `Hits` — a reload never sheds,
//!   refuses, or drops a query, and never kills a connection.
//! * Every answer byte-matches **exactly one** generation's oracle
//!   (computed on independent engines before scheduling), and the
//!   `generation` tag on the wire names that oracle. The two oracles
//!   are guaranteed to disagree on every batch — each batch carries a
//!   read only generation 2 can place — so a blended or mistagged
//!   answer cannot hide.
//! * Per client, the answering generation is monotone: once a client
//!   sees generation 2, no later batch regresses to 1 (unpinned
//!   batches bind to the active generation at admission, and the swap
//!   is atomic).
//! * The reload itself completes (`ReloadDone`, generation 2, zero
//!   rollbacks), and after the drain nothing is left in flight —
//!   the old generation finished its admitted work before the server
//!   tore down (`inflight == 0`, `queue_depth == 0`).

use crate::trace::GrantRecord;
use crate::{scenario, sched_lock};
use faultsim::sched::{self, Candidate, StepState};
use genome::PackedSeq;
use gstream::IoStats;
use qnet::{DrainReport, ReloadConfig, Request, Response, Server, ServerConfig, StatsSnapshot};
use qserve::{
    generations, AdmissionConfig, ContigStore, GenEntry, GenKind, GenManifest, Hit, IndexConfig,
    MinimizerIndex, QueryConfig, QueryEngine, QueryService, ServiceConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Grant cap per schedule — same backstop role as the serving
/// scenario's: a runaway loop becomes a reported violation.
const MAX_GRANTS: usize = 5_000;
/// Client socket timeouts; only matter after an abnormal teardown.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Deadline budget far above any explored schedule's virtual clock
/// (1 ms per grant, capped at [`MAX_GRANTS`]): the deadline gate must
/// never fire here, so any shed is the reload's fault by construction.
const DEADLINE_MS: u32 = 600_000;
/// The reloader's request id — outside every client's id space.
const RELOAD_RID: u64 = 9_000_001;

/// Scenario shape. The default is two clients racing a mid-script swap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadScenarioConfig {
    /// Worker threads in the query service.
    pub workers: usize,
    /// Concurrent clients (`sr.client{i}`, wire id `c{i}`).
    pub clients: usize,
    /// Query batches each client sends, sequentially on one connection.
    pub batches_per_client: usize,
    /// Reads per batch. Read 0 of every batch is a window of the
    /// generation-2-only contig, which forces the two oracles apart.
    pub reads_per_batch: usize,
    /// Worker queue admission limit, in chunks. Sized so queue sheds
    /// are impossible — any shed that appears is a violation.
    pub max_queue: usize,
    /// Reads per worker chunk.
    pub batch_chunk: usize,
}

impl Default for ReloadScenarioConfig {
    fn default() -> Self {
        ReloadScenarioConfig {
            workers: 2,
            clients: 2,
            batches_per_client: 2,
            reads_per_batch: 2,
            max_queue: 64,
            batch_chunk: 2,
        }
    }
}

impl ReloadScenarioConfig {
    /// Total reads offered across all clients and batches.
    pub fn offered_reads(&self) -> u64 {
        (self.clients * self.batches_per_client * self.reads_per_batch) as u64
    }
}

/// How one client batch ended, from the client's chair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReloadOutcomeKind {
    /// Byte-correct `Hits` matching exactly one generation's oracle.
    Hits,
    /// Any typed refusal (`Draining`, `Overloaded`, `DeadlineExceeded`,
    /// `AuthFailed`, remote `Error`) — always a violation here.
    Shed,
    /// Transport failure — always a violation here (the listener lives
    /// until every outcome is recorded).
    Io,
    /// A protocol violation the client proved: mispaired id, blended or
    /// mistagged answer bytes, impossible variant.
    Corrupt,
}

/// What one client observed for one batch — exactly one per batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReloadBatchOutcome {
    /// Client index (wire id `c{client}`).
    pub client: usize,
    /// Batch index within the client's script.
    pub batch: usize,
    /// The typed classification.
    pub kind: ReloadOutcomeKind,
    /// The generation tag the answer carried (`0` when not `Hits`).
    pub generation: u64,
    /// Human detail (mismatch description, io error, ...).
    pub detail: String,
}

/// How the scripted `Reload` call itself ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReloadCallOutcome {
    /// `ReloadDone` echoing the right id; carries the new active id.
    Done {
        /// The generation now serving unpinned queries.
        generation: u64,
    },
    /// `ReloadFailed` — the server rolled back. A violation in this
    /// fault-free scenario, but recorded faithfully.
    Failed {
        /// The generation the reload targeted.
        generation: u64,
        /// The server's failure display.
        message: String,
    },
    /// The reloader could not complete the wire exchange.
    Transport(String),
}

/// Everything one executed schedule produced.
#[derive(Debug, Clone)]
pub struct ReloadRunResult {
    /// The interleaving, one record per grant.
    pub trace: Vec<GrantRecord>,
    /// One outcome per (client, batch).
    pub outcomes: Vec<ReloadBatchOutcome>,
    /// The scripted reload call's outcome (`None` only on aborted
    /// schedules where the reloader never finished).
    pub reload: Option<ReloadCallOutcome>,
    /// The drain's own accounting.
    pub report: Option<DrainReport>,
    /// In-process stats snapshot taken after the drain completed.
    pub snap: Option<StatsSnapshot>,
    /// Post-hoc rollup of reload/admission counters.
    pub counters: BTreeMap<String, u64>,
    /// Scheduler-level failure (deadlock/hang/grant-cap), if any.
    pub sched_violation: Option<String>,
    /// Invariants that did not hold (empty on a good run).
    pub violations: Vec<String>,
}

/// The generation-2-only contig: same deterministic mixer as the base
/// contig, different seed, so the delta generation really answers
/// differently.
fn contig_b() -> PackedSeq {
    let mut codes = Vec::with_capacity(600);
    let mut x: u64 = 0x5eed_cafe_f00d_0002;
    while codes.len() < 600 {
        x = crate::splitmix64(x);
        let mut w = x;
        for _ in 0..32 {
            if codes.len() == 600 {
                break;
            }
            codes.push((w & 3) as u8);
            w >>= 2;
        }
    }
    PackedSeq::from_codes(&codes)
}

/// Export `contigs` as generation `id` into `dir` — store, index, and
/// manifest entry — exactly the layout [`qserve::QueryService::reload_from`]
/// consumes. Generation 1 is a `Full` build; later ids are `Delta`s.
fn export_generation(dir: &Path, id: u64, contigs: &[PackedSeq], io: &IoStats) {
    let store_name = generations::gen_store_file(id);
    let index_name = generations::gen_index_file(id);
    ContigStore::write(&dir.join(&store_name), contigs, io).expect("write generation store");
    let store = ContigStore::open(&dir.join(&store_name), io).expect("reopen generation store");
    let index = MinimizerIndex::build(
        &store,
        &IndexConfig {
            k: 9,
            w: 5,
            threads: 1,
        },
    );
    index
        .write(&dir.join(&index_name), io)
        .expect("write generation index");
    let mut manifest = if GenManifest::exists(dir) {
        GenManifest::load(dir, io).expect("load generation manifest")
    } else {
        GenManifest {
            version: generations::GEN_MANIFEST_VERSION,
            active: id,
            generations: Vec::new(),
        }
    };
    manifest.admit(GenEntry {
        id,
        store: store_name,
        index: index_name,
        store_checksum: store.checksum(),
        reads: contigs.len() as u64,
        read_len: 60,
        kind: if id == 1 {
            GenKind::Full
        } else {
            GenKind::Delta
        },
        parent: if id == 1 { None } else { Some(id - 1) },
    });
    manifest.store(dir, io).expect("store generation manifest");
}

/// Write and flush a whole buffer on a shared socket handle.
fn send_all(sock: &TcpStream, buf: &[u8]) -> std::io::Result<()> {
    let mut w = sock;
    w.write_all(buf)?;
    w.flush()
}

/// True when a read on `sock` would not block — a non-consuming probe,
/// safe as a scheduler re-poll predicate.
fn sock_readable(sock: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    let _ = sock.set_nonblocking(true);
    let r = sock.peek(&mut probe);
    let _ = sock.set_nonblocking(false);
    match r {
        Ok(_) => true,
        Err(e) => e.kind() != std::io::ErrorKind::WouldBlock,
    }
}

/// The read scripts, one per (client, batch): read 0 strides the
/// generation-2-only contig, the rest stride the shared base contig.
fn batch_reads(
    cfg: &ReloadScenarioConfig,
    base: &PackedSeq,
    extra: &PackedSeq,
    client: usize,
    batch: usize,
) -> Vec<PackedSeq> {
    (0..cfg.reads_per_batch)
        .map(|r| {
            let g = (client * cfg.batches_per_client + batch) * cfg.reads_per_batch + r;
            if r == 0 {
                scenario::query(extra, g)
            } else {
                scenario::query(base, g)
            }
        })
        .collect()
}

/// Send one unpinned query batch and classify the reply against both
/// generations' oracles.
fn run_batch(
    sock: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    client: usize,
    batch: usize,
    request_id: u64,
    reads: &[PackedSeq],
    expected: &(Vec<Option<Hit>>, Vec<Option<Hit>>),
) -> ReloadBatchOutcome {
    let mk = |kind: ReloadOutcomeKind, generation: u64, detail: String| ReloadBatchOutcome {
        client,
        batch,
        kind,
        generation,
        detail,
    };
    let body = Request::Query {
        request_id,
        deadline_ms: DEADLINE_MS,
        client_id: format!("c{client}"),
        reads: reads.to_vec(),
        auth_seq: 0,
        auth_tag: 0,
        generation: 0,
    }
    .encode();
    let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
    if gstream::write_frame(&mut frame, &body).is_err() {
        return mk(ReloadOutcomeKind::Io, 0, "frame encode".to_string());
    }
    sched::point("sr.client.send");
    if send_all(sock, &frame).is_err() {
        return mk(ReloadOutcomeKind::Io, 0, "request write failed".to_string());
    }
    {
        let reader = &*reader;
        sched::wait_until("sr.client.read", &mut || {
            !reader.buffer().is_empty() || sock_readable(reader.get_ref())
        });
    }
    let payload = match gstream::read_frame(reader, "server") {
        Ok(Some(p)) => p,
        Ok(None) => return mk(ReloadOutcomeKind::Io, 0, "eof before response".to_string()),
        Err(e) => return mk(ReloadOutcomeKind::Io, 0, format!("response read: {e}")),
    };
    let resp = match Response::decode(&payload, "server") {
        Ok(r) => r,
        Err(e) => {
            return mk(
                ReloadOutcomeKind::Corrupt,
                0,
                format!("response decode: {e}"),
            )
        }
    };
    match resp {
        Response::Hits {
            request_id: rid,
            generation,
            hits,
        } => {
            if rid != request_id {
                return mk(
                    ReloadOutcomeKind::Corrupt,
                    generation,
                    format!("mispaired Hits: sent id {request_id}, got {rid}"),
                );
            }
            let (gen1, gen2) = expected;
            let matches1 = hits == *gen1;
            let matches2 = hits == *gen2;
            match generation {
                1 if matches1 && !matches2 => mk(ReloadOutcomeKind::Hits, 1, String::new()),
                2 if matches2 && !matches1 => mk(ReloadOutcomeKind::Hits, 2, String::new()),
                g => mk(
                    ReloadOutcomeKind::Corrupt,
                    g,
                    format!(
                        "answer tagged generation {g} matches oracle 1: {matches1}, \
                         oracle 2: {matches2} — not exactly the tagged one"
                    ),
                ),
            }
        }
        Response::Draining { .. } => mk(ReloadOutcomeKind::Shed, 0, "Draining".to_string()),
        Response::DeadlineExceeded { .. } => {
            mk(ReloadOutcomeKind::Shed, 0, "DeadlineExceeded".to_string())
        }
        Response::Overloaded { scope, .. } => {
            mk(ReloadOutcomeKind::Shed, 0, format!("Overloaded ({scope})"))
        }
        Response::AuthFailed { .. } => mk(ReloadOutcomeKind::Shed, 0, "AuthFailed".to_string()),
        Response::Error { message, .. } => mk(
            ReloadOutcomeKind::Shed,
            0,
            format!("remote error: {message}"),
        ),
        other => mk(
            ReloadOutcomeKind::Corrupt,
            0,
            format!("impossible response variant for a query: {other:?}"),
        ),
    }
}

/// One client's full script: connect once, run every batch in order.
fn client_task(
    idx: usize,
    addr: SocketAddr,
    cfg: ReloadScenarioConfig,
    reads: Vec<Vec<PackedSeq>>,
    expected: Vec<(Vec<Option<Hit>>, Vec<Option<Hit>>)>,
    outcomes: Arc<Mutex<Vec<ReloadBatchOutcome>>>,
) {
    let push = |o: ReloadBatchOutcome| {
        outcomes.lock().unwrap_or_else(|e| e.into_inner()).push(o);
    };
    let io_all = |detail: String| {
        for b in 0..cfg.batches_per_client {
            push(ReloadBatchOutcome {
                client: idx,
                batch: b,
                kind: ReloadOutcomeKind::Io,
                generation: 0,
                detail: detail.clone(),
            });
        }
    };
    sched::point("sr.client.connect");
    let sock = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return io_all(format!("connect: {e}")),
    };
    let _ = sock.set_read_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = sock.set_write_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = sock.set_nodelay(true);
    let Ok(read_half) = sock.try_clone() else {
        return io_all("socket clone failed".to_string());
    };
    let mut reader = BufReader::new(read_half);
    for b in 0..cfg.batches_per_client {
        let request_id = ((idx as u64) + 1) * 1_000 + b as u64;
        push(run_batch(
            &sock,
            &mut reader,
            idx,
            b,
            request_id,
            &reads[b],
            &expected[b],
        ));
    }
}

/// The scripted reload: one wire `Reload` targeting generation 2, at
/// the moment the schedule grants `sr.reload.go`.
fn reloader_task(addr: SocketAddr, target: u64, slot: &Mutex<Option<ReloadCallOutcome>>) {
    let record = |o: ReloadCallOutcome| {
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(o);
    };
    sched::point("sr.reload.go");
    let sock = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return record(ReloadCallOutcome::Transport(format!("connect: {e}"))),
    };
    let _ = sock.set_read_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = sock.set_write_timeout(Some(CLIENT_IO_TIMEOUT));
    let _ = sock.set_nodelay(true);
    let body = Request::Reload {
        request_id: RELOAD_RID,
        generation: target,
    }
    .encode();
    let mut frame = Vec::with_capacity(gstream::FRAME_HEADER_BYTES + body.len());
    if gstream::write_frame(&mut frame, &body).is_err() {
        return record(ReloadCallOutcome::Transport("frame encode".to_string()));
    }
    if send_all(&sock, &frame).is_err() {
        return record(ReloadCallOutcome::Transport(
            "request write failed".to_string(),
        ));
    }
    let Ok(read_half) = sock.try_clone() else {
        return record(ReloadCallOutcome::Transport(
            "socket clone failed".to_string(),
        ));
    };
    let mut reader = BufReader::new(read_half);
    {
        let reader = &reader;
        sched::wait_until("sr.reload.read", &mut || {
            !reader.buffer().is_empty() || sock_readable(reader.get_ref())
        });
    }
    let payload = match gstream::read_frame(&mut reader, "server") {
        Ok(Some(p)) => p,
        Ok(None) => {
            return record(ReloadCallOutcome::Transport(
                "eof before response".to_string(),
            ))
        }
        Err(e) => return record(ReloadCallOutcome::Transport(format!("response read: {e}"))),
    };
    match Response::decode(&payload, "server") {
        Ok(Response::ReloadDone {
            request_id,
            generation,
        }) if request_id == RELOAD_RID => record(ReloadCallOutcome::Done { generation }),
        Ok(Response::ReloadFailed {
            request_id,
            generation,
            message,
        }) if request_id == RELOAD_RID => record(ReloadCallOutcome::Failed {
            generation,
            message,
        }),
        Ok(other) => record(ReloadCallOutcome::Transport(format!(
            "reload answered {other:?}"
        ))),
        Err(e) => record(ReloadCallOutcome::Transport(format!("decode: {e}"))),
    }
}

/// The zero-downtime invariants, checked on completed schedules.
fn check(
    cfg: &ReloadScenarioConfig,
    outcomes: &[ReloadBatchOutcome],
    reload: &Option<ReloadCallOutcome>,
    snap: &StatsSnapshot,
    counters: &BTreeMap<String, u64>,
) -> Vec<String> {
    let mut v = Vec::new();
    let total = cfg.clients * cfg.batches_per_client;
    if outcomes.len() != total {
        v.push(format!(
            "{} batch outcomes recorded for {total} batches offered",
            outcomes.len()
        ));
    }
    for o in outcomes {
        if o.kind != ReloadOutcomeKind::Hits {
            v.push(format!(
                "client {} batch {}: {:?} ({}) — a reload must never shed, refuse, \
                 or corrupt a query",
                o.client, o.batch, o.kind, o.detail
            ));
        }
    }
    // Per-client monotone generations: unpinned batches bind to the
    // active generation at admission, batches are sequential on one
    // connection, and the swap is atomic — so a regression 2 → 1 means
    // an answer escaped a retired binding.
    for c in 0..cfg.clients {
        let mut last = 0u64;
        let mut by_batch: Vec<&ReloadBatchOutcome> =
            outcomes.iter().filter(|o| o.client == c).collect();
        by_batch.sort_by_key(|o| o.batch);
        for o in by_batch {
            if o.kind == ReloadOutcomeKind::Hits {
                if o.generation < last {
                    v.push(format!(
                        "client {c} batch {}: generation regressed {last} -> {}",
                        o.batch, o.generation
                    ));
                }
                last = o.generation;
            }
        }
    }
    match reload {
        Some(ReloadCallOutcome::Done { generation: 2 }) => {}
        other => v.push(format!(
            "reload did not complete to generation 2 in a fault-free run: {other:?}"
        )),
    }
    if snap.generation != 2 {
        v.push(format!(
            "post-drain active generation is {} (want 2)",
            snap.generation
        ));
    }
    if snap.reloads != 1 || snap.rollbacks != 0 {
        v.push(format!(
            "reload tallies: {} reloads, {} rollbacks (want 1, 0)",
            snap.reloads, snap.rollbacks
        ));
    }
    if snap.inflight != 0 || snap.queue_depth != 0 {
        v.push(format!(
            "work left behind after drain: inflight {} queue {} — the old generation \
             must finish its admitted chunks before teardown",
            snap.inflight, snap.queue_depth
        ));
    }
    let offered = cfg.offered_reads();
    if snap.accepted != offered {
        v.push(format!(
            "accepted {} of {offered} offered reads — something was shed",
            snap.accepted
        ));
    }
    let sheds = snap.rejected + snap.deadline_shed + snap.fairness_shed + snap.force_closed;
    if sheds != 0 {
        v.push(format!("{sheds} reads shed in a run that must shed zero"));
    }
    for (name, want) in [
        ("qnet.reload.requested", 1),
        ("qnet.reload.ok", 1),
        ("qnet.reload.failed", 0),
    ] {
        let got = counters.get(name).copied().unwrap_or(0);
        if got != want {
            v.push(format!("counter {name} = {got} (want {want})"));
        }
    }
    v
}

/// Execute one schedule of the reload scenario under a fresh
/// controller; the `picker` chooses every grant. Process-exclusive:
/// serialized via [`crate::sched_lock`] internally.
pub fn run_reload_schedule(
    cfg: &ReloadScenarioConfig,
    picker: &mut dyn FnMut(&[Candidate], &[GrantRecord]) -> usize,
) -> ReloadRunResult {
    let _exclusive = sched_lock();
    let base = scenario::contig();
    let extra = contig_b();

    // The on-disk generations the server will reload from, written
    // before any scheduling begins.
    let dir = tempfile::tempdir().expect("reload scenario work dir");
    let io = IoStats::new(gstream::DiskModel::ssd());
    export_generation(dir.path(), 1, std::slice::from_ref(&base), &io);
    export_generation(dir.path(), 2, &[base.clone(), extra.clone()], &io);

    // Per-generation oracles on independent engines: byte-correctness
    // is judged against answers computed outside the system under test.
    let oracle1 = {
        let store = ContigStore::from_contigs(vec![base.clone()]);
        let index = MinimizerIndex::build(
            &store,
            &IndexConfig {
                k: 9,
                w: 5,
                threads: 1,
            },
        );
        QueryEngine::new(store, index, QueryConfig::default()).expect("oracle 1 binds")
    };
    let oracle2 = {
        let store = ContigStore::from_contigs(vec![base.clone(), extra.clone()]);
        let index = MinimizerIndex::build(
            &store,
            &IndexConfig {
                k: 9,
                w: 5,
                threads: 1,
            },
        );
        QueryEngine::new(store, index, QueryConfig::default()).expect("oracle 2 binds")
    };
    let reads: Vec<Vec<Vec<PackedSeq>>> = (0..cfg.clients)
        .map(|c| {
            (0..cfg.batches_per_client)
                .map(|b| batch_reads(cfg, &base, &extra, c, b))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<(Vec<Option<Hit>>, Vec<Option<Hit>>)>> = reads
        .iter()
        .map(|batches| {
            batches
                .iter()
                .map(|batch| {
                    (
                        batch.iter().map(|r| oracle1.query(r)).collect(),
                        batch.iter().map(|r| oracle2.query(r)).collect(),
                    )
                })
                .collect()
        })
        .collect();
    for (c, batches) in expected.iter().enumerate() {
        for (b, (e1, e2)) in batches.iter().enumerate() {
            assert_ne!(
                e1, e2,
                "scenario setup: client {c} batch {b} must tell the generations apart"
            );
        }
    }

    let ctl = sched::Controller::install();
    let rec = obs::Recorder::new();

    // The system under test, started on generation 1 with the reload
    // path armed at the work dir.
    let engine1 = {
        let store = ContigStore::open(&dir.path().join(generations::gen_store_file(1)), &io)
            .expect("open generation 1 store");
        let index = MinimizerIndex::open(&dir.path().join(generations::gen_index_file(1)), &io)
            .expect("open generation 1 index");
        QueryEngine::new(store, index, QueryConfig::default()).expect("generation 1 binds")
    };
    let service = QueryService::start_with_generation(
        engine1,
        1,
        ServiceConfig {
            workers: cfg.workers,
            batch_chunk: cfg.batch_chunk,
            max_queue: cfg.max_queue,
        },
        &rec,
    );
    let server = Server::start(
        service,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: CLIENT_IO_TIMEOUT,
            write_timeout: CLIENT_IO_TIMEOUT,
            drain_deadline: Duration::from_millis(1_000),
            admission: AdmissionConfig {
                refill_per_s: 0.0,
                burst: 1e9,
            },
            stall_ms: 0,
            auth_secret: None,
            reload: Some(ReloadConfig {
                work_dir: dir.path().to_path_buf(),
                shard: None,
            }),
        },
        &rec,
        faultsim::Faults::disabled(),
    )
    .expect("bind reload scenario server");
    let addr = server.local_addr();

    let outcomes: Arc<Mutex<Vec<ReloadBatchOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let reload_slot: Arc<Mutex<Option<ReloadCallOutcome>>> = Arc::new(Mutex::new(None));
    let mut joins: Vec<std::thread::JoinHandle<()>> = Vec::new();

    for idx in 0..cfg.clients {
        let token = sched::announce(&format!("sr.client{idx}"));
        let cfg_c = cfg.clone();
        let reads_c = reads[idx].clone();
        let expected_c = expected[idx].clone();
        let outcomes_c = Arc::clone(&outcomes);
        joins.push(std::thread::spawn(move || {
            let _task = sched::begin(token);
            client_task(idx, addr, cfg_c, reads_c, expected_c, outcomes_c);
        }));
    }
    {
        let token = sched::announce("sr.reloader");
        let slot = Arc::clone(&reload_slot);
        joins.push(std::thread::spawn(move || {
            let _task = sched::begin(token);
            reloader_task(addr, 2, &slot);
        }));
    }

    // The drainer tears down only after every scripted outcome is
    // recorded, so the drain can never be the reason a batch shed.
    let stash: Arc<Mutex<Option<(DrainReport, StatsSnapshot)>>> = Arc::new(Mutex::new(None));
    {
        let token = sched::announce("sr.drainer");
        let stash = Arc::clone(&stash);
        let outcomes_d = Arc::clone(&outcomes);
        let reload_d = Arc::clone(&reload_slot);
        let total = cfg.clients * cfg.batches_per_client;
        let mut server = server;
        joins.push(std::thread::spawn(move || {
            let _task = sched::begin(token);
            sched::wait_until("sr.drain.wait", &mut || {
                outcomes_d.lock().unwrap_or_else(|e| e.into_inner()).len() == total
                    && reload_d.lock().unwrap_or_else(|e| e.into_inner()).is_some()
            });
            let report = server.shutdown();
            let snap = server.stats_snapshot();
            *stash.lock().unwrap_or_else(|e| e.into_inner()) = Some((report, snap));
            drop(server);
        }));
    }

    // Drive the schedule.
    let mut trace: Vec<GrantRecord> = Vec::new();
    let mut sched_violation: Option<String> = None;
    loop {
        if trace.len() >= MAX_GRANTS {
            sched_violation = Some(format!("schedule exceeded {MAX_GRANTS} grants"));
            break;
        }
        match ctl.step() {
            Err(v) => {
                sched_violation = Some(v.to_string());
                break;
            }
            Ok(StepState::AllExited) => break,
            Ok(StepState::Enabled(mut cands)) => {
                cands.sort_by_key(|c| c.task);
                let pick = picker(&cands, &trace).min(cands.len() - 1);
                let c = &cands[pick];
                rec.sched(trace.len() as u64, c.task as u64, &c.task_name, &c.point);
                trace.push(GrantRecord {
                    step: trace.len() as u64,
                    task: c.task as u64,
                    task_name: c.task_name.clone(),
                    point: c.point.clone(),
                    clock_ms: ctl.clock_ms(),
                });
                ctl.grant(c.task);
            }
        }
    }

    drop(ctl);
    let mut panicked = Vec::new();
    for (i, j) in joins.into_iter().enumerate() {
        if j.join().is_err() {
            panicked.push(format!("scripted task #{i} panicked"));
        }
    }
    rec.flush();

    let totals = obs::Rollup::from_events(&rec.events()).totals();
    let counters: BTreeMap<String, u64> = [
        "qnet.accepted",
        "qnet.rejected",
        "qnet.deadline_shed",
        "qnet.fairness_shed",
        "qnet.reload.requested",
        "qnet.reload.ok",
        "qnet.reload.failed",
        "qnet.reload.stalled",
        "qserve.gen.reloads",
        "qserve.gen.rollbacks",
    ]
    .into_iter()
    .map(|name| (name.to_string(), totals.counter(name)))
    .collect();

    let outcomes = Arc::try_unwrap(outcomes)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default();
    let reload = Arc::try_unwrap(reload_slot)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default();
    let (report, snap) = match Arc::try_unwrap(stash) {
        Ok(m) => match m.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some((r, s)) => (Some(r), Some(s)),
            None => (None, None),
        },
        Err(_) => (None, None),
    };

    let mut violations = panicked;
    if let Some(v) = &sched_violation {
        violations.push(format!("scheduler: {v}"));
    } else {
        match &snap {
            Some(snap) => {
                violations.extend(check(cfg, &outcomes, &reload, snap, &counters));
            }
            None => violations.push("drainer never produced a report/snapshot".to_string()),
        }
    }

    ReloadRunResult {
        trace,
        outcomes,
        reload,
        report,
        snap,
        counters,
        sched_violation,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_schedule_swaps_with_zero_shed() {
        let cfg = ReloadScenarioConfig::default();
        let run = run_reload_schedule(&cfg, &mut |_, _| 0);
        assert!(
            run.violations.is_empty(),
            "baseline violations: {:?}\ntrace tail: {:?}",
            run.violations,
            run.trace.iter().rev().take(12).collect::<Vec<_>>()
        );
        assert_eq!(run.reload, Some(ReloadCallOutcome::Done { generation: 2 }));
        assert!(run
            .outcomes
            .iter()
            .all(|o| o.kind == ReloadOutcomeKind::Hits));
    }

    #[test]
    fn rotated_schedules_hold_the_invariants() {
        // Deterministic non-trivial interleavings: stride the enabled
        // set so the reload lands at different points of the client
        // scripts across runs, without the cost of a full DFS here.
        for stride in [1usize, 3, 7] {
            let cfg = ReloadScenarioConfig::default();
            let run = run_reload_schedule(&cfg, &mut |cands, trace| {
                (trace.len() * stride) % cands.len()
            });
            assert!(
                run.violations.is_empty(),
                "stride {stride} violations: {:?}",
                run.violations
            );
            assert_eq!(
                run.reload,
                Some(ReloadCallOutcome::Done { generation: 2 }),
                "stride {stride}"
            );
        }
    }

    #[test]
    fn single_client_single_batch_schedule_is_clean() {
        let cfg = ReloadScenarioConfig {
            clients: 1,
            batches_per_client: 1,
            ..ReloadScenarioConfig::default()
        };
        let run = run_reload_schedule(&cfg, &mut |cands, trace| (trace.len() * 5) % cands.len());
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert_eq!(run.outcomes.len(), 1);
    }
}
