//! # schedcheck — model checking the serving concurrency protocol
//!
//! Stress tests shake a server and hope a bad interleaving falls out;
//! this crate *enumerates* interleavings. It runs the real
//! [`qnet::Server`] and [`qserve::QueryService`] — real sockets, real
//! worker threads, real admission gates — under the cooperative
//! deterministic scheduler in [`faultsim::sched`], where every racy
//! transition is a named schedule point and the sequence of grants *is*
//! the interleaving. An exploration strategy picks the grants:
//!
//! * [`explore_dfs`](dfs::explore_dfs) — bounded exhaustive DFS over the
//!   first `decision_depth` scheduling decisions, with sleep-set
//!   (partial-order) pruning so provably commuting choices are not
//!   explored twice;
//! * [`explore_pct`](pct::explore_pct) — seeded random-priority (PCT
//!   style) schedules that reach deep, unlikely interleavings the
//!   bounded prefix cannot.
//!
//! Every explored schedule runs the full scenario ([`scenario`]) to
//! completion and then checks the protocol invariants
//! ([`invariants`]): every admitted request is answered byte-correctly
//! for its `request_id` or force-close-counted — never silently lost,
//! never mispaired; the server's live accounting equals the post-hoc
//! trace roll-up and brackets the outcomes clients actually observed;
//! after shutdown nothing is left in flight and fairness tokens were
//! charged at most once per read.
//!
//! Failing schedules serialize to a JSONL trace ([`trace`]) that
//! replays byte-for-byte: the recorded `(task_name, point)` sequence
//! (or, for PCT, just the seed) reproduces the identical interleaving,
//! asserted by comparing [`trace::trace_hash`]es.
//!
//! A second scenario ([`router_scenario`]) runs the sharded cluster —
//! a real [`qrouter::Router`] scatter-gathering over two shard servers
//! — under the same controller, checking read conservation
//! (`offered == merged + typed-failed`) and that the hedge race never
//! double-counts a batch.
//!
//! A third scenario ([`reload_scenario`]) races a live generation hot
//! reload (the wire `Reload` verb swapping a real on-disk generation
//! store) against in-flight query batches, checking the zero-downtime
//! contract: no batch is ever shed or corrupted by the swap, every
//! answer byte-matches exactly the generation it is tagged with, and
//! per client the answering generation never regresses.
//!
//! Schedule executions are process-wide exclusive (the scheduler
//! installs globally), serialized behind [`sched_lock`].

pub mod dfs;
pub mod invariants;
pub mod pct;
pub mod reload_scenario;
pub mod router_scenario;
pub mod scenario;
pub mod trace;

pub use dfs::{explore_dfs, DfsConfig};
pub use pct::{explore_pct, PctConfig};
pub use reload_scenario::{
    run_reload_schedule, ReloadBatchOutcome, ReloadCallOutcome, ReloadOutcomeKind, ReloadRunResult,
    ReloadScenarioConfig,
};
pub use router_scenario::{
    run_router_schedule, RouterBatchOutcome, RouterOutcomeKind, RouterRunResult,
    RouterScenarioConfig,
};
pub use scenario::{
    replay_trace, run_schedule, AuthMode, BatchOutcome, OutcomeKind, RunResult, ScenarioConfig,
};
pub use trace::{trace_hash, GrantRecord};

use std::sync::{Mutex, MutexGuard};

static SCHED_LOCK: Mutex<()> = Mutex::new(());

/// Serialize schedule executions: [`faultsim::sched::Controller`] is
/// process-wide, so two concurrent runs (e.g. parallel `cargo test`
/// threads) would share a task registry. Hold the guard for the whole
/// execution.
pub fn sched_lock() -> MutexGuard<'static, ()> {
    SCHED_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One confirmed problem found by exploration: either the scheduler
/// itself failed to make progress (deadlock/hang in the real code) or a
/// protocol invariant did not hold on a completed schedule.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// `"dfs"` or `"pct:<seed>"` — enough to re-run the strategy.
    pub strategy: String,
    /// What went wrong (invariant text or scheduler failure).
    pub detail: String,
    /// The grant sequence that produced it, replayable via
    /// [`scenario::replay_trace`].
    pub trace: Vec<GrantRecord>,
}

/// Aggregate results of an exploration pass.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ExploreReport {
    /// Schedules executed end-to-end.
    pub schedules_explored: u64,
    /// Unique interleavings among them (distinct [`trace_hash`]es).
    pub distinct_interleavings: u64,
    /// Replayed prefixes that diverged from the recorded choice (the
    /// enabled set differed on re-execution) — counted honestly, not
    /// silently retried.
    pub diverged: u64,
    /// Longest schedule seen, in grants.
    pub max_steps: u64,
    /// Schedules in which the drain force-closed at least one straggler.
    pub force_closed_runs: u64,
    /// Schedules in which at least one batch was deadline-shed.
    pub deadline_shed_runs: u64,
    /// Schedules in which at least one batch was fairness-shed.
    pub fairness_shed_runs: u64,
    /// Invariant or scheduler violations, with replayable traces.
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// Fold `other` into `self` (union of hashes is handled by callers;
    /// this sums the counters and concatenates violations).
    pub fn absorb(&mut self, other: ExploreReport) {
        self.schedules_explored += other.schedules_explored;
        self.distinct_interleavings += other.distinct_interleavings;
        self.diverged += other.diverged;
        self.max_steps = self.max_steps.max(other.max_steps);
        self.force_closed_runs += other.force_closed_runs;
        self.deadline_shed_runs += other.deadline_shed_runs;
        self.fairness_shed_runs += other.fairness_shed_runs;
        self.violations.extend(other.violations);
    }

    /// Tally a completed run into the coverage counters.
    pub(crate) fn observe_run(&mut self, run: &RunResult) {
        self.schedules_explored += 1;
        self.max_steps = self.max_steps.max(run.trace.len() as u64);
        if run.force_closed > 0 {
            self.force_closed_runs += 1;
        }
        if run
            .outcomes
            .iter()
            .any(|o| o.kind == OutcomeKind::DeadlineShed)
        {
            self.deadline_shed_runs += 1;
        }
        if run
            .outcomes
            .iter()
            .any(|o| o.kind == OutcomeKind::FairnessShed)
        {
            self.fairness_shed_runs += 1;
        }
    }
}

/// The splitmix64 mixer — the repo's standard deterministic PRNG step
/// (same constants as the client's backoff jitter and dnet's recovery).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
