//! Schedule traces: the serialized form of an interleaving.
//!
//! A trace is the sequence of grants the controller made — one
//! [`GrantRecord`] per scheduling decision. Two runs are *the same
//! interleaving* iff their `(task_name, point)` sequences match;
//! [`trace_hash`] fingerprints exactly that (task ids and clock values
//! are derived, so they are excluded from identity but kept in the
//! record for human debugging).
//!
//! Traces serialize to JSONL — one record per line — so a failing
//! schedule archived by CI can be replayed byte-for-byte with
//! [`crate::scenario::replay_trace`] and diffed line-by-line against
//! the reproduction.

use serde::{Deserialize, Serialize};

/// One scheduling decision: at `step`, the controller granted `task`
/// (announced as `task_name`), which was parked at schedule point
/// `point`, while the virtual clock read `clock_ms`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrantRecord {
    /// 0-based index of this grant in the schedule.
    pub step: u64,
    /// Scheduler task id (registration order; stable within a run but
    /// not part of interleaving identity).
    pub task: u64,
    /// The task's announced name — stable across runs of the same
    /// scenario, and the unit of interleaving identity.
    pub task_name: String,
    /// The schedule point the task was parked at when granted.
    pub point: String,
    /// Virtual clock at grant time, in milliseconds.
    pub clock_ms: u64,
}

/// FNV-1a fingerprint of the interleaving: folds each grant's
/// `task_name` and `point` (with separators so `("a", "bc")` and
/// `("ab", "c")` differ). Equal hashes on the scenario sizes explored
/// here mean equal `(task_name, point)` sequences for all practical
/// purposes; replay asserts equality through this hash.
pub fn trace_hash(trace: &[GrantRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for g in trace {
        eat(g.task_name.as_bytes());
        eat(b"@");
        eat(g.point.as_bytes());
        eat(b"\n");
    }
    h
}

/// Serialize a trace as JSONL: one [`GrantRecord`] object per line.
pub fn to_jsonl(trace: &[GrantRecord]) -> String {
    let mut out = String::new();
    for g in trace {
        // GrantRecord contains no map types, so serialization cannot fail.
        out.push_str(&serde_json::to_string(g).expect("serialize grant record"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL trace produced by [`to_jsonl`]. Blank lines are
/// ignored; a malformed line reports its 1-based line number.
pub fn from_jsonl(text: &str) -> Result<Vec<GrantRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: GrantRecord =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(step: u64, name: &str, point: &str) -> GrantRecord {
        GrantRecord {
            step,
            task: step % 3,
            task_name: name.to_string(),
            point: point.to_string(),
            clock_ms: step,
        }
    }

    #[test]
    fn jsonl_round_trips_and_hash_tracks_identity() {
        let trace = vec![
            grant(0, "client0", "qnet.client.read"),
            grant(1, "worker0", "qserve.worker.dequeue"),
            grant(2, "drainer", "qnet.drain.set"),
        ];
        let text = to_jsonl(&trace);
        assert_eq!(text.lines().count(), 3);
        let back = from_jsonl(&text).expect("parse");
        assert_eq!(back, trace);
        assert_eq!(trace_hash(&back), trace_hash(&trace));

        // Identity is (task_name, point) only: perturbing derived fields
        // keeps the hash, perturbing the point changes it.
        let mut derived = trace.clone();
        derived[1].task = 9;
        derived[1].clock_ms = 99;
        assert_eq!(trace_hash(&derived), trace_hash(&trace));
        let mut other = trace.clone();
        other[1].point = "qserve.worker.exec".to_string();
        assert_ne!(trace_hash(&other), trace_hash(&trace));
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let text = format!("{}\nnot json\n", to_jsonl(&[grant(0, "a", "p")]).trim_end());
        let err = from_jsonl(&text).expect_err("must fail");
        assert!(err.contains("line 2"), "got: {err}");
    }
}
