//! The protocol invariants checked on every completed schedule.
//!
//! Three independent observers of the same run are reconciled here:
//! the **clients** (typed [`BatchOutcome`]s, with byte-correctness
//! already proven against a separate oracle engine), the **server's
//! live accounting** ([`StatsSnapshot`] + [`DrainReport`]), and the
//! **post-hoc trace rollup** (the `qnet.*` counters). Where an exact
//! equality is physically impossible — a typed shed response can be
//! suppressed by a racing force-close, leaving the client with an EOF —
//! the invariant is a tight two-sided bound with the `Io` reads as the
//! only slack, so silence can never hide a mispairing or a lost answer.
//!
//! Numbered catalog (ROBUSTNESS.md "Schedule exploration"):
//!
//! * **I1** — no `Corrupt` (mispair / wrong bytes) and no `RemoteError`
//!   outcomes; every batch produced exactly one outcome.
//! * **I2** — `accepted == delivered Hits + force_closed`: every
//!   admitted read was answered byte-correctly or force-close-counted.
//! * **I3** — after shutdown: `inflight == 0`, `queue_depth == 0`,
//!   the snapshot says draining.
//! * **I4** — live snapshot == trace rollup, counter for counter,
//!   including `force_closed`, which also equals the [`DrainReport`].
//! * **I5** — per-gate counters bracket the observed outcomes with
//!   `Io` as the only slack (two-sided).
//! * **I6** — fairness tokens never double- or under-charged: with
//!   zero refill, `burst − tokens` is integral and lies in
//!   `[accepted, accepted + rejected]` per client.
//! * **I7** — per-client totals sum exactly to the global counters.
//! * **I8** — `completed` implies `force_closed == 0`.
//! * **I9** — under [`AuthMode::OneBadClient`], the forging client
//!   never receives `Hits` and its fairness bucket is never charged.
//!
//! [`AuthMode::OneBadClient`]: crate::scenario::AuthMode::OneBadClient

use crate::scenario::{AuthMode, BatchOutcome, OutcomeKind, ScenarioConfig};
use qnet::{DrainReport, StatsSnapshot};
use std::collections::BTreeMap;

/// Tolerance for f64 token arithmetic (sums of integral charges).
const TOKEN_EPS: f64 = 1e-6;

/// Check every invariant; returns one message per violation (empty on a
/// clean run).
pub fn check(
    cfg: &ScenarioConfig,
    outcomes: &[BatchOutcome],
    report: &DrainReport,
    snap: &StatsSnapshot,
    counters: &BTreeMap<String, u64>,
) -> Vec<String> {
    let mut v: Vec<String> = Vec::new();
    let mut fail = |msg: String| v.push(msg);

    let by_kind = |k: OutcomeKind| -> u64 {
        outcomes
            .iter()
            .filter(|o| o.kind == k)
            .map(|o| o.n_reads)
            .sum()
    };
    let hits = by_kind(OutcomeKind::Hits);
    let drain = by_kind(OutcomeKind::DrainShed);
    let deadline = by_kind(OutcomeKind::DeadlineShed);
    let fairness = by_kind(OutcomeKind::FairnessShed);
    let queue = by_kind(OutcomeKind::QueueShed);
    let auth = by_kind(OutcomeKind::AuthRejected);
    let io = by_kind(OutcomeKind::Io);
    let c = |name: &str| counters.get(name).copied().unwrap_or(0);

    // I1: nothing silent, nothing mispaired, nothing byte-wrong.
    for o in outcomes {
        if matches!(o.kind, OutcomeKind::Corrupt | OutcomeKind::RemoteError) {
            fail(format!(
                "I1: client {} batch {} got {:?}: {}",
                o.client, o.batch, o.kind, o.detail
            ));
        }
    }
    let expected_batches = cfg.clients * cfg.batches_per_client;
    if outcomes.len() != expected_batches {
        fail(format!(
            "I1: {} outcomes for {} offered batches — a batch ended in silence or double-counted",
            outcomes.len(),
            expected_batches
        ));
    }
    let observed: u64 = outcomes.iter().map(|o| o.n_reads).sum();
    if observed != cfg.offered_reads() {
        fail(format!(
            "I1: outcome reads {} != offered reads {}",
            observed,
            cfg.offered_reads()
        ));
    }

    // I2: the admitted ledger balances exactly. `accepted` includes the
    // force-closed stragglers (their workers did finish the batch), so
    // delivered answers must make up the difference precisely.
    if c("qnet.accepted") != hits + report.force_closed {
        fail(format!(
            "I2: accepted {} != delivered hits {} + force_closed {}",
            c("qnet.accepted"),
            hits,
            report.force_closed
        ));
    }

    // I3: shutdown left nothing behind.
    if snap.inflight != 0 {
        fail(format!(
            "I3: inflight {} != 0 after shutdown",
            snap.inflight
        ));
    }
    if snap.queue_depth != 0 {
        fail(format!(
            "I3: queue_depth {} != 0 after shutdown",
            snap.queue_depth
        ));
    }
    if !snap.draining {
        fail("I3: snapshot after shutdown does not say draining".to_string());
    }

    // I4: the live snapshot and the post-hoc trace rollup agree.
    for (label, live, rolled) in [
        ("accepted", snap.accepted, c("qnet.accepted")),
        ("rejected", snap.rejected, c("qnet.rejected")),
        ("deadline_shed", snap.deadline_shed, c("qnet.deadline_shed")),
        ("fairness_shed", snap.fairness_shed, c("qnet.fairness_shed")),
        (
            "force_closed",
            snap.force_closed,
            c("qnet.drain.force_closed"),
        ),
    ] {
        if live != rolled {
            fail(format!("I4: live {label} {live} != trace rollup {rolled}"));
        }
    }
    if snap.force_closed != report.force_closed {
        fail(format!(
            "I4: snapshot force_closed {} != drain report {}",
            snap.force_closed, report.force_closed
        ));
    }

    // I5: each gate's counter brackets its observed outcomes, with the
    // Io reads as the only slack (a typed response suppressed by a
    // racing force-close surfaces as EOF on the client side).
    for (label, counted, seen) in [
        ("deadline", c("qnet.deadline_shed"), deadline),
        ("fairness", c("qnet.fairness_shed"), fairness),
        ("auth", c("qnet.auth_failed"), auth),
    ] {
        if counted < seen || counted > seen + io {
            fail(format!(
                "I5: {label} counter {counted} outside [{seen}, {}] (outcomes {seen} + io {io})",
                seen + io
            ));
        }
    }
    // Drain and queue sheds share the `rejected` counter; force-closed
    // stragglers also surface as Draining (or EOF) on the client.
    let rejected_like = c("qnet.rejected") + report.force_closed;
    if drain + queue > rejected_like {
        fail(format!(
            "I5: client drain {drain} + queue {queue} sheds exceed rejected {} + force_closed {}",
            c("qnet.rejected"),
            report.force_closed
        ));
    }
    if rejected_like > drain + queue + io {
        fail(format!(
            "I5: rejected {} + force_closed {} exceed observed drain {drain} + queue {queue} + io {io}",
            c("qnet.rejected"),
            report.force_closed
        ));
    }

    // I6: fairness tokens. With zero refill a bucket only ever moves by
    // whole admitted charges: spent = burst − tokens must be integral,
    // at least the client's accepted reads (each was charged exactly
    // once) and at most accepted + rejected (queue sheds and drain-swept
    // admissions were charged too; drain/deadline/auth sheds never are).
    for cs in &snap.clients {
        let spent = cfg.burst - cs.tokens;
        if (spent - spent.round()).abs() > TOKEN_EPS {
            fail(format!(
                "I6: client {} spent {:.9} tokens — not an integral number of charges",
                cs.client_id, spent
            ));
        }
        let spent = spent.round() as i64;
        let lo = cs.accepted as i64;
        let hi = (cs.accepted + cs.rejected) as i64;
        if spent < lo || spent > hi {
            fail(format!(
                "I6: client {} spent {spent} tokens outside [{lo}, {hi}] \
                 (accepted {}, rejected {})",
                cs.client_id, cs.accepted, cs.rejected
            ));
        }
    }

    // I7: per-client sums equal the globals (double-entry bookkeeping).
    let sum = |pick: fn(&qnet::ClientStats) -> u64| snap.clients.iter().map(pick).sum::<u64>();
    for (label, global, summed) in [
        ("accepted", snap.accepted, sum(|c| c.accepted)),
        ("rejected", snap.rejected, sum(|c| c.rejected)),
        (
            "deadline_shed",
            snap.deadline_shed,
            sum(|c| c.deadline_shed),
        ),
        (
            "fairness_shed",
            snap.fairness_shed,
            sum(|c| c.fairness_shed),
        ),
    ] {
        if global != summed {
            fail(format!(
                "I7: global {label} {global} != per-client sum {summed}"
            ));
        }
    }

    // I8: a drain that claims completion force-closed nobody.
    if report.completed && report.force_closed != 0 {
        fail(format!(
            "I8: drain reported completed with {} reads force-closed",
            report.force_closed
        ));
    }

    // I9: the forging client gets nothing and pays nothing.
    if cfg.auth == AuthMode::OneBadClient {
        for o in outcomes.iter().filter(|o| o.client == 0) {
            if o.kind == OutcomeKind::Hits {
                fail(format!(
                    "I9: forging client got byte-correct Hits for batch {}",
                    o.batch
                ));
            }
        }
        if let Some(cs) = snap.clients.iter().find(|c| c.client_id == "c0") {
            if cs.accepted != 0 {
                fail(format!(
                    "I9: forging client has {} accepted reads",
                    cs.accepted
                ));
            }
            if (cs.tokens - cfg.burst).abs() > TOKEN_EPS {
                fail(format!(
                    "I9: forging client's bucket was charged (tokens {} != burst {})",
                    cs.tokens, cfg.burst
                ));
            }
        }
    }

    v
}
