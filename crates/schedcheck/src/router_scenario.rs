//! The model-checked *cluster* scenario: a real [`qrouter::Router`]
//! scatter-gathering over two real single-replica shard servers, all
//! driven by the [`faultsim::sched`] controller.
//!
//! ## Topology
//!
//! * **shard servers** — two full `qnet::Server` + `qserve` stacks,
//!   each holding one slice of the minimizer postings
//!   ([`qserve::MinimizerIndex::build_shard`]) over the same
//!   deterministic contig.
//! * **router** — `rt.router` runs the real [`qrouter::Router::route`]
//!   for a fixed script of batches; every scatter task, hedge attempt,
//!   and fail-over backoff inside the router is itself an announced
//!   scheduler task (`qrouter.*`), so the explored interleavings cover
//!   the hedge race and the ladder walk, not just the servers.
//! * **drainer** — `rt.drainer` owns both servers; its `rt.drain.go`
//!   grant is the shutdown moment the strategy explores: before the
//!   first scatter, between batches, or mid-race.
//!
//! ## Invariants checked on every completed schedule
//!
//! * **Conservation** — every offered read is accounted exactly once:
//!   `offered == merged + typed-failed`. A batch the router answers is
//!   byte-identical to the single-node oracle; a batch it cannot
//!   answer fails with a *typed* [`qrouter::RouterError`], never a
//!   hang, never a partial answer.
//! * **Merge charged once** — the `qrouter.merge` counter equals the
//!   reads of successfully merged batches exactly, so a hedge race can
//!   never double-count a batch (the loser's late answer is discarded,
//!   not merged again).
//! * **Hedge token never charged twice** — `qrouter.hedge.won` never
//!   exceeds `qrouter.hedge.fired`, and with single-replica shards the
//!   hedge and primary target the same process, so a won race still
//!   merges exactly once.

use crate::trace::GrantRecord;
use crate::{scenario, sched_lock};
use faultsim::sched::{self, Candidate, StepState};
use genome::PackedSeq;
use qnet::{ClientConfig, Server, ServerConfig};
use qrouter::{ClusterManifest, Router, RouterConfig, RouterError};
use qserve::{
    AdmissionConfig, ContigStore, Hit, IndexConfig, MinimizerIndex, QueryConfig, QueryEngine,
    QueryService, ServiceConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shards in the cluster scenario (fixed: the point is the scatter).
const N_SHARDS: u32 = 2;
/// Grant cap per schedule — same backstop role as the serving
/// scenario's, sized up for the extra tasks a scatter spawns.
const MAX_GRANTS: usize = 8_000;
/// Socket timeouts; only relevant after an aborted schedule free-runs.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Shape of the cluster scenario. Defaults keep schedules small enough
/// for exploration while still exercising hedge and fail-over paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterScenarioConfig {
    /// Batches the router routes, sequentially.
    pub batches: usize,
    /// Reads per batch.
    pub reads_per_batch: usize,
    /// Worker threads per shard service.
    pub workers: usize,
    /// Fail-over rounds before a shard dead-letters.
    pub failover_rounds: u32,
    /// Hedge ceiling in *virtual* milliseconds: small, so a scheduler
    /// that parks the primary a few grants makes the hedge fire.
    pub hedge_max_ms: u64,
    /// Drain deadline (virtual ms) for both shard servers.
    pub drain_deadline_ms: u64,
}

impl Default for RouterScenarioConfig {
    fn default() -> Self {
        RouterScenarioConfig {
            batches: 2,
            reads_per_batch: 2,
            workers: 1,
            failover_rounds: 2,
            hedge_max_ms: 3,
            drain_deadline_ms: 8,
        }
    }
}

impl RouterScenarioConfig {
    /// Total reads the router offers across the script.
    pub fn offered_reads(&self) -> u64 {
        (self.batches * self.reads_per_batch) as u64
    }
}

/// How one routed batch ended, from the caller's chair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterOutcomeKind {
    /// Byte-identical to the single-node oracle.
    Merged,
    /// Typed [`RouterError::ShardUnavailable`] after the ladder.
    ShardUnavailable,
    /// Typed terminal [`RouterError::Net`].
    Net,
    /// A wrong answer — always a violation.
    Corrupt,
}

/// One batch's outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterBatchOutcome {
    /// Batch index in the script.
    pub batch: usize,
    /// Reads in the batch.
    pub n_reads: u64,
    /// Typed classification.
    pub kind: RouterOutcomeKind,
    /// Error display / mismatch detail.
    pub detail: String,
}

/// Everything one executed cluster schedule produced.
#[derive(Debug, Clone)]
pub struct RouterRunResult {
    /// The interleaving, one record per grant.
    pub trace: Vec<GrantRecord>,
    /// One outcome per batch.
    pub outcomes: Vec<RouterBatchOutcome>,
    /// Post-hoc rollup: `qrouter.*` and `qnet.*` counters.
    pub counters: BTreeMap<String, u64>,
    /// Scheduler-level failure (deadlock/hang/grant cap), if any.
    pub sched_violation: Option<String>,
    /// Invariants that did not hold (empty on a good run).
    pub violations: Vec<String>,
}

/// One shard's serving stack over `reference`, holding shard `shard`
/// of the postings split `N_SHARDS` ways.
fn start_shard_server(
    reference: &PackedSeq,
    shard: u32,
    cfg: &RouterScenarioConfig,
    rec: &obs::Recorder,
) -> Server {
    let icfg = IndexConfig {
        k: 9,
        w: 5,
        threads: 1,
    };
    let index_store = ContigStore::from_contigs(vec![reference.clone()]);
    let index = MinimizerIndex::build_shard(&index_store, &icfg, shard, N_SHARDS);
    let store = ContigStore::from_contigs(vec![reference.clone()]);
    let engine =
        QueryEngine::new(store, index, QueryConfig::default()).expect("shard engine binds");
    let service = QueryService::start(
        engine,
        ServiceConfig {
            workers: cfg.workers,
            batch_chunk: 2,
            max_queue: 8,
        },
        rec,
    );
    Server::start(
        service,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: IO_TIMEOUT,
            write_timeout: IO_TIMEOUT,
            drain_deadline: Duration::from_millis(cfg.drain_deadline_ms),
            admission: AdmissionConfig {
                refill_per_s: 0.0,
                burst: 1_000.0,
            },
            stall_ms: 0,
            auth_secret: None,
            reload: None,
        },
        rec,
        faultsim::Faults::disabled(),
    )
    .expect("bind shard server")
}

/// Execute one schedule of the cluster scenario under a fresh
/// controller; same contract as [`scenario::run_schedule`]: the
/// `picker` chooses every grant, the interleaving comes back as
/// `trace`, and the cluster invariants are checked on completion.
/// Process-exclusive via [`crate::sched_lock`].
pub fn run_router_schedule(
    cfg: &RouterScenarioConfig,
    picker: &mut dyn FnMut(&[Candidate], &[GrantRecord]) -> usize,
) -> RouterRunResult {
    let _exclusive = sched_lock();
    let reference = Arc::new(scenario::contig());

    // Single-node oracle answers, computed before any scheduling.
    let oracle = scenario::build_engine(&reference);
    let expected: Vec<Vec<Option<Hit>>> = (0..cfg.batches)
        .map(|b| {
            (0..cfg.reads_per_batch)
                .map(|r| oracle.query(&scenario::query(&reference, b * cfg.reads_per_batch + r)))
                .collect()
        })
        .collect();

    let ctl = sched::Controller::install();
    let rec = obs::Recorder::new();

    // Shard stacks announce their workers and accept loops here, in
    // shard order, before the scripted tasks — deterministic registry.
    let server0 = start_shard_server(&reference, 0, cfg, &rec);
    let server1 = start_shard_server(&reference, 1, cfg, &rec);
    let checksum = ContigStore::from_contigs(vec![reference.as_ref().clone()]).checksum();
    let mut manifest = ClusterManifest::new(N_SHARDS, checksum);
    manifest.add_replica(0, server0.local_addr().to_string());
    manifest.add_replica(1, server1.local_addr().to_string());

    let outcomes: Arc<Mutex<Vec<RouterBatchOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let mut joins: Vec<std::thread::JoinHandle<()>> = Vec::new();

    {
        let token = sched::announce("rt.router");
        let cfg_r = cfg.clone();
        let reference_r = Arc::clone(&reference);
        let outcomes_r = Arc::clone(&outcomes);
        let rec_r = rec.clone();
        joins.push(std::thread::spawn(move || {
            let _task = sched::begin(token);
            let router = Router::new(
                manifest,
                RouterConfig {
                    client: ClientConfig {
                        client_id: "rt".to_string(),
                        backoff_base_ms: 2,
                        read_timeout: IO_TIMEOUT,
                        write_timeout: IO_TIMEOUT,
                        ..ClientConfig::default()
                    },
                    hedge_min_ms: 1,
                    hedge_max_ms: cfg_r.hedge_max_ms,
                    failover_rounds: cfg_r.failover_rounds,
                    ..RouterConfig::default()
                },
                faultsim::Faults::disabled(),
                &rec_r,
            )
            .expect("manifest validates");
            for b in 0..cfg_r.batches {
                let reads: Vec<PackedSeq> = (0..cfg_r.reads_per_batch)
                    .map(|r| scenario::query(&reference_r, b * cfg_r.reads_per_batch + r))
                    .collect();
                sched::point("rt.route.go");
                let outcome = match router.route(&reads) {
                    Ok(hits) => {
                        if hits == expected[b] {
                            RouterBatchOutcome {
                                batch: b,
                                n_reads: reads.len() as u64,
                                kind: RouterOutcomeKind::Merged,
                                detail: String::new(),
                            }
                        } else {
                            RouterBatchOutcome {
                                batch: b,
                                n_reads: reads.len() as u64,
                                kind: RouterOutcomeKind::Corrupt,
                                detail: format!("got {hits:?}, want {:?}", expected[b]),
                            }
                        }
                    }
                    Err(e @ RouterError::ShardUnavailable { .. }) => RouterBatchOutcome {
                        batch: b,
                        n_reads: reads.len() as u64,
                        kind: RouterOutcomeKind::ShardUnavailable,
                        detail: e.to_string(),
                    },
                    Err(e) => RouterBatchOutcome {
                        batch: b,
                        n_reads: reads.len() as u64,
                        kind: RouterOutcomeKind::Net,
                        detail: e.to_string(),
                    },
                };
                outcomes_r
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(outcome);
            }
            // Dropping the router closes its pooled connections, so a
            // clean drain sees EOF rather than idle sockets.
            drop(router);
        }));
    }

    {
        let token = sched::announce("rt.drainer");
        let mut server0 = server0;
        let mut server1 = server1;
        joins.push(std::thread::spawn(move || {
            let _task = sched::begin(token);
            sched::point("rt.drain.go");
            server0.shutdown();
            server1.shutdown();
            drop(server0);
            drop(server1);
        }));
    }

    // Drive the schedule.
    let mut trace: Vec<GrantRecord> = Vec::new();
    let mut sched_violation: Option<String> = None;
    loop {
        if trace.len() >= MAX_GRANTS {
            sched_violation = Some(format!("schedule exceeded {MAX_GRANTS} grants"));
            break;
        }
        match ctl.step() {
            Err(v) => {
                sched_violation = Some(v.to_string());
                break;
            }
            Ok(StepState::AllExited) => break,
            Ok(StepState::Enabled(mut cands)) => {
                cands.sort_by_key(|c| c.task);
                let pick = picker(&cands, &trace).min(cands.len() - 1);
                let c = &cands[pick];
                rec.sched(trace.len() as u64, c.task as u64, &c.task_name, &c.point);
                trace.push(GrantRecord {
                    step: trace.len() as u64,
                    task: c.task as u64,
                    task_name: c.task_name.clone(),
                    point: c.point.clone(),
                    clock_ms: ctl.clock_ms(),
                });
                ctl.grant(c.task);
            }
        }
    }

    drop(ctl);
    let mut violations = Vec::new();
    for (i, j) in joins.into_iter().enumerate() {
        if j.join().is_err() {
            violations.push(format!("scripted task #{i} panicked"));
        }
    }
    rec.flush();

    let totals = obs::Rollup::from_events(&rec.events()).totals();
    let counters: BTreeMap<String, u64> = [
        "qrouter.merge",
        "qrouter.hedge.fired",
        "qrouter.hedge.won",
        "qrouter.failover",
        "qrouter.shard.dead",
        "qnet.accepted",
    ]
    .into_iter()
    .map(|name| (name.to_string(), totals.counter(name)))
    .collect();

    let outcomes = Arc::try_unwrap(outcomes)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_default();

    if let Some(v) = &sched_violation {
        violations.push(format!("scheduler: {v}"));
    } else {
        violations.extend(check_invariants(cfg, &outcomes, &counters));
    }

    RouterRunResult {
        trace,
        outcomes,
        counters,
        sched_violation,
        violations,
    }
}

/// The cluster invariants, checked on every completed schedule.
fn check_invariants(
    cfg: &RouterScenarioConfig,
    outcomes: &[RouterBatchOutcome],
    counters: &BTreeMap<String, u64>,
) -> Vec<String> {
    let mut out = Vec::new();
    if outcomes.len() != cfg.batches {
        out.push(format!(
            "router script produced {} outcomes for {} batches",
            outcomes.len(),
            cfg.batches
        ));
    }
    for o in outcomes {
        if o.kind == RouterOutcomeKind::Corrupt {
            out.push(format!(
                "batch {} answered wrong bytes: {}",
                o.batch, o.detail
            ));
        }
    }
    let merged: u64 = outcomes
        .iter()
        .filter(|o| o.kind == RouterOutcomeKind::Merged)
        .map(|o| o.n_reads)
        .sum();
    let failed: u64 = outcomes
        .iter()
        .filter(|o| {
            matches!(
                o.kind,
                RouterOutcomeKind::ShardUnavailable | RouterOutcomeKind::Net
            )
        })
        .map(|o| o.n_reads)
        .sum();
    let offered = cfg.offered_reads();
    if merged + failed != offered {
        out.push(format!(
            "conservation broke: offered {offered} != merged {merged} + typed-failed {failed}"
        ));
    }
    let merge_counter = counters.get("qrouter.merge").copied().unwrap_or(0);
    if merge_counter != merged {
        out.push(format!(
            "merge charged {merge_counter} reads for {merged} merged — a hedge loser was \
             double-counted or a failed batch was merged"
        ));
    }
    let fired = counters.get("qrouter.hedge.fired").copied().unwrap_or(0);
    let won = counters.get("qrouter.hedge.won").copied().unwrap_or(0);
    if won > fired {
        out.push(format!(
            "hedge token charged twice: {won} wins for {fired} fired"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The baseline schedule (always grant the lowest task) completes,
    /// conserves every read, and answers byte-identically.
    #[test]
    fn baseline_cluster_schedule_holds_the_invariants() {
        let cfg = RouterScenarioConfig::default();
        let run = run_router_schedule(&cfg, &mut |_c, _t| 0);
        assert_eq!(run.sched_violation, None, "cluster schedule hung");
        assert!(
            run.violations.is_empty(),
            "violations: {:?}",
            run.violations
        );
        assert_eq!(run.outcomes.len(), cfg.batches);
    }

    /// Rotating the grant choice perturbs the interleaving (hedges may
    /// fire, the drain may land mid-script); conservation and the
    /// merge-once rule must hold on every one.
    #[test]
    fn rotated_cluster_schedules_conserve_reads() {
        let cfg = RouterScenarioConfig::default();
        for stride in 1..4usize {
            let mut i = 0usize;
            let run = run_router_schedule(&cfg, &mut |cands, _t| {
                i += stride;
                i % cands.len()
            });
            assert_eq!(run.sched_violation, None, "stride {stride} schedule hung");
            assert!(
                run.violations.is_empty(),
                "stride {stride} violations: {:?}",
                run.violations
            );
        }
    }
}
