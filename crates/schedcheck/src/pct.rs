//! Seeded random-priority schedule exploration (PCT style).
//!
//! Bounded DFS owns the shallow prefix of the schedule tree; this
//! strategy reaches the deep, unlikely tail. Each seed deterministically
//! derives a priority per task (splitmix64 of `seed ⊕ task`) plus
//! [`PctConfig::change_points`] demotion steps; at every decision the
//! highest-priority enabled candidate is granted, and at each demotion
//! step the current top candidate's priority drops below everything
//! else. With `d` demotions this is the PCT discipline: any bug of
//! "depth" `d` is hit with calculable probability per seed, and — the
//! property the harness actually banks on — **the seed alone replays
//! the schedule byte-for-byte**, asserted by re-running each seed and
//! comparing [`trace_hash`]es.

use crate::scenario::{run_schedule, RunResult};
use crate::trace::trace_hash;
use crate::{splitmix64, ExploreReport, ScenarioConfig, Violation};
use std::collections::{BTreeSet, HashMap};

/// Tuning for [`explore_pct`].
#[derive(Debug, Clone)]
pub struct PctConfig {
    /// The scenario every schedule runs.
    pub scenario: ScenarioConfig,
    /// First seed; seed `i` of the sweep is `splitmix64(seed0 ⊕ i)`.
    pub seed0: u64,
    /// Seeds (schedules) to run.
    pub schedules: u64,
    /// Priority demotions per schedule — PCT's `d`.
    pub change_points: usize,
    /// Re-run every seed and require an identical trace hash. Doubles
    /// the work of the sweep; the replays are not counted as explored
    /// schedules.
    pub replay_each: bool,
}

impl Default for PctConfig {
    fn default() -> Self {
        PctConfig {
            scenario: ScenarioConfig::default(),
            seed0: 0x5eed_0001,
            schedules: 64,
            change_points: 3,
            replay_each: false,
        }
    }
}

/// Demotion steps for a seed: `d` grant indices in `[0, 300)`.
fn change_steps(seed: u64, d: usize) -> BTreeSet<usize> {
    (0..d)
        .map(|i| (splitmix64(seed ^ (0xC0FF_EE00 + i as u64)) % 300) as usize)
        .collect()
}

/// Run one seeded schedule to completion.
pub fn run_pct(scenario: &ScenarioConfig, seed: u64, change_points: usize) -> RunResult {
    let changes = change_steps(seed, change_points);
    let mut prio: HashMap<usize, u64> = HashMap::new();
    run_schedule(scenario, &mut |cands, trace| {
        let step = trace.len();
        for c in cands {
            // Initial priorities are huge (≈ 2^63 on average), so a
            // demotion to the small step index sinks below everything.
            prio.entry(c.task).or_insert_with(|| {
                splitmix64(seed ^ ((c.task as u64 + 1) * 0x9E37_79B9)) | 1 << 32
            });
        }
        if changes.contains(&step) {
            if let Some(top) = pick_top(cands, &prio) {
                prio.insert(cands[top].task, step as u64);
            }
        }
        pick_top(cands, &prio).unwrap_or(0)
    })
}

/// Index of the highest-priority candidate; ties break to the lowest
/// task id so the choice is a pure function of (priorities, cands).
fn pick_top(cands: &[faultsim::sched::Candidate], prio: &HashMap<usize, u64>) -> Option<usize> {
    let mut best: Option<(usize, u64)> = None;
    for (i, c) in cands.iter().enumerate() {
        let p = prio.get(&c.task).copied().unwrap_or(0);
        let better = match best {
            None => true,
            Some((_, bp)) => p > bp,
        };
        if better {
            best = Some((i, p));
        }
    }
    best.map(|(i, _)| i)
}

/// Sweep [`PctConfig::schedules`] seeds, checking invariants on every
/// run and (optionally) replay determinism per seed.
pub fn explore_pct(cfg: &PctConfig) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut hashes = std::collections::HashSet::new();
    for i in 0..cfg.schedules {
        let seed = splitmix64(cfg.seed0 ^ i);
        let run = run_pct(&cfg.scenario, seed, cfg.change_points);
        report.observe_run(&run);
        hashes.insert(trace_hash(&run.trace));
        if !run.violations.is_empty() {
            report.violations.push(Violation {
                strategy: format!("pct:{seed:#x}"),
                detail: run.violations.join("; "),
                trace: run.trace.clone(),
            });
        }
        if cfg.replay_each {
            let again = run_pct(&cfg.scenario, seed, cfg.change_points);
            if trace_hash(&again.trace) != trace_hash(&run.trace) {
                report.diverged += 1;
                report.violations.push(Violation {
                    strategy: format!("pct:{seed:#x}"),
                    detail: format!(
                        "seed replay diverged: {} grants then {} grants with a different hash",
                        run.trace.len(),
                        again.trace.len()
                    ),
                    trace: again.trace,
                });
            }
        }
    }
    report.distinct_interleavings = hashes.len() as u64;
    report
}
