//! # dbg — the de Bruijn graph baseline
//!
//! The paper's Table VI discussion: "We do not include the results of de
//! Bruijn graph-based assemblers because most of them are not designed for
//! processing large datasets on a single machine (i.e., failed with
//! out-of-memory error)." This crate implements a first-generation-style
//! de Bruijn assembler (Velvet/SOAPdenovo lineage: a hash table over
//! canonical k-mers with 4+4 edge bits) so that the claim is reproducible
//! rather than taken on faith:
//!
//! * [`kmer`] — 2-bit packed k-mers (k ≤ 31) with strand-canonical form;
//! * [`graph`] — the k-mer hash graph, billing host memory per entry at
//!   the ~40 B/k-mer rate of uncompacted assemblers, so the scaled Table VI
//!   budgets OOM exactly where the paper says such tools did;
//! * [`assemble`] — coverage filtering, unitig extraction (maximal
//!   non-branching paths in the bidirected graph), contig spelling.
//!
//! The paper's Section II-A1 criticism also becomes testable: "this method
//! is prone to collapsing repeated regions of the genome that are larger
//! than k, causing information loss" — repeats longer than k fragment the
//! unitigs regardless of read length, while the string graph can bridge
//! them with long overlaps.

pub mod assemble;
pub mod graph;
pub mod kmer;

pub use assemble::{DbgAssembler, DbgError, DbgReport};
pub use graph::DbgGraph;
pub use kmer::Kmer;
