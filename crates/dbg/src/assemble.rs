//! Unitig extraction and the assembler facade.

use crate::graph::DbgGraph;
use crate::kmer::Kmer;
use genome::{PackedSeq, ReadSet};
use gstream::{HostMem, HostMemError};
use serde::{Deserialize, Serialize};

/// DBG assembler failure modes.
#[derive(Debug)]
pub enum DbgError {
    /// The k-mer table outgrew the host budget (the paper's observation
    /// about first-generation assemblers on large datasets).
    OutOfMemory(HostMemError),
}

impl std::fmt::Display for DbgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbgError::OutOfMemory(e) => write!(f, "k-mer table OOM: {e}"),
        }
    }
}

impl std::error::Error for DbgError {}

impl DbgError {
    /// Bytes in use when the failing reservation was attempted.
    pub fn in_use(&self) -> u64 {
        match self {
            DbgError::OutOfMemory(e) => e.in_use,
        }
    }

    /// Bytes the failing reservation requested.
    pub fn requested(&self) -> u64 {
        match self {
            DbgError::OutOfMemory(e) => e.requested,
        }
    }
}

/// Assembly outcome.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DbgReport {
    /// Distinct canonical k-mers.
    pub nodes: u64,
    /// Billed construction bytes.
    pub billed_bytes: u64,
    /// Unitigs produced.
    pub unitigs: u64,
    /// Total unitig bases.
    pub total_bases: u64,
    /// N50 of the unitigs.
    pub n50: u64,
    /// Wall seconds of graph construction + traversal.
    pub wall_seconds: f64,
}

/// The de Bruijn baseline assembler.
pub struct DbgAssembler {
    /// Odd k ≤ 31.
    pub k: usize,
    /// Minimum k-mer coverage kept (errors create weak k-mers).
    pub min_count: u32,
    /// Host budget the k-mer table is billed against.
    pub host: HostMem,
}

/// A traversal position: a canonical node read in one orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    node: Kmer,
    /// `true` = canonical orientation.
    forward: bool,
}

impl State {
    fn oriented(&self) -> Kmer {
        if self.forward {
            self.node
        } else {
            self.node.reverse_complement()
        }
    }
}

fn extensions(graph: &DbgGraph, s: State) -> Vec<(u8, State)> {
    let Some(data) = graph.node(s.node) else {
        return Vec::new();
    };
    let mask = data.ext[s.forward as usize];
    (0..4u8)
        .filter(|c| mask & (1 << c) != 0)
        .map(|c| {
            let w = s.oriented().extend_right(c);
            (
                c,
                State {
                    node: w.canonical(),
                    forward: w.is_canonical(),
                },
            )
        })
        .collect()
}

/// In-degree of a state = out-degree of its reversal.
fn back_degree(graph: &DbgGraph, s: State) -> usize {
    extensions(
        graph,
        State {
            node: s.node,
            forward: !s.forward,
        },
    )
    .len()
}

impl DbgAssembler {
    /// Assemble `reads` into unitigs.
    pub fn assemble(&self, reads: &ReadSet) -> Result<(Vec<PackedSeq>, DbgReport), DbgError> {
        let t0 = std::time::Instant::now();
        let mut graph = DbgGraph::new(self.k, self.host.clone());
        graph.add_reads(reads).map_err(DbgError::OutOfMemory)?;
        graph.filter_coverage(self.min_count);

        let mut visited = std::collections::HashSet::new();
        let mut contigs: Vec<PackedSeq> = Vec::new();

        // Unitig semantics: extend while the current state has exactly one
        // extension AND the next state has exactly one way back.
        let unambiguous_next = |g: &DbgGraph, s: State| -> Option<(u8, State)> {
            let ext = extensions(g, s);
            match ext.as_slice() {
                [(c, next)] if back_degree(g, *next) == 1 => Some((*c, *next)),
                _ => None,
            }
        };

        let walk =
            |start: State, graph: &DbgGraph, visited: &mut std::collections::HashSet<u64>| {
                let mut codes = start.oriented().to_codes();
                visited.insert(start.node.bits());
                let mut cur = start;
                loop {
                    match unambiguous_next(graph, cur) {
                        Some((c, next)) if !visited.contains(&next.node.bits()) => {
                            codes.push(c);
                            visited.insert(next.node.bits());
                            cur = next;
                        }
                        _ => break,
                    }
                }
                PackedSeq::from_codes(&codes)
            };

        // Seeds: states whose backward side is not an unambiguous
        // continuation (tips and junction exits), in deterministic order.
        let nodes = graph.nodes_sorted();
        for &(kmer, _) in &nodes {
            for forward in [true, false] {
                let s = State {
                    node: kmer,
                    forward,
                };
                if visited.contains(&kmer.bits()) {
                    break;
                }
                let back = State {
                    node: kmer,
                    forward: !forward,
                };
                let back_continues = unambiguous_next(&graph, back)
                    .is_some_and(|(_, prev)| !visited.contains(&prev.node.bits()));
                if !back_continues {
                    contigs.push(walk(s, &graph, &mut visited));
                    break;
                }
            }
        }
        // Cycle remnants.
        for &(kmer, _) in &nodes {
            if !visited.contains(&kmer.bits()) {
                contigs.push(walk(
                    State {
                        node: kmer,
                        forward: true,
                    },
                    &graph,
                    &mut visited,
                ));
            }
        }

        let mut lengths: Vec<u64> = contigs.iter().map(|c| c.len() as u64).collect();
        lengths.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = lengths.iter().sum();
        let mut acc = 0;
        let mut n50 = 0;
        for &l in &lengths {
            acc += l;
            if acc * 2 >= total {
                n50 = l;
                break;
            }
        }
        let report = DbgReport {
            nodes: graph.node_count() as u64,
            billed_bytes: graph.billed_bytes(),
            unitigs: contigs.len() as u64,
            total_bases: total,
            n50,
            wall_seconds: t0.elapsed().as_secs_f64(),
        };
        Ok((contigs, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::sim::is_substring_either_strand;
    use genome::{GenomeSim, ShotgunSim};

    fn assembler(k: usize, budget: u64) -> DbgAssembler {
        DbgAssembler {
            k,
            min_count: 1,
            host: HostMem::new(budget),
        }
    }

    #[test]
    fn clean_genome_collapses_to_one_unitig() {
        let genome = GenomeSim::uniform(500, 7).generate();
        let reads = ShotgunSim::error_free(60, 20.0, 8).sample(&genome);
        let (contigs, report) = assembler(21, 1 << 24).assemble(&reads).unwrap();
        // A repeat-free genome at dense coverage is a single unitig (plus
        // possibly tiny tip fragments at the ends).
        let longest = contigs.iter().map(|c| c.len()).max().unwrap();
        assert!(
            longest as f64 > 0.9 * genome.len() as f64,
            "longest unitig {longest} of {}",
            genome.len()
        );
        assert!(report.n50 as usize >= longest * 9 / 10);
        for c in &contigs {
            assert!(
                is_substring_either_strand(c, &genome),
                "unitig must be exact"
            );
        }
    }

    #[test]
    fn repeats_longer_than_k_fragment_the_assembly() {
        // The paper's Section II-A1 criticism: k-length windows collapse
        // repeats > k, losing information a string graph would keep.
        let genome = GenomeSim {
            len: 4_000,
            repeat_fraction: 0.003,
            repeat_len: 120, // longer than k = 21, shorter than a read
            seed: 17,
        }
        .generate();
        let reads = ShotgunSim::error_free(100, 20.0, 18).sample(&genome);
        let (dbg_contigs, _) = assembler(21, 1 << 24).assemble(&reads).unwrap();
        let dbg_longest = dbg_contigs.iter().map(|c| c.len()).max().unwrap();
        // The string graph with 63 bp minimum overlaps bridges the 120 bp
        // repeat copies only when reads span them; the DBG at k=21 never
        // can. Its longest unitig must fall well short of the genome.
        assert!(
            dbg_longest < genome.len() / 2,
            "k=21 cannot span 120 bp repeats: longest {dbg_longest}"
        );
    }

    #[test]
    fn budget_overflow_reports_oom() {
        let genome = GenomeSim::uniform(2_000, 9).generate();
        let reads = ShotgunSim::error_free(60, 10.0, 10).sample(&genome);
        match assembler(21, 10_000).assemble(&reads) {
            Err(DbgError::OutOfMemory(e)) => assert!(e.requested > 0),
            other => panic!("expected OOM, got {:?}", other.map(|(c, r)| (c.len(), r))),
        }
    }

    #[test]
    fn coverage_filter_removes_error_kmers() {
        let genome = GenomeSim::uniform(1_500, 31).generate();
        let noisy = ShotgunSim {
            read_len: 80,
            coverage: 30.0,
            strand_flip_prob: 0.5,
            error_rate: 0.01,
            seed: 32,
        }
        .sample(&genome);
        let lenient = DbgAssembler {
            k: 21,
            min_count: 1,
            host: HostMem::new(1 << 26),
        };
        let strict = DbgAssembler {
            k: 21,
            min_count: 3,
            host: HostMem::new(1 << 26),
        };
        let (_, lenient_report) = lenient.assemble(&noisy).unwrap();
        let (_, strict_report) = strict.assemble(&noisy).unwrap();
        // Error k-mers are unique; the filter strips them and contiguity
        // recovers dramatically.
        assert!(
            strict_report.n50 > lenient_report.n50 * 2,
            "strict N50 {} vs lenient {}",
            strict_report.n50,
            lenient_report.n50
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let reads = genome::ReadSet::new(60);
        let (contigs, report) = assembler(21, 1 << 20).assemble(&reads).unwrap();
        assert!(contigs.is_empty());
        assert_eq!(report.nodes, 0);
    }
}
