//! 2-bit packed k-mers with strand canonicalization.

use genome::PackedSeq;

/// A k-mer packed 2 bits per base into a `u64` (k ≤ 31; the top bits stay
/// clear so arithmetic can't overflow into sign conventions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Kmer {
    bits: u64,
    k: u8,
}

impl Kmer {
    /// Largest supported k.
    pub const MAX_K: usize = 31;

    /// Build from base codes.
    ///
    /// # Panics
    /// Panics if `codes.len()` is 0 or exceeds [`Kmer::MAX_K`], or if any
    /// code is > 3.
    pub fn from_codes(codes: &[u8]) -> Kmer {
        assert!(
            (1..=Self::MAX_K).contains(&codes.len()),
            "k = {} out of range",
            codes.len()
        );
        let mut bits = 0u64;
        for &c in codes {
            assert!(c < 4, "invalid base code {c}");
            bits = (bits << 2) | c as u64;
        }
        Kmer {
            bits,
            k: codes.len() as u8,
        }
    }

    /// k of this k-mer.
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The raw packed representation (high bits zero).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Base code at position `i` (0 = leftmost).
    pub fn base(&self, i: usize) -> u8 {
        debug_assert!(i < self.k());
        ((self.bits >> (2 * (self.k() - 1 - i))) & 3) as u8
    }

    /// Reverse complement.
    pub fn reverse_complement(&self) -> Kmer {
        let mut bits = 0u64;
        for i in 0..self.k() {
            bits = (bits << 2) | (self.base(self.k() - 1 - i) ^ 3) as u64;
        }
        Kmer { bits, k: self.k }
    }

    /// The strand-canonical form: the smaller of this k-mer and its
    /// reverse complement (so both strands of a locus map to one node).
    pub fn canonical(&self) -> Kmer {
        let rc = self.reverse_complement();
        if self.bits <= rc.bits {
            *self
        } else {
            rc
        }
    }

    /// `true` if this k-mer is its own canonical form.
    pub fn is_canonical(&self) -> bool {
        self.bits <= self.reverse_complement().bits
    }

    /// Shift one base in from the right (rolling window).
    pub fn extend_right(&self, code: u8) -> Kmer {
        debug_assert!(code < 4);
        let mask = (1u64 << (2 * self.k())) - 1;
        Kmer {
            bits: ((self.bits << 2) | code as u64) & mask,
            k: self.k,
        }
    }

    /// The base codes, most significant first.
    pub fn to_codes(&self) -> Vec<u8> {
        (0..self.k()).map(|i| self.base(i)).collect()
    }
}

/// Iterate the canonical k-mers of a sequence (one per window).
pub fn canonical_kmers(seq: &PackedSeq, k: usize) -> Vec<Kmer> {
    let codes = seq.to_codes();
    if codes.len() < k {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(codes.len() - k + 1);
    let mut window = Kmer::from_codes(&codes[..k]);
    out.push(window.canonical());
    for &c in &codes[k..] {
        window = window.extend_right(c);
        out.push(window.canonical());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_and_read_back() {
        let k = Kmer::from_codes(&[0, 1, 2, 3, 0]);
        assert_eq!(k.k(), 5);
        assert_eq!(k.to_codes(), vec![0, 1, 2, 3, 0]);
        assert_eq!(k.base(0), 0);
        assert_eq!(k.base(3), 3);
    }

    #[test]
    fn revcomp_matches_sequence_semantics() {
        // ACGT -> ACGT (palindrome); ACG -> CGT.
        let acg = Kmer::from_codes(&[0, 1, 2]);
        assert_eq!(acg.reverse_complement().to_codes(), vec![1, 2, 3]);
        let acgt = Kmer::from_codes(&[0, 1, 2, 3]);
        assert_eq!(acgt.reverse_complement(), acgt);
    }

    #[test]
    fn canonical_is_strand_invariant() {
        let k = Kmer::from_codes(&[3, 3, 0, 1]);
        assert_eq!(k.canonical(), k.reverse_complement().canonical());
        assert!(k.canonical().is_canonical());
    }

    #[test]
    fn extend_right_rolls_the_window() {
        let k = Kmer::from_codes(&[0, 1, 2]);
        assert_eq!(k.extend_right(3).to_codes(), vec![1, 2, 3]);
    }

    #[test]
    fn sequence_kmer_walk_matches_window_extraction() {
        let seq: PackedSeq = "ACGTACG".parse().unwrap();
        let ks = canonical_kmers(&seq, 4);
        assert_eq!(ks.len(), 4);
        let codes = seq.to_codes();
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(*k, Kmer::from_codes(&codes[i..i + 4]).canonical());
        }
    }

    #[test]
    fn too_short_sequences_yield_nothing() {
        let seq: PackedSeq = "ACG".parse().unwrap();
        assert!(canonical_kmers(&seq, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_k_panics() {
        Kmer::from_codes(&[0; 32]);
    }

    proptest! {
        #[test]
        fn revcomp_is_involution(codes in prop::collection::vec(0u8..4, 1..32)) {
            let k = Kmer::from_codes(&codes);
            prop_assert_eq!(k.reverse_complement().reverse_complement(), k);
        }

        #[test]
        fn both_strands_share_canonical(codes in prop::collection::vec(0u8..4, 1..32)) {
            let k = Kmer::from_codes(&codes);
            prop_assert_eq!(k.canonical(), k.reverse_complement().canonical());
        }
    }
}
