//! The k-mer hash graph with host-memory billing.

use crate::kmer::{canonical_kmers, Kmer};
use genome::ReadSet;
use gstream::{HostAlloc, HostMem, HostMemError};
use std::collections::HashMap;

/// Bytes billed per distinct k-mer node: a hash-table slot (key, coverage
/// counter, two 4-bit edge masks, load-factor slack) in a first-generation
/// assembler. Velvet-class tools spend considerably more; 40 B is a
/// charitable lower bound.
pub const BYTES_PER_NODE: u64 = 40;

/// Per-node payload: coverage and the extension masks for both traversal
/// orientations (`ext[1]` = traversing in canonical orientation,
/// `ext[0]` = traversing the reverse complement).
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeData {
    /// Occurrences of this canonical k-mer across the reads.
    pub count: u32,
    /// Extension bitmasks by traversal orientation.
    pub ext: [u8; 2],
}

/// A bidirected de Bruijn graph over canonical k-mers.
pub struct DbgGraph {
    k: usize,
    nodes: HashMap<u64, NodeData>,
    host: HostMem,
    reservations: Vec<HostAlloc>,
    billed_nodes: u64,
}

impl DbgGraph {
    /// An empty graph for odd `k ≤ 31` (odd k rules out palindromic
    /// k-mers, which would fold both orientations together), billing
    /// memory against `host`.
    pub fn new(k: usize, host: HostMem) -> Self {
        assert!(k % 2 == 1 && k <= Kmer::MAX_K, "k must be odd and ≤ 31");
        DbgGraph {
            k,
            nodes: HashMap::new(),
            host,
            reservations: Vec::new(),
            billed_nodes: 0,
        }
    }

    /// k of this graph.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct canonical k-mers.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Billed bytes so far.
    pub fn billed_bytes(&self) -> u64 {
        self.billed_nodes * BYTES_PER_NODE
    }

    /// Node payload, if present.
    pub fn node(&self, kmer: Kmer) -> Option<NodeData> {
        debug_assert!(kmer.is_canonical());
        self.nodes.get(&kmer.bits()).copied()
    }

    fn touch(&mut self, canonical: Kmer) -> Result<&mut NodeData, HostMemError> {
        if !self.nodes.contains_key(&canonical.bits()) {
            self.reservations.push(self.host.reserve(BYTES_PER_NODE)?);
            self.billed_nodes += 1;
            self.nodes.insert(canonical.bits(), NodeData::default());
        }
        Ok(self
            .nodes
            .get_mut(&canonical.bits())
            .expect("just inserted"))
    }

    /// Insert every k-mer of every read (both strands folded by
    /// canonicalization) and the adjacency between consecutive windows.
    pub fn add_reads(&mut self, reads: &ReadSet) -> Result<(), HostMemError> {
        let k = self.k;
        for read in reads.iter() {
            let codes = read.to_codes();
            if codes.len() < k {
                continue;
            }
            // Count every window.
            for w in canonical_kmers(&read, k) {
                self.touch(w)?.count += 1;
            }
            // Adjacency between consecutive windows.
            let mut window = Kmer::from_codes(&codes[..k]);
            for i in k..codes.len() {
                let c = codes[i];
                let next = window.extend_right(c);
                // Forward edge on the current node.
                let o = window.is_canonical() as usize;
                self.touch(window.canonical())?.ext[o] |= 1 << c;
                // Reciprocal (backward) edge on the next node: extending
                // the next window's reverse complement by the complement
                // of the base that precedes it.
                let p = codes[i - k];
                let o2 = (!next.is_canonical()) as usize;
                self.touch(next.canonical())?.ext[o2] |= 1 << (p ^ 3);
                window = next;
            }
        }
        Ok(())
    }

    /// Drop nodes with coverage below `min_count` (error/low-confidence
    /// k-mers) and prune dangling extension bits. Billed bytes are *not*
    /// returned — the construction peak is what OOMs real assemblers.
    pub fn filter_coverage(&mut self, min_count: u32) {
        if min_count <= 1 {
            return;
        }
        let k = self.k;
        self.nodes.retain(|_, d| d.count >= min_count);
        // Rebuild extension masks against surviving neighbors.
        let survivors: Vec<u64> = self.nodes.keys().copied().collect();
        for bits in survivors {
            let node = Kmer::from_codes(&decode(bits, k));
            let mut data = self.nodes[&bits];
            for o in 0..2 {
                let mut mask = data.ext[o];
                for c in 0..4u8 {
                    if mask & (1 << c) != 0 {
                        let oriented = if o == 1 {
                            node
                        } else {
                            node.reverse_complement()
                        };
                        let next = oriented.extend_right(c).canonical();
                        if !self.nodes.contains_key(&next.bits()) {
                            mask &= !(1 << c);
                        }
                    }
                }
                data.ext[o] = mask;
            }
            self.nodes.insert(bits, data);
        }
    }

    /// Iterate nodes in deterministic (ascending canonical bits) order.
    pub fn nodes_sorted(&self) -> Vec<(Kmer, NodeData)> {
        let mut out: Vec<(u64, NodeData)> = self.nodes.iter().map(|(&b, &d)| (b, d)).collect();
        out.sort_unstable_by_key(|(b, _)| *b);
        out.into_iter()
            .map(|(b, d)| (Kmer::from_codes(&decode(b, self.k)), d))
            .collect()
    }
}

fn decode(bits: u64, k: usize) -> Vec<u8> {
    (0..k)
        .map(|i| ((bits >> (2 * (k - 1 - i))) & 3) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::PackedSeq;

    fn reads_of(strs: &[&str]) -> ReadSet {
        ReadSet::from_reads(strs[0].len(), strs.iter().map(|s| s.parse().unwrap())).unwrap()
    }

    #[test]
    fn single_read_produces_a_chain() {
        let reads = reads_of(&["ACGTACC"]);
        let mut g = DbgGraph::new(5, HostMem::new(1 << 20));
        g.add_reads(&reads).unwrap();
        assert_eq!(g.node_count(), 3); // ACGTA, CGTAC, GTACC
                                       // Middle node must have exactly one extension each way.
        let mid = Kmer::from_codes(&[1, 2, 3, 0, 1]).canonical(); // CGTAC
        let d = g.node(mid).unwrap();
        assert_eq!(
            d.ext[0].count_ones() + d.ext[1].count_ones(),
            2,
            "one in + one out"
        );
    }

    #[test]
    fn both_strands_fold_to_the_same_nodes() {
        let fwd = reads_of(&["ACGTACC"]);
        let seq: PackedSeq = "ACGTACC".parse().unwrap();
        let rc = ReadSet::from_reads(7, [seq.reverse_complement()]).unwrap();
        let mut g1 = DbgGraph::new(5, HostMem::new(1 << 20));
        g1.add_reads(&fwd).unwrap();
        let mut g2 = DbgGraph::new(5, HostMem::new(1 << 20));
        g2.add_reads(&rc).unwrap();
        let n1: Vec<u64> = g1.nodes_sorted().iter().map(|(k, _)| k.bits()).collect();
        let n2: Vec<u64> = g2.nodes_sorted().iter().map(|(k, _)| k.bits()).collect();
        assert_eq!(n1, n2);
    }

    #[test]
    fn coverage_counts_accumulate() {
        let reads = reads_of(&["ACGTACC", "ACGTACC"]);
        let mut g = DbgGraph::new(5, HostMem::new(1 << 20));
        g.add_reads(&reads).unwrap();
        for (_, d) in g.nodes_sorted() {
            assert_eq!(d.count, 2);
        }
    }

    #[test]
    fn memory_is_billed_per_distinct_kmer() {
        let reads = reads_of(&["ACGTACC"]);
        let host = HostMem::new(1 << 20);
        let mut g = DbgGraph::new(5, host.clone());
        g.add_reads(&reads).unwrap();
        assert_eq!(g.billed_bytes(), 3 * BYTES_PER_NODE);
        assert_eq!(host.used(), 3 * BYTES_PER_NODE);
    }

    #[test]
    fn over_budget_construction_fails() {
        let reads = reads_of(&["ACGTACCGGATCACGATCAGCTCGATCGACTACGACTAGC"]);
        let host = HostMem::new(5 * BYTES_PER_NODE); // room for 5 k-mers only
        let mut g = DbgGraph::new(21, host);
        assert!(g.add_reads(&reads).is_err());
    }

    #[test]
    fn coverage_filter_drops_weak_nodes_and_dangling_edges() {
        let reads = reads_of(&["ACGTACC", "ACGTACC", "ACGTAGG"]);
        let mut g = DbgGraph::new(5, HostMem::new(1 << 20));
        g.add_reads(&reads).unwrap();
        let before = g.node_count();
        g.filter_coverage(2);
        assert!(g.node_count() < before);
        // No extension may point to a removed node.
        for (kmer, d) in g.nodes_sorted() {
            for o in 0..2 {
                for c in 0..4u8 {
                    if d.ext[o] & (1 << c) != 0 {
                        let oriented = if o == 1 {
                            kmer
                        } else {
                            kmer.reverse_complement()
                        };
                        let next = oriented.extend_right(c).canonical();
                        assert!(g.node(next).is_some(), "dangling edge");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be odd")]
    fn even_k_is_rejected() {
        DbgGraph::new(6, HostMem::new(1 << 20));
    }
}
