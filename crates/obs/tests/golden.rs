//! Golden-file test pinning the JSONL event schema.
//!
//! `golden_trace.jsonl` is the committed wire format. If this test fails,
//! the schema changed: update OBSERVABILITY.md and regenerate the golden
//! file deliberately — external consumers parse these lines.

use obs::{Event, Rollup};

const GOLDEN: &str = include_str!("golden_trace.jsonl");

fn expected_events() -> Vec<Event> {
    vec![
        Event::SpanStart {
            id: 1,
            parent: None,
            name: "assembly".into(),
            start_s: 0.0,
        },
        Event::SpanStart {
            id: 2,
            parent: Some(1),
            name: "sort".into(),
            start_s: 0.125,
        },
        Event::Counter {
            span: 2,
            name: "sort.pairs".into(),
            value: 128,
        },
        Event::Metric {
            span: 2,
            name: "io.read_seconds".into(),
            value: 0.25,
        },
        Event::Gauge {
            span: 2,
            name: "host.peak_bytes".into(),
            value: 1 << 30,
        },
        Event::SpanEnd {
            id: 2,
            wall_seconds: 0.5,
        },
        Event::SpanEnd {
            id: 1,
            wall_seconds: 1.5,
        },
    ]
}

#[test]
fn golden_trace_deserializes_to_expected_events() {
    let parsed: Vec<Event> = GOLDEN
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| serde_json::from_str(line).expect("golden line must parse"))
        .collect();
    assert_eq!(parsed, expected_events());
}

#[test]
fn expected_events_serialize_byte_identical_to_golden() {
    let rendered: Vec<String> = expected_events()
        .iter()
        .map(|event| serde_json::to_string(event).unwrap())
        .collect();
    let golden: Vec<&str> = GOLDEN
        .lines()
        .filter(|line| !line.trim().is_empty())
        .collect();
    assert_eq!(rendered, golden);
}

#[test]
fn golden_trace_rolls_up() {
    let rollup = Rollup::from_jsonl(GOLDEN).unwrap();
    let root = rollup.root_named("assembly").unwrap();
    assert_eq!(root.wall_seconds, 1.5);
    let sort = rollup.child_named(root.id, "sort").unwrap();
    assert_eq!(sort.wall_seconds, 0.5);
    let agg = rollup.subtree(root.id);
    assert_eq!(agg.counter("sort.pairs"), 128);
    assert_eq!(agg.metric("io.read_seconds"), 0.25);
    assert_eq!(agg.gauge("host.peak_bytes"), 1 << 30);
}
