//! # obs — structured observability for the LaSAGNA reproduction
//!
//! A lightweight (serde-only) structured-event layer:
//!
//! * hierarchical **spans** (`assembly > phase > partition > chunk`)
//!   carrying wall-clock time, recorded by a [`Recorder`];
//! * named **counters** (monotonic `u64` increments), **metrics**
//!   (additive `f64` quantities such as modeled seconds), **gauges**
//!   (`u64` high-water marks such as peak bytes) and **histograms**
//!   ([`Histogram`]: log-bucketed distributions that merge exactly),
//!   each attached to a span;
//! * pluggable **sinks** ([`JsonlSink`], [`MemorySink`], [`ProgressSink`],
//!   and the windowed [`LiveRollup`]) that observe every event as it is
//!   emitted;
//! * a [`Rollup`] that rebuilds the span tree from an event stream and
//!   aggregates counters/metrics/gauges/histograms over subtrees, so
//!   reports derived from a trace can never disagree with the trace
//!   itself.
//!
//! ```
//! use obs::{MemorySink, Recorder, Rollup};
//!
//! let rec = Recorder::new();
//! let handle = rec.add_memory_sink();
//! {
//!     let phase = rec.span("sort");
//!     rec.counter("sort.pairs", 128);
//!     rec.metric_on(phase.id(), "io.read_seconds", 0.5);
//! }
//! let rollup = Rollup::from_events(&rec.events());
//! let root = rollup.roots()[0];
//! assert_eq!(rollup.subtree(root.id).counter("sort.pairs"), 128);
//! assert_eq!(handle.events().len(), 4); // start, counter, metric, end
//! ```

mod event;
mod histogram;
mod live;
mod recorder;
mod rollup;
mod sink;

pub use event::Event;
pub use histogram::Histogram;
pub use live::LiveRollup;
pub use recorder::{Recorder, SpanGuard};
pub use rollup::{Rollup, SpanAgg, SpanNode};
pub use sink::{JsonlSink, MemoryHandle, MemorySink, ProgressSink, Sink};

/// Format a byte count with binary units (`1.5 GiB`), exact below 1 KiB.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["KiB", "MiB", "GiB", "TiB", "PiB", "EiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if value >= 100.0 {
        format!("{value:.0} {}", UNITS[unit])
    } else if value >= 10.0 {
        format!("{value:.1} {}", UNITS[unit])
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::human_bytes;

    #[test]
    fn human_bytes_exact_below_one_kib() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
    }

    #[test]
    fn human_bytes_scales_units() {
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(1536), "1.50 KiB");
        assert_eq!(human_bytes(10 * 1024 * 1024), "10.0 MiB");
        assert_eq!(human_bytes(10_737_418_240), "10.0 GiB");
        assert_eq!(human_bytes(250 * 1024 * 1024 * 1024), "250 GiB");
    }
}
