use serde::{Deserialize, Serialize};

use crate::histogram::Histogram;

/// One structured observability event.
///
/// Events serialize to single-line JSON objects tagged by `type`
/// (`span_start`, `span_end`, `counter`, `metric`, `gauge`,
/// `histogram`), one per line in a `.jsonl` trace. Span ids are unique
/// within one recorder; id `0` means "no span" (an unattached
/// measurement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Event {
    /// A span opened. `start_s` is seconds since the recorder was created.
    SpanStart {
        id: u64,
        parent: Option<u64>,
        name: String,
        start_s: f64,
    },
    /// A span closed after `wall_seconds` of wall-clock time.
    SpanEnd { id: u64, wall_seconds: f64 },
    /// A monotonic increment. Counters with the same name **sum**.
    Counter { span: u64, name: String, value: u64 },
    /// An additive floating-point quantity (e.g. modeled seconds). Sums.
    Metric { span: u64, name: String, value: f64 },
    /// A high-water mark (e.g. peak bytes). Gauges with the same name **max**.
    Gauge { span: u64, name: String, value: u64 },
    /// A distribution delta (e.g. latencies from one chunk of work).
    /// Histograms with the same name **merge** exactly, in any order.
    Histogram {
        span: u64,
        name: String,
        hist: Histogram,
    },
    /// One grant in a model-checked schedule (`schedcheck`): at step
    /// `step` the scheduler let `task` run past schedule point `point`.
    /// Interleaved with the server's own events in a failing schedule's
    /// trace, these lines show exactly which ordering broke the
    /// invariant; aggregators ignore them.
    Sched {
        step: u64,
        task: u64,
        task_name: String,
        point: String,
    },
}

impl Event {
    /// The span this event belongs to (the span's own id for
    /// `SpanStart`/`SpanEnd`).
    pub fn span_id(&self) -> u64 {
        match self {
            Event::SpanStart { id, .. } | Event::SpanEnd { id, .. } => *id,
            Event::Counter { span, .. }
            | Event::Metric { span, .. }
            | Event::Gauge { span, .. }
            | Event::Histogram { span, .. } => *span,
            Event::Sched { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "assembly".into(),
                start_s: 0.0,
            },
            Event::Counter {
                span: 1,
                name: "io.bytes_read".into(),
                value: 4096,
            },
            Event::Metric {
                span: 1,
                name: "io.read_seconds".into(),
                value: 0.25,
            },
            Event::Gauge {
                span: 1,
                name: "host.peak_bytes".into(),
                value: 1 << 30,
            },
            Event::Histogram {
                span: 1,
                name: "qserve.latency.total".into(),
                hist: {
                    let mut h = Histogram::new();
                    h.record(120);
                    h.record_n(4000, 3);
                    h
                },
            },
            Event::Sched {
                step: 12,
                task: 3,
                task_name: "qserve-worker-1".into(),
                point: "qserve.worker.exec".into(),
            },
            Event::SpanEnd {
                id: 1,
                wall_seconds: 1.5,
            },
        ];
        for event in &events {
            let line = serde_json::to_string(event).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, event);
        }
    }

    #[test]
    fn tag_names_are_snake_case() {
        let line = serde_json::to_string(&Event::SpanEnd {
            id: 7,
            wall_seconds: 0.5,
        })
        .unwrap();
        assert_eq!(line, r#"{"type":"span_end","id":7,"wall_seconds":0.5}"#);
    }
}
