use std::collections::BTreeMap;

use crate::event::Event;
use crate::histogram::Histogram;

/// Aggregated counters/metrics/gauges/histograms for one span (or a
/// subtree).
///
/// Counters and metrics are additive; gauges keep the maximum;
/// histograms merge exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanAgg {
    pub counters: BTreeMap<String, u64>,
    pub metrics: BTreeMap<String, f64>,
    pub gauges: BTreeMap<String, u64>,
    pub hists: BTreeMap<String, Histogram>,
}

impl SpanAgg {
    /// Counter value, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Metric value, `0.0` when absent.
    pub fn metric(&self, name: &str) -> f64 {
        self.metrics.get(name).copied().unwrap_or(0.0)
    }

    /// Gauge value, `0` when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Merged histogram for `name`, empty when absent.
    pub fn hist(&self, name: &str) -> Histogram {
        self.hists.get(name).cloned().unwrap_or_default()
    }

    /// Fold another aggregate in: sum counters/metrics, max gauges,
    /// merge histograms.
    pub fn absorb(&mut self, other: &SpanAgg) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.metrics {
            *self.metrics.entry(name.clone()).or_insert(0.0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(hist);
        }
    }
}

/// One span rebuilt from a trace.
#[derive(Debug, Clone)]
pub struct SpanNode {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    /// Seconds since the recorder start when the span opened.
    pub start_s: f64,
    /// Wall-clock seconds; `0.0` if the trace ended before the span closed.
    pub wall_seconds: f64,
    /// Measurements attached directly to this span (children excluded).
    pub own: SpanAgg,
    /// Child span ids, in open order.
    pub children: Vec<u64>,
}

/// The span tree plus aggregates, rebuilt from an event stream.
///
/// This is the single source of truth for reporting: anything derived
/// from a `Rollup` of the trace agrees with the trace by construction.
#[derive(Debug, Clone, Default)]
pub struct Rollup {
    nodes: BTreeMap<u64, SpanNode>,
    order: Vec<u64>,
    unattached: SpanAgg,
}

impl Rollup {
    /// Rebuild the span tree from events (in emit order).
    ///
    /// Measurements naming an unknown span (including span `0`) land in
    /// [`Rollup::unattached`] instead of being dropped.
    pub fn from_events(events: &[Event]) -> Self {
        let mut rollup = Rollup::default();
        for event in events {
            match event {
                Event::SpanStart {
                    id,
                    parent,
                    name,
                    start_s,
                } => {
                    rollup.nodes.insert(
                        *id,
                        SpanNode {
                            id: *id,
                            parent: *parent,
                            name: name.clone(),
                            start_s: *start_s,
                            wall_seconds: 0.0,
                            own: SpanAgg::default(),
                            children: Vec::new(),
                        },
                    );
                    rollup.order.push(*id);
                    if let Some(parent) = parent {
                        if let Some(node) = rollup.nodes.get_mut(parent) {
                            node.children.push(*id);
                        }
                    }
                }
                Event::SpanEnd { id, wall_seconds } => {
                    if let Some(node) = rollup.nodes.get_mut(id) {
                        node.wall_seconds = *wall_seconds;
                    }
                }
                Event::Counter { span, name, value } => match rollup.nodes.get_mut(span) {
                    Some(node) => {
                        *node.own.counters.entry(name.clone()).or_insert(0) += value;
                    }
                    None => {
                        *rollup.unattached.counters.entry(name.clone()).or_insert(0) += value;
                    }
                },
                Event::Metric { span, name, value } => match rollup.nodes.get_mut(span) {
                    Some(node) => {
                        *node.own.metrics.entry(name.clone()).or_insert(0.0) += value;
                    }
                    None => {
                        *rollup.unattached.metrics.entry(name.clone()).or_insert(0.0) += value;
                    }
                },
                Event::Gauge { span, name, value } => {
                    let agg = match rollup.nodes.get_mut(span) {
                        Some(node) => &mut node.own,
                        None => &mut rollup.unattached,
                    };
                    let slot = agg.gauges.entry(name.clone()).or_insert(0);
                    *slot = (*slot).max(*value);
                }
                Event::Histogram { span, name, hist } => {
                    let agg = match rollup.nodes.get_mut(span) {
                        Some(node) => &mut node.own,
                        None => &mut rollup.unattached,
                    };
                    agg.hists.entry(name.clone()).or_default().merge(hist);
                }
                // Schedule grants are narrative, not measurement.
                Event::Sched { .. } => {}
            }
        }
        rollup
    }

    /// Parse a JSONL trace (one event per line, blank lines ignored).
    pub fn from_jsonl(text: &str) -> Result<Self, serde_json::Error> {
        let mut events = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            events.push(serde_json::from_str::<Event>(line)?);
        }
        Ok(Rollup::from_events(&events))
    }

    /// All spans without a recorded parent, in open order.
    pub fn roots(&self) -> Vec<&SpanNode> {
        self.order
            .iter()
            .filter_map(|id| self.nodes.get(id))
            .filter(|node| node.parent.is_none())
            .collect()
    }

    /// The most recently opened root span with this name, if any.
    pub fn root_named(&self, name: &str) -> Option<&SpanNode> {
        self.roots().into_iter().rfind(|n| n.name == name)
    }

    /// Look up a span by id.
    pub fn node(&self, id: u64) -> Option<&SpanNode> {
        self.nodes.get(&id)
    }

    /// A span's direct children, in open order.
    pub fn children(&self, id: u64) -> Vec<&SpanNode> {
        match self.nodes.get(&id) {
            Some(node) => node
                .children
                .iter()
                .filter_map(|child| self.nodes.get(child))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The first direct child with this name, if any.
    pub fn child_named(&self, id: u64, name: &str) -> Option<&SpanNode> {
        self.children(id).into_iter().find(|n| n.name == name)
    }

    /// Aggregate a span's own measurements plus its whole subtree.
    pub fn subtree(&self, id: u64) -> SpanAgg {
        let mut agg = SpanAgg::default();
        let mut stack = vec![id];
        while let Some(current) = stack.pop() {
            if let Some(node) = self.nodes.get(&current) {
                agg.absorb(&node.own);
                stack.extend(node.children.iter().copied());
            }
        }
        agg
    }

    /// Everything in the trace folded into one aggregate: every span's
    /// own measurements plus the unattached bucket. Span identity is
    /// erased, which is exactly what whole-run summaries (live `Stats`
    /// snapshots, percentile tables) want.
    pub fn totals(&self) -> SpanAgg {
        let mut agg = self.unattached.clone();
        for node in self.nodes.values() {
            agg.absorb(&node.own);
        }
        agg
    }

    /// Measurements that named a span the trace never opened (or span 0).
    pub fn unattached(&self) -> &SpanAgg {
        &self.unattached
    }

    /// Total number of spans in the trace.
    pub fn span_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn subtree_sums_counters_and_metrics_and_maxes_gauges() {
        let rec = Recorder::new();
        {
            let phase = rec.span("phase");
            rec.counter_on(phase.id(), "n", 1);
            rec.gauge_on(phase.id(), "peak", 10);
            {
                let part = rec.span("part");
                rec.counter_on(part.id(), "n", 2);
                rec.metric_on(part.id(), "secs", 0.5);
                rec.gauge_on(part.id(), "peak", 25);
            }
            {
                let part = rec.span("part2");
                rec.counter_on(part.id(), "n", 4);
                rec.metric_on(part.id(), "secs", 0.25);
                rec.gauge_on(part.id(), "peak", 7);
            }
        }
        let rollup = Rollup::from_events(&rec.events());
        let root = rollup.root_named("phase").unwrap();
        let agg = rollup.subtree(root.id);
        assert_eq!(agg.counter("n"), 7);
        assert_eq!(agg.metric("secs"), 0.75);
        assert_eq!(agg.gauge("peak"), 25);
        // Own measurements exclude children.
        assert_eq!(root.own.counter("n"), 1);
    }

    #[test]
    fn histograms_merge_across_spans_and_totals_cover_everything() {
        let rec = Recorder::new();
        {
            let phase = rec.span("phase");
            let mut h = Histogram::new();
            h.record_n(100, 10);
            rec.histogram_on(phase.id(), "lat", h);
            {
                let part = rec.span("part");
                let mut h = Histogram::new();
                h.record_n(200, 5);
                rec.histogram_on(part.id(), "lat", h);
            }
        }
        // An orphan histogram lands in the unattached bucket.
        let mut events = rec.events();
        let mut orphan = Histogram::new();
        orphan.record(7);
        events.push(Event::Histogram {
            span: 9999,
            name: "lat".into(),
            hist: orphan,
        });
        let rollup = Rollup::from_events(&events);
        let root = rollup.root_named("phase").unwrap();
        assert_eq!(root.own.hist("lat").count(), 10);
        assert_eq!(rollup.subtree(root.id).hist("lat").count(), 15);
        assert_eq!(rollup.unattached().hist("lat").count(), 1);
        let totals = rollup.totals().hist("lat");
        assert_eq!(totals.count(), 16);
        assert_eq!(totals.min(), 7);
        assert_eq!(totals.max(), 200);
        assert_eq!(rollup.totals().hist("absent"), Histogram::new());
    }

    #[test]
    fn unattached_measurements_are_kept() {
        let events = vec![Event::Counter {
            span: 0,
            name: "orphan".into(),
            value: 9,
        }];
        let rollup = Rollup::from_events(&events);
        assert_eq!(rollup.unattached().counter("orphan"), 9);
    }

    #[test]
    fn root_named_picks_the_latest_run() {
        let rec = Recorder::new();
        {
            let first = rec.span("assembly");
            rec.counter_on(first.id(), "run", 1);
        }
        {
            let second = rec.span("assembly");
            rec.counter_on(second.id(), "run", 2);
        }
        let rollup = Rollup::from_events(&rec.events());
        let root = rollup.root_named("assembly").unwrap();
        assert_eq!(root.own.counter("run"), 2);
    }

    #[test]
    fn jsonl_round_trip_preserves_aggregates() {
        let rec = Recorder::new();
        {
            let phase = rec.span("phase");
            rec.metric_on(phase.id(), "secs", 1.0 / 3.0);
            rec.counter_on(phase.id(), "n", u64::MAX / 2);
        }
        let text: String = rec
            .events()
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let direct = Rollup::from_events(&rec.events());
        let parsed = Rollup::from_jsonl(&text).unwrap();
        let a = direct.root_named("phase").unwrap();
        let b = parsed.root_named("phase").unwrap();
        // serde_json prints f64 via the shortest round-trippable form, so
        // aggregates survive the file round trip bit-for-bit.
        assert_eq!(a.own, b.own);
        assert_eq!(a.wall_seconds, b.wall_seconds);
    }
}
