use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::event::Event;
use crate::histogram::Histogram;
use crate::sink::{MemoryHandle, MemorySink, Sink};

/// Records structured events: spans, counters, metrics, gauges.
///
/// A `Recorder` is cheap to clone (all clones share one event buffer and
/// sink list) and safe to use from multiple threads. [`Recorder::disabled`]
/// returns a recorder for which every operation is a no-op, so
/// instrumented code paths need no conditional plumbing.
///
/// Spans form a tree. [`Recorder::span`] parents the new span on the most
/// recently opened still-open span (a shared stack), which matches
/// single-threaded nesting. Worker threads that must attach to a specific
/// parent use [`Recorder::child_span`] with an explicit parent id, which
/// does not touch the shared stack.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    start: Instant,
    next_id: AtomicU64,
    /// When `false`, events flow to sinks but are not kept in memory
    /// (the long-running server mode; see [`Recorder::sink_only`]).
    buffer: bool,
    state: Mutex<State>,
}

#[derive(Default)]
struct State {
    events: Vec<Event>,
    stack: Vec<u64>,
    sinks: Vec<Box<dyn Sink>>,
}

impl Inner {
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Recorder")
                .field("events", &inner.lock_state().events.len())
                .finish(),
            None => f.write_str("Recorder(disabled)"),
        }
    }
}

impl Recorder {
    /// A live recorder with an empty event buffer and no sinks.
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                next_id: AtomicU64::new(1),
                buffer: true,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A live recorder that forwards every event to its sinks but keeps
    /// nothing in memory — [`Recorder::events`] stays empty. Use for
    /// long-running servers, where the in-memory buffer would otherwise
    /// grow without bound while a [`crate::LiveRollup`] (or a JSONL
    /// sink) captures the stream.
    pub fn sink_only() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                next_id: AtomicU64::new(1),
                buffer: false,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A recorder that drops everything. Every call is a no-op.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// `false` for [`Recorder::disabled`] recorders.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a sink; it observes every subsequent event in emit order.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        if let Some(inner) = &self.inner {
            inner.lock_state().sinks.push(sink);
        }
    }

    /// Attach a [`MemorySink`] and return the handle that reads it back.
    pub fn add_memory_sink(&self) -> MemoryHandle {
        let (sink, handle) = MemorySink::new();
        self.add_sink(Box::new(sink));
        handle
    }

    /// Flush all attached sinks (e.g. buffered JSONL writers).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in inner.lock_state().sinks.iter_mut() {
                sink.flush();
            }
        }
    }

    /// Open a span parented on the current innermost open span.
    /// The span closes (emitting `SpanEnd`) when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_inner(name, None, true)
    }

    /// Open a span with an explicit parent, bypassing the shared span
    /// stack. Use from worker threads so concurrent spans neither race
    /// on the stack nor mis-parent each other. `None` makes a root span.
    pub fn child_span(&self, parent: Option<u64>, name: &str) -> SpanGuard {
        self.span_inner(name, parent, false)
    }

    fn span_inner(&self, name: &str, explicit_parent: Option<u64>, push: bool) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                rec: Recorder::disabled(),
                id: 0,
                start: Instant::now(),
                pushed: false,
            };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let start_s = inner.start.elapsed().as_secs_f64();
        let mut st = inner.lock_state();
        let parent = if push {
            explicit_parent.or_else(|| st.stack.last().copied())
        } else {
            explicit_parent
        };
        let event = Event::SpanStart {
            id,
            parent,
            name: name.to_string(),
            start_s,
        };
        for sink in st.sinks.iter_mut() {
            sink.record(&event);
        }
        if inner.buffer {
            st.events.push(event);
        }
        if push {
            st.stack.push(id);
        }
        drop(st);
        SpanGuard {
            rec: self.clone(),
            id,
            start: Instant::now(),
            pushed: push,
        }
    }

    /// The id of the innermost open span, or `0` if none.
    pub fn current(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.lock_state().stack.last().copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Add `value` to counter `name` on the current span.
    pub fn counter(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.counter_on(self.current(), name, value);
        }
    }

    /// Add `value` to counter `name` on span `span`.
    pub fn counter_on(&self, span: u64, name: &str, value: u64) {
        self.emit(Event::Counter {
            span,
            name: name.to_string(),
            value,
        });
    }

    /// Add `value` to metric `name` on the current span.
    pub fn metric(&self, name: &str, value: f64) {
        if self.is_enabled() {
            self.metric_on(self.current(), name, value);
        }
    }

    /// Add `value` to metric `name` on span `span`.
    pub fn metric_on(&self, span: u64, name: &str, value: f64) {
        self.emit(Event::Metric {
            span,
            name: name.to_string(),
            value,
        });
    }

    /// Record gauge `name` at `value` on the current span (aggregates by max).
    pub fn gauge(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.gauge_on(self.current(), name, value);
        }
    }

    /// Record gauge `name` at `value` on span `span`.
    pub fn gauge_on(&self, span: u64, name: &str, value: u64) {
        self.emit(Event::Gauge {
            span,
            name: name.to_string(),
            value,
        });
    }

    /// Merge `hist` into histogram `name` on the current span.
    pub fn histogram(&self, name: &str, hist: Histogram) {
        if self.is_enabled() {
            self.histogram_on(self.current(), name, hist);
        }
    }

    /// Merge `hist` into histogram `name` on span `span`. Emit one
    /// event per chunk of work, not per value: the rollup merges deltas
    /// exactly, whatever order they arrive in.
    pub fn histogram_on(&self, span: u64, name: &str, hist: Histogram) {
        if hist.is_empty() {
            return;
        }
        self.emit(Event::Histogram {
            span,
            name: name.to_string(),
            hist,
        });
    }

    /// Record one grant of a model-checked schedule (`schedcheck`): at
    /// `step` the scheduler let `task` (named `task_name`) run past
    /// schedule point `point`. Interleaved with the server's own events,
    /// these narrate exactly which ordering a failing trace explored.
    pub fn sched(&self, step: u64, task: u64, task_name: &str, point: &str) {
        self.emit(Event::Sched {
            step,
            task,
            task_name: task_name.to_string(),
            point: point.to_string(),
        });
    }

    /// A snapshot of every event recorded so far, in emit order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.lock_state().events.clone(),
            None => Vec::new(),
        }
    }

    fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock_state();
            for sink in st.sinks.iter_mut() {
                sink.record(&event);
            }
            if inner.buffer {
                st.events.push(event);
            }
        }
    }
}

/// Closes its span on drop, emitting `SpanEnd` with the wall time.
pub struct SpanGuard {
    rec: Recorder,
    id: u64,
    start: Instant,
    pushed: bool,
}

impl SpanGuard {
    /// The span's id, for `*_on` attachment and explicit child parenting.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.rec.inner else {
            return;
        };
        let wall_seconds = self.start.elapsed().as_secs_f64();
        let mut st = inner.lock_state();
        if self.pushed {
            // Remove this span specifically: guards may drop out of order
            // when spans are created from concurrent workers.
            if let Some(pos) = st.stack.iter().rposition(|&open| open == self.id) {
                st.stack.remove(pos);
            }
        }
        let event = Event::SpanEnd {
            id: self.id,
            wall_seconds,
        };
        for sink in st.sinks.iter_mut() {
            sink.record(&event);
        }
        if inner.buffer {
            st.events.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollup::Rollup;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        let span = rec.span("phase");
        rec.counter("x", 1);
        rec.metric_on(span.id(), "y", 1.0);
        drop(span);
        assert!(!rec.is_enabled());
        assert!(rec.events().is_empty());
    }

    #[test]
    fn sink_only_recorder_feeds_sinks_without_buffering() {
        let rec = Recorder::sink_only();
        let handle = rec.add_memory_sink();
        {
            let _span = rec.span("phase");
            rec.counter("n", 2);
            let mut h = Histogram::new();
            h.record(5);
            rec.histogram("lat", h);
            rec.histogram("empty", Histogram::new()); // dropped
        }
        assert!(rec.is_enabled());
        assert!(rec.events().is_empty(), "sink-only keeps nothing");
        // start, counter, histogram, end — the empty histogram is elided.
        assert_eq!(handle.events().len(), 4);
        let rollup = Rollup::from_events(&handle.events());
        let root = rollup.root_named("phase").unwrap();
        assert_eq!(rollup.subtree(root.id).hist("lat").count(), 1);
    }

    #[test]
    fn spans_nest_via_shared_stack() {
        let rec = Recorder::new();
        let outer = rec.span("outer");
        let inner = rec.span("inner");
        assert_eq!(rec.current(), inner.id());
        drop(inner);
        assert_eq!(rec.current(), outer.id());
        drop(outer);
        assert_eq!(rec.current(), 0);

        let rollup = Rollup::from_events(&rec.events());
        let roots = rollup.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "outer");
        assert_eq!(rollup.children(roots[0].id)[0].name, "inner");
    }

    #[test]
    fn child_span_uses_explicit_parent_without_stack() {
        let rec = Recorder::new();
        let phase = rec.span("phase");
        let child = rec.child_span(Some(phase.id()), "rank0");
        // child_span must not occupy the shared stack.
        assert_eq!(rec.current(), phase.id());
        drop(child);
        drop(phase);

        let rollup = Rollup::from_events(&rec.events());
        let root = rollup.roots()[0];
        assert_eq!(rollup.children(root.id)[0].name, "rank0");
    }

    #[test]
    fn out_of_order_guard_drop_keeps_stack_consistent() {
        let rec = Recorder::new();
        let a = rec.span("a");
        let b = rec.span("b");
        drop(a); // dropped before b
        assert_eq!(rec.current(), b.id());
        drop(b);
        assert_eq!(rec.current(), 0);
    }

    #[test]
    fn counters_from_parallel_workers_sum_deterministically() {
        const THREADS: u64 = 8;
        const ADDS: u64 = 1000;
        let rec = Recorder::new();
        let root = rec.span("root");
        let root_id = root.id();
        std::thread::scope(|scope| {
            for worker in 0..THREADS {
                let rec = rec.clone();
                scope.spawn(move || {
                    let span = rec.child_span(Some(root_id), &format!("worker{worker}"));
                    for _ in 0..ADDS {
                        rec.counter_on(span.id(), "work.items", 3);
                    }
                });
            }
        });
        drop(root);

        let rollup = Rollup::from_events(&rec.events());
        assert_eq!(
            rollup.subtree(root_id).counter("work.items"),
            THREADS * ADDS * 3
        );
        // Every worker span individually carries its exact share.
        for child in rollup.children(root_id) {
            assert_eq!(rollup.subtree(child.id).counter("work.items"), ADDS * 3);
        }
    }
}
