//! Live windowed roll-ups: a [`Sink`] that folds the event stream into
//! aggregates as it happens, so a running server can answer "what is
//! p99 right now?" without stopping to roll up a trace.
//!
//! A [`LiveRollup`] keeps two things:
//!
//! * **totals** — one [`SpanAgg`] accumulating every counter, metric,
//!   gauge, and histogram since the recorder started, keyed by name
//!   (span identity is erased, matching [`crate::Rollup::totals`]);
//! * a **ring of fixed-duration windows**, each its own [`SpanAgg`],
//!   so recent activity (the last N seconds) can be summarized
//!   separately from the whole run — the basis for drain-rate and
//!   "recent p99" style views.
//!
//! Cloning a `LiveRollup` shares the underlying state, so the same
//! instance can be handed to `Recorder::add_sink` *and* queried from a
//! serving thread.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::event::Event;
use crate::rollup::SpanAgg;
use crate::sink::Sink;

/// A live windowed aggregator; see the module docs.
#[derive(Clone)]
pub struct LiveRollup {
    inner: Arc<Mutex<LiveInner>>,
}

struct LiveInner {
    epoch: Instant,
    window: Duration,
    capacity: usize,
    totals: SpanAgg,
    /// `(window_index, aggregate)`, oldest first. Indices are
    /// `elapsed / window`; silent windows are simply absent.
    windows: VecDeque<(u64, SpanAgg)>,
}

impl LiveRollup {
    /// A roll-up with `capacity` windows of `window` each. With e.g.
    /// 1 s windows and capacity 60, [`LiveRollup::recent`] can cover up
    /// to the last minute.
    pub fn new(window: Duration, capacity: usize) -> LiveRollup {
        LiveRollup {
            inner: Arc::new(Mutex::new(LiveInner {
                epoch: Instant::now(),
                window: window.max(Duration::from_millis(1)),
                capacity: capacity.max(1),
                totals: SpanAgg::default(),
                windows: VecDeque::new(),
            })),
        }
    }

    /// The fixed duration of one window.
    pub fn window_len(&self) -> Duration {
        self.lock().window
    }

    /// Everything observed since creation, folded by name.
    pub fn totals(&self) -> SpanAgg {
        self.lock().totals.clone()
    }

    /// The newest `n` windows (including the one currently filling)
    /// folded into one aggregate. `recent(1)` is "this window so far".
    pub fn recent(&self, n: usize) -> SpanAgg {
        let st = self.lock();
        let mut agg = SpanAgg::default();
        for (_, win) in st.windows.iter().rev().take(n.max(1)) {
            agg.absorb(win);
        }
        agg
    }

    /// Number of (non-silent) windows currently retained.
    pub fn window_count(&self) -> usize {
        self.lock().windows.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LiveInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn observe(&self, event: &Event) {
        let mut st = self.lock();
        let idx = (st.epoch.elapsed().as_nanos() / st.window.as_nanos().max(1)) as u64;
        let fresh = match st.windows.back() {
            Some((i, _)) => *i < idx,
            None => true,
        };
        if fresh {
            st.windows.push_back((idx, SpanAgg::default()));
            while st.windows.len() > st.capacity {
                st.windows.pop_front();
            }
        }
        match event {
            Event::Counter { name, value, .. } => {
                *st.totals.counters.entry(name.clone()).or_insert(0) += value;
                let (_, win) = st.windows.back_mut().unwrap();
                *win.counters.entry(name.clone()).or_insert(0) += value;
            }
            Event::Metric { name, value, .. } => {
                *st.totals.metrics.entry(name.clone()).or_insert(0.0) += value;
                let (_, win) = st.windows.back_mut().unwrap();
                *win.metrics.entry(name.clone()).or_insert(0.0) += value;
            }
            Event::Gauge { name, value, .. } => {
                let slot = st.totals.gauges.entry(name.clone()).or_insert(0);
                *slot = (*slot).max(*value);
                let (_, win) = st.windows.back_mut().unwrap();
                let slot = win.gauges.entry(name.clone()).or_insert(0);
                *slot = (*slot).max(*value);
            }
            Event::Histogram { name, hist, .. } => {
                st.totals.hists.entry(name.clone()).or_default().merge(hist);
                let (_, win) = st.windows.back_mut().unwrap();
                win.hists.entry(name.clone()).or_default().merge(hist);
            }
            // The live view aggregates by name only; span structure
            // stays the post-hoc Rollup's job, and schedule grants are
            // narrative rather than measurement.
            Event::SpanStart { .. } | Event::SpanEnd { .. } | Event::Sched { .. } => {}
        }
    }
}

impl Sink for LiveRollup {
    fn record(&mut self, event: &Event) {
        self.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::recorder::Recorder;

    #[test]
    fn live_totals_match_the_post_hoc_rollup() {
        let rec = Recorder::new();
        let live = LiveRollup::new(Duration::from_secs(1), 8);
        rec.add_sink(Box::new(live.clone()));
        {
            let phase = rec.span("phase");
            rec.counter_on(phase.id(), "n", 3);
            rec.metric_on(phase.id(), "secs", 0.5);
            rec.gauge_on(phase.id(), "peak", 10);
            rec.gauge_on(phase.id(), "peak", 4);
            let mut h = Histogram::new();
            h.record_n(250, 7);
            rec.histogram_on(phase.id(), "lat", h);
        }
        let post = crate::rollup::Rollup::from_events(&rec.events()).totals();
        assert_eq!(live.totals(), post);
        assert_eq!(live.totals().hist("lat").count(), 7);
    }

    #[test]
    fn windows_roll_and_recent_covers_the_tail() {
        // 1 ms windows so the test rolls without long sleeps.
        let live = LiveRollup::new(Duration::from_millis(1), 2);
        let mut sink: Box<dyn Sink> = Box::new(live.clone());
        let tick = |sink: &mut Box<dyn Sink>| {
            sink.record(&Event::Counter {
                span: 0,
                name: "n".into(),
                value: 1,
            });
        };
        tick(&mut sink);
        std::thread::sleep(Duration::from_millis(3));
        tick(&mut sink);
        std::thread::sleep(Duration::from_millis(3));
        tick(&mut sink);
        // Capacity 2: the oldest window fell off the ring, totals keep all.
        assert!(live.window_count() <= 2);
        assert_eq!(live.totals().counter("n"), 3);
        assert_eq!(live.recent(1).counter("n"), 1);
        assert!(live.recent(2).counter("n") <= 2);
    }
}
