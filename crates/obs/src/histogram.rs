//! Log-bucketed value histograms: HDR-style base-2 buckets with linear
//! sub-buckets, exactly mergeable, deterministically serialized.
//!
//! Values are unsigned integers (the serving tier records latencies in
//! microseconds). Each power-of-two range splits into `2^SUB_BITS`
//! linear sub-buckets, so relative quantization error is bounded by
//! `2^-SUB_BITS` (~3%) at every magnitude while values below
//! `2^SUB_BITS` are exact. All state is integral and bucket counts are
//! kept in a sorted sparse map, so merging histograms is exact,
//! commutative, and associative — two traces merged in any order
//! produce bit-identical aggregates, and the JSON serialization of an
//! aggregate is itself deterministic (sorted keys, integers only).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sub-bucket resolution: each power-of-two range has `2^SUB_BITS`
/// linear sub-buckets.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// A mergeable log-bucketed histogram (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Sparse bucket counts keyed by bucket index; absent means zero.
    buckets: BTreeMap<u32, u64>,
    /// Values recorded.
    count: u64,
    /// Sum of raw (unquantized) values, saturating.
    sum: u64,
    /// Smallest raw value recorded (`0` when empty).
    min: u64,
    /// Largest raw value recorded (`0` when empty).
    max: u64,
}

/// The bucket a raw value lands in. Values below `SUB_COUNT` map to
/// themselves (exact); above, the top `SUB_BITS + 1` significant bits
/// select the bucket.
fn bucket_index(v: u64) -> u32 {
    if v < SUB_COUNT {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((shift + 1) << SUB_BITS) + ((v >> shift) as u32 & (SUB_COUNT as u32 - 1))
}

/// The largest raw value that maps to `bucket` — the deterministic
/// representative reported by [`Histogram::percentile`].
fn bucket_high(bucket: u32) -> u64 {
    if u64::from(bucket) < SUB_COUNT {
        return u64::from(bucket);
    }
    let shift = (bucket >> SUB_BITS) - 1;
    let sub = u64::from(bucket & (SUB_COUNT as u32 - 1));
    ((sub + SUB_COUNT) << shift) + ((1u64 << shift) - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value` (a whole chunk of equal
    /// queue-waits, say) in O(log buckets).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        *self.buckets.entry(bucket_index(value)).or_insert(0) += n;
    }

    /// Fold `other` in. Exact: bucket counts add, so any merge order
    /// yields the identical histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (bucket, n) in &other.buckets {
            *self.buckets.entry(*bucket).or_insert(0) += n;
        }
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of raw values (saturating), for exact means over a merge.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest raw value recorded; `0` when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest raw value recorded; `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of raw values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q·count)`-th smallest value, clamped to
    /// the exact observed `[min, max]`. Deterministic — depends only on
    /// bucket counts, so it agrees across any merge order, any worker
    /// count, and any serialization round trip. `0` when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_high(*bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact_and_large_values_bounded() {
        // Below SUB_COUNT every value is its own bucket.
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_index(v), v as u32);
            assert_eq!(bucket_high(v as u32), v);
        }
        // Everywhere: v lands in a bucket whose upper bound is >= v and
        // within a sub-bucket width of v.
        for v in [
            32,
            33,
            63,
            64,
            65,
            100,
            1000,
            12_345,
            1 << 20,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let b = bucket_index(v);
            let high = bucket_high(b);
            assert!(high >= v, "v={v} bucket={b} high={high}");
            // Relative error bound: width/high <= 2^-SUB_BITS.
            let width = 1u64 << ((b >> SUB_BITS).saturating_sub(1));
            assert!(high - v < width, "v={v} high={high} width={width}");
        }
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        h.record(10);
        h.record_n(100, 3);
        h.record(7);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 317);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 63.4);
        h.record_n(1, 0); // no-op
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn percentiles_are_monotone_and_clamped_to_observed_range() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let ps: Vec<u64> = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&q| h.percentile(q))
            .collect();
        for w in ps.windows(2) {
            assert!(w[0] <= w[1], "{ps:?}");
        }
        assert!(h.percentile(0.0) >= h.min());
        assert_eq!(h.percentile(1.0), h.max());
        // p50 of 1..=1000 is within one sub-bucket of 500.
        let p50 = h.percentile(0.5);
        assert!((484..=516).contains(&p50), "p50={p50}");
    }

    #[test]
    fn merge_is_exact_and_order_invariant() {
        let mut parts = Vec::new();
        for seed in 0..4u64 {
            let mut h = Histogram::new();
            for i in 0..256u64 {
                // Deterministic pseudo-random spread across magnitudes.
                let v = (seed * 7919 + i * 104_729) % (1 << (8 + seed * 8));
                h.record(v);
            }
            parts.push(h);
        }
        let mut forward = Histogram::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut reverse = Histogram::new();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        assert_eq!(forward, reverse);
        // Bit-identical serialization, not just structural equality.
        assert_eq!(
            serde_json::to_string(&forward).unwrap(),
            serde_json::to_string(&reverse).unwrap()
        );
        let total: u64 = parts.iter().map(|p| p.count()).sum();
        assert_eq!(forward.count(), total);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut h = Histogram::new();
        for v in [0, 1, 31, 32, 1000, u64::MAX] {
            h.record(v);
        }
        let s = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&s).unwrap();
        assert_eq!(back, h);
        assert_eq!(serde_json::to_string(&back).unwrap(), s);
    }
}
