use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Observes every event a [`crate::Recorder`] emits, in order.
///
/// Sinks run under the recorder's lock; keep `record` cheap.
pub trait Sink: Send {
    fn record(&mut self, event: &Event);
    /// Flush any buffering (called by [`crate::Recorder::flush`]).
    fn flush(&mut self) {}
}

/// Streams events as one JSON object per line to a file.
pub struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        // A full disk surfaces at flush; per-event errors are ignored so
        // tracing can never fail an assembly.
        if let Ok(line) = serde_json::to_string(event) {
            let _ = writeln!(self.writer, "{line}");
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Buffers events in memory; read them back through the [`MemoryHandle`].
pub struct MemorySink {
    buffer: Arc<Mutex<Vec<Event>>>,
}

/// Shared view into a [`MemorySink`]'s buffer.
#[derive(Clone)]
pub struct MemoryHandle {
    buffer: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (MemorySink, MemoryHandle) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                buffer: Arc::clone(&buffer),
            },
            MemoryHandle { buffer },
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.buffer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

impl MemoryHandle {
    /// A snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.buffer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Prints shallow span completions to stderr for humans watching a run.
///
/// Spans deeper than `max_depth` (root = depth 0) are suppressed, so
/// per-chunk and per-kernel spans don't flood the terminal.
pub struct ProgressSink {
    max_depth: usize,
    meta: HashMap<u64, (String, usize)>,
}

impl ProgressSink {
    pub fn new(max_depth: usize) -> Self {
        ProgressSink {
            max_depth,
            meta: HashMap::new(),
        }
    }
}

impl Sink for ProgressSink {
    fn record(&mut self, event: &Event) {
        match event {
            Event::SpanStart {
                id, parent, name, ..
            } => {
                let depth = parent
                    .and_then(|p| self.meta.get(&p).map(|(_, d)| d + 1))
                    .unwrap_or(0);
                self.meta.insert(*id, (name.clone(), depth));
            }
            Event::SpanEnd { id, wall_seconds } => {
                if let Some((name, depth)) = self.meta.remove(id) {
                    if depth <= self.max_depth {
                        eprintln!(
                            "[obs] {:indent$}{name} {wall_seconds:.3}s",
                            "",
                            indent = depth * 2
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn memory_sink_sees_every_event_in_order() {
        let rec = Recorder::new();
        let handle = rec.add_memory_sink();
        {
            let _span = rec.span("phase");
            rec.counter("n", 2);
        }
        let events = handle.events();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0], Event::SpanStart { .. }));
        assert!(matches!(events[1], Event::Counter { .. }));
        assert!(matches!(events[2], Event::SpanEnd { .. }));
        assert_eq!(events, rec.events());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("trace.jsonl");
        let rec = Recorder::new();
        rec.add_sink(Box::new(JsonlSink::create(&path).unwrap()));
        {
            let _span = rec.span("phase");
            rec.counter("n", 2);
        }
        rec.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let parsed: Vec<Event> = lines
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, rec.events());
    }
}
