//! # faultsim — deterministic fault injection
//!
//! A registry of named *failpoints* threaded through the I/O, device, and
//! network layers. A [`FaultPlan`] arms a failpoint to fire on its Nth hit
//! ([`FaultPlan::fail_at`], one-shot) or on a deterministic pseudo-random
//! fraction of hits ([`FaultPlan::fail_prob`], persistent — models a flaky
//! component such as a lossy network); the shared [`Faults`] handle counts
//! hits and returns [`FaultError`] at exactly the armed occurrences.
//! Because every layer in this codebase is deterministic — probabilistic
//! arms draw from a seeded hash of the occurrence number, not a clock —
//! "fail the 3rd spill write" and "drop 5 % of connections under seed 7"
//! reproduce the same crashes on every run, which is what makes the
//! crash-and-resume matrix in `tests/failure_injection.rs` and
//! `repro faults` a proof rather than a dice roll.
//!
//! Failpoints are identified by the string constants below; see
//! ROBUSTNESS.md for the catalogue and where each one is checked. Injected
//! faults are recorded on the attached [`obs::Recorder`] as
//! `fault.injected.<point>` counters, and recovery layers report retries as
//! `fault.retries.<point>` via [`Faults::record_retry`].

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

pub mod sched;

/// Failpoint: committing (finishing) a spill file in `RecordWriter::finish`.
pub const SPILL_WRITE: &str = "gstream.write";
/// Failpoint: opening a spill file in `RecordReader::open`.
pub const READER_OPEN: &str = "gstream.open";
/// Failpoint: launching a vgpu kernel (any public `Device` kernel method).
pub const KERNEL_LAUNCH: &str = "vgpu.launch";
/// Failpoint: sending a dnet active message (`AmClient` with faults attached).
pub const DNET_AM: &str = "dnet.am";
/// Failpoint: handing the reduce-phase out-degree bit-vector token to the
/// next owner in `dnet::cluster`.
pub const DNET_TOKEN: &str = "dnet.token";
/// Failpoint: committing `manifest.json` in `lasagna::manifest`.
pub const MANIFEST_WRITE: &str = "manifest.write";
/// Failpoint: appending a record to the master's `superstep.log` in
/// `dnet::superstep` (fires before any byte reaches the log, so the
/// superstep it describes is replayed on resume).
pub const SUPERSTEP_WRITE: &str = "superstep.write";
/// Failpoint: the disk filling up mid-write. Unlike the crash-model
/// failpoints it surfaces as `StreamError::Io` with
/// `ErrorKind::StorageFull` from `RecordWriter`, the same shape a real
/// ENOSPC takes, so recovery paths (scratch shedding, CLI exit code 5)
/// are exercised against the genuine error type.
pub const DISK_FULL: &str = "disk.full";
/// Failpoint: opening/validating the contig store in
/// `qserve::ContigStore::open`.
pub const QSERVE_STORE_READ: &str = "qserve.store.read";
/// Failpoint: opening/validating the minimizer index in
/// `qserve::MinimizerIndex::open`.
pub const QSERVE_INDEX_READ: &str = "qserve.index.read";
/// Failpoint: exporting the contig store (`qserve::ContigStore::write`,
/// which the pipeline's compress phase calls). Like [`DISK_FULL`] it
/// surfaces as `StreamError::Io` with `ErrorKind::StorageFull` — the real
/// ENOSPC shape — so the export's shed-and-retry path (and CLI exit 5)
/// is exercised against the genuine error type.
pub const QSERVE_STORE_WRITE: &str = "qserve.store.write";
/// Failpoint: the `qnet` server accepting a connection — the just-accepted
/// socket is dropped before any byte is exchanged.
pub const QNET_ACCEPT: &str = "qnet.accept";
/// Failpoint: the `qnet` server committing a response frame — only a
/// prefix of the frame reaches the wire before the connection closes
/// (a torn/partial write the client must detect as corrupt).
pub const QNET_FRAME_WRITE: &str = "qnet.frame.write";
/// Failpoint: the `qnet` server stalling instead of responding — it holds
/// the response past the client's read timeout, then drops the connection.
pub const QNET_FRAME_STALL: &str = "qnet.frame.stall";
/// Failpoint: the `qnet` server dropping a connection mid-request, before
/// any response bytes are written. Meaningful armed probabilistically
/// ([`FaultPlan::fail_prob`]) as well as at a fixed occurrence.
pub const QNET_CONN_DROP: &str = "qnet.conn.drop";
/// Failpoint: the `qrouter` scatter path finding a shard replica
/// unreachable — the attempt fails before any byte is sent, as if the
/// replica's listener were gone. Drives the fail-over ladder.
pub const QROUTER_SHARD_DOWN: &str = "qrouter.shard.down";
/// Failpoint: a `qrouter` shard attempt stalling before its request is
/// sent — long enough to blow past the hedge delay, so the hedged second
/// request races (and should win against) the slow primary.
pub const QROUTER_SHARD_SLOW: &str = "qrouter.shard.slow";
/// Failpoint: a `qrouter` replica flapping — the attempt fails with a
/// retryable transport error and the replica is immediately healthy
/// again, exercising backoff bookkeeping without a dead replica.
pub const QROUTER_REPLICA_FLAP: &str = "qrouter.replica.flap";
/// Failpoint: loading a new generation's store/index during a hot reload
/// (`QueryService::reload_from`) — the load fails before the generation
/// is admitted, so the service keeps answering from the old generation.
pub const QSERVE_GEN_LOAD: &str = "qserve.gen.load";
/// Failpoint: validating a freshly loaded generation against its manifest
/// entry — the checksum binding is reported as mismatched, exercising the
/// typed rollback path (`GenError::ChecksumMismatch`).
pub const QSERVE_GEN_VALIDATE: &str = "qserve.gen.validate";
/// Failpoint: the `qnet` server stalling mid-reload — the swap is held
/// past its deadline and then fails loudly (a typed `ReloadFailed` naming
/// the generation) while queries keep draining from the old generation.
pub const QNET_RELOAD_STALL: &str = "qnet.reload.stall";

/// Every failpoint the codebase registers, in checking order. Also
/// exported as [`ALL_POINTS`]; [`FaultPlan::parse`] rejects any name not
/// on this list, so a typo in a `--faults` spec is loud instead of an arm
/// that silently never fires.
pub const ALL_FAILPOINTS: &[&str] = &[
    SPILL_WRITE,
    READER_OPEN,
    KERNEL_LAUNCH,
    DNET_AM,
    DNET_TOKEN,
    MANIFEST_WRITE,
    SUPERSTEP_WRITE,
    DISK_FULL,
    QSERVE_STORE_READ,
    QSERVE_INDEX_READ,
    QSERVE_STORE_WRITE,
    QNET_ACCEPT,
    QNET_FRAME_WRITE,
    QNET_FRAME_STALL,
    QNET_CONN_DROP,
    QROUTER_SHARD_DOWN,
    QROUTER_SHARD_SLOW,
    QROUTER_REPLICA_FLAP,
    QSERVE_GEN_LOAD,
    QSERVE_GEN_VALIDATE,
    QNET_RELOAD_STALL,
];

/// Alias for [`ALL_FAILPOINTS`] under the registry-generic name the
/// schedule-point catalogue (ROBUSTNESS.md) uses.
pub const ALL_POINTS: &[&str] = ALL_FAILPOINTS;

/// A rejected fault spec: [`FaultPlan::parse`] refuses to arm anything it
/// cannot fully understand, because a mis-spelled point or a garbled
/// probability arm would otherwise "pass" every chaos test by injecting
/// nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// The point name is not in [`ALL_POINTS`].
    UnknownPoint { point: String },
    /// The arm after the `:` (occurrence or probability) is malformed.
    BadArm { part: String, reason: String },
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::UnknownPoint { point } => write!(
                f,
                "unknown failpoint {point:?}; known points: {}",
                ALL_POINTS.join(", ")
            ),
            FaultSpecError::BadArm { part, reason } => {
                write!(f, "bad fault spec {part:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// An injected failure, returned by [`Faults::hit`] at the armed occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultError {
    /// Which failpoint fired.
    pub point: String,
    /// 1-based hit count at which it fired.
    pub occurrence: u64,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected fault at {} (occurrence {})",
            self.point, self.occurrence
        )
    }
}

impl std::error::Error for FaultError {}

/// When an armed failpoint fires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Trigger {
    /// Fire exactly once, on the `nth` hit (1-based).
    Nth(u64),
    /// Fire on every hit whose deterministic per-occurrence draw lands
    /// below `percent`. Never removed: a 5 % arm keeps firing on ~5 % of
    /// hits for the life of the registry. The draw hashes
    /// `seed ^ occurrence`, so a given (seed, occurrence) either always
    /// fires or never does — probabilistic in distribution, fully
    /// reproducible per run.
    Prob { percent: u8, seed: u64 },
}

/// One armed failure at `point`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Arm {
    point: String,
    trigger: Trigger,
}

/// splitmix64 — the per-occurrence draw behind [`Trigger::Prob`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn prob_fires(seed: u64, occurrence: u64, percent: u8) -> bool {
    splitmix64(seed ^ occurrence.wrapping_mul(0xA24B_AED4_963E_E407)) % 100 < percent as u64
}

/// A declarative set of armed failpoints. Build with [`FaultPlan::fail_at`]
/// or parse a `point:nth,point:nth` spec (the `repro faults` harness and
/// tests use both). The plan is inert data; [`Faults::from_plan`] turns it
/// into a live, counting registry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    arms: Vec<Arm>,
}

impl FaultPlan {
    /// An empty plan (no armed faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arm `point` to fail on its `nth` hit (1-based, fires once).
    pub fn fail_at(mut self, point: &str, nth: u64) -> Self {
        assert!(nth >= 1, "failpoint occurrences are 1-based");
        self.arms.push(Arm {
            point: point.to_string(),
            trigger: Trigger::Nth(nth),
        });
        self
    }

    /// Arm `point` probabilistically: each hit fires with probability
    /// `percent`/100, drawn deterministically from `seed` and the hit's
    /// occurrence number (see [`Trigger::Prob`]). Unlike [`fail_at`]
    /// arms, a probabilistic arm never disarms — it models a flaky
    /// component, not a single crash.
    ///
    /// [`fail_at`]: FaultPlan::fail_at
    pub fn fail_prob(mut self, point: &str, percent: u8, seed: u64) -> Self {
        assert!(percent <= 100, "probability is a percentage");
        self.arms.push(Arm {
            point: point.to_string(),
            trigger: Trigger::Prob { percent, seed },
        });
        self
    }

    /// Parse `"gstream.write:3,vgpu.launch:1"`. A probabilistic arm is
    /// `point:p<percent>` or `point:p<percent>@<seed>` (seed defaults
    /// to 0), e.g. `"qnet.conn.drop:p5@7"`. Point names are validated
    /// against [`ALL_POINTS`] — an unknown name is a typed
    /// [`FaultSpecError::UnknownPoint`], never a silently inert arm.
    pub fn parse(spec: &str) -> std::result::Result<FaultPlan, FaultSpecError> {
        let bad = |part: &str, reason: &str| FaultSpecError::BadArm {
            part: part.to_string(),
            reason: reason.to_string(),
        };
        let mut plan = FaultPlan::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (point, trigger) = part
                .split_once(':')
                .ok_or_else(|| bad(part, "want point:nth or point:pN[@seed]"))?;
            if !ALL_POINTS.contains(&point) {
                return Err(FaultSpecError::UnknownPoint {
                    point: point.to_string(),
                });
            }
            if let Some(prob) = trigger.strip_prefix('p') {
                let (percent, seed) = match prob.split_once('@') {
                    Some((p, s)) => (
                        p.parse::<u8>()
                            .map_err(|_| bad(part, "probability is not a number"))?,
                        s.parse::<u64>()
                            .map_err(|_| bad(part, "seed is not a number"))?,
                    ),
                    None => (
                        prob.parse::<u8>()
                            .map_err(|_| bad(part, "probability is not a number"))?,
                        0,
                    ),
                };
                if percent > 100 {
                    return Err(bad(part, "probability exceeds 100"));
                }
                plan = plan.fail_prob(point, percent, seed);
            } else {
                let nth: u64 = trigger
                    .parse()
                    .map_err(|_| bad(part, "occurrence is not a number"))?;
                if nth == 0 {
                    return Err(bad(part, "occurrences are 1-based"));
                }
                plan = plan.fail_at(point, nth);
            }
        }
        Ok(plan)
    }

    /// True if nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }
}

#[derive(Debug, Default)]
struct State {
    /// Hits seen per failpoint.
    hits: BTreeMap<String, u64>,
    /// Armed, not-yet-fired faults.
    arms: Vec<Arm>,
    /// Faults that have fired.
    injected: Vec<FaultError>,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    recorder: Mutex<obs::Recorder>,
}

/// Shared handle to the failpoint registry. Clone-cheap; clones share hit
/// counters, so "the Nth spill write" counts across every thread and node
/// that holds a clone. [`Faults::disabled`] (the default everywhere) makes
/// every check a no-op.
#[derive(Debug, Clone, Default)]
pub struct Faults {
    inner: Option<Arc<Inner>>,
}

impl Faults {
    /// A handle that never fires and counts nothing.
    pub fn disabled() -> Self {
        Faults { inner: None }
    }

    /// A live registry armed from `plan`. An empty plan still counts hits
    /// (useful for discovering occurrence numbers to arm).
    pub fn from_plan(plan: &FaultPlan) -> Self {
        Faults {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(State {
                    hits: BTreeMap::new(),
                    arms: plan.arms.clone(),
                    injected: Vec::new(),
                }),
                recorder: Mutex::new(obs::Recorder::disabled()),
            })),
        }
    }

    /// True unless this is the [`Faults::disabled`] no-op handle.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a recorder; injected faults and retries emit
    /// `fault.injected.<point>` / `fault.retries.<point>` counters on it.
    pub fn set_recorder(&self, recorder: obs::Recorder) {
        if let Some(inner) = &self.inner {
            *inner.recorder.lock() = recorder;
        }
    }

    /// Check in at `point`: increments its hit count and fails iff an arm
    /// matches this occurrence. Each arm fires at most once.
    pub fn hit(&self, point: &str) -> std::result::Result<(), FaultError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let fired = {
            let mut state = inner.state.lock();
            let count = state.hits.entry(point.to_string()).or_insert(0);
            *count += 1;
            let occurrence = *count;
            let armed = state.arms.iter().position(|a| {
                a.point == point
                    && match a.trigger {
                        Trigger::Nth(nth) => nth == occurrence,
                        Trigger::Prob { percent, seed } => prob_fires(seed, occurrence, percent),
                    }
            });
            armed.map(|idx| {
                // Fixed-occurrence arms fire once; probabilistic arms
                // model an ongoing flake and stay armed.
                if matches!(state.arms[idx].trigger, Trigger::Nth(_)) {
                    state.arms.remove(idx);
                }
                let err = FaultError {
                    point: point.to_string(),
                    occurrence,
                };
                state.injected.push(err.clone());
                err
            })
        };
        match fired {
            Some(err) => {
                inner
                    .recorder
                    .lock()
                    .counter(&format!("fault.injected.{point}"), 1);
                Err(err)
            }
            None => Ok(()),
        }
    }

    /// Record a recovery retry after an injected fault (obs counter
    /// `fault.retries.<point>`).
    pub fn record_retry(&self, point: &str) {
        if let Some(inner) = &self.inner {
            inner
                .recorder
                .lock()
                .counter(&format!("fault.retries.{point}"), 1);
        }
    }

    /// Hits seen at `point` so far.
    pub fn hits(&self, point: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().hits.get(point).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// All faults injected so far, in firing order.
    pub fn injected(&self) -> Vec<FaultError> {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().injected.clone())
            .unwrap_or_default()
    }
}

/// True if a stringified error chain came from an injected fault rather
/// than a real failure. Errors cross thread boundaries as strings in
/// `dnet`, so recovery keys off the [`FaultError`] display prefix.
pub fn is_injected(message: &str) -> bool {
    message.contains("injected fault at ")
}

/// The failpoint named in an injected-fault message, if any — used by
/// recovery code to attribute its retry to the right `fault.retries.*`
/// counter after the original [`FaultError`] was stringified.
pub fn injected_point(message: &str) -> Option<&str> {
    let rest = message.split("injected fault at ").nth(1)?;
    let end = rest.find(" (occurrence")?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_fires() {
        let f = Faults::disabled();
        for _ in 0..100 {
            assert!(f.hit(SPILL_WRITE).is_ok());
        }
        assert_eq!(f.hits(SPILL_WRITE), 0);
        assert!(f.injected().is_empty());
    }

    #[test]
    fn fires_exactly_once_at_the_armed_occurrence() {
        let f = Faults::from_plan(&FaultPlan::new().fail_at(READER_OPEN, 3));
        assert!(f.hit(READER_OPEN).is_ok());
        assert!(f.hit(READER_OPEN).is_ok());
        let err = f.hit(READER_OPEN).unwrap_err();
        assert_eq!(err.point, READER_OPEN);
        assert_eq!(err.occurrence, 3);
        // One-shot: later hits pass.
        assert!(f.hit(READER_OPEN).is_ok());
        assert_eq!(f.hits(READER_OPEN), 4);
        assert_eq!(f.injected(), vec![err]);
    }

    #[test]
    fn clones_share_hit_counts() {
        let f = Faults::from_plan(&FaultPlan::new().fail_at(DNET_AM, 2));
        let g = f.clone();
        assert!(f.hit(DNET_AM).is_ok());
        assert!(g.hit(DNET_AM).is_err());
        assert_eq!(f.hits(DNET_AM), 2);
    }

    #[test]
    fn independent_points_count_separately() {
        let f = Faults::from_plan(&FaultPlan::new().fail_at(SPILL_WRITE, 1));
        assert!(f.hit(READER_OPEN).is_ok());
        assert!(f.hit(SPILL_WRITE).is_err());
    }

    #[test]
    fn plan_parses_and_serializes() {
        let plan = FaultPlan::parse("gstream.write:3, vgpu.launch:1").unwrap();
        assert_eq!(
            plan,
            FaultPlan::new()
                .fail_at(SPILL_WRITE, 3)
                .fail_at(KERNEL_LAUNCH, 1)
        );
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(serde_json::from_str::<FaultPlan>(&json).unwrap(), plan);
        assert!(FaultPlan::parse("nope").is_err());
        assert!(FaultPlan::parse("gstream.write:0").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn unknown_points_and_malformed_arms_are_typed_and_name_the_catalogue() {
        // A typo'd point must not parse into an arm that never fires.
        let err = FaultPlan::parse("gstream.wrte:3").unwrap_err();
        assert_eq!(
            err,
            FaultSpecError::UnknownPoint {
                point: "gstream.wrte".into()
            }
        );
        // The message lists every valid point so the fix is one read away.
        let msg = err.to_string();
        for point in ALL_POINTS {
            assert!(msg.contains(point), "{msg:?} missing {point}");
        }
        // Unknown names are rejected before the arm shape is inspected.
        assert!(matches!(
            FaultPlan::parse("not.a.point:p50@7"),
            Err(FaultSpecError::UnknownPoint { .. })
        ));
        // Malformed arms on valid points are BadArm with the offending part.
        for spec in [
            "gstream.write",
            "gstream.write:",
            "gstream.write:0",
            "gstream.write:x",
            "qnet.conn.drop:p101",
            "qnet.conn.drop:p5@",
            "qnet.conn.drop:pnope",
        ] {
            match FaultPlan::parse(spec) {
                Err(FaultSpecError::BadArm { part, .. }) => {
                    assert_eq!(part, spec, "part should echo the arm")
                }
                other => panic!("{spec:?} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn probabilistic_arm_is_deterministic_and_stays_armed() {
        let plan = FaultPlan::new().fail_prob(QNET_CONN_DROP, 50, 42);
        let fired: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let f = Faults::from_plan(&plan);
                (1..=200)
                    .filter(|_| f.hit(QNET_CONN_DROP).is_err())
                    .collect()
            })
            .collect();
        // Same plan, same draw: both registries fire on exactly the same
        // occurrences, and a 50 % arm lands well inside (0, 200).
        assert_eq!(fired[0], fired[1]);
        assert!(
            fired[0].len() > 50 && fired[0].len() < 150,
            "{}",
            fired[0].len()
        );
        // The arm never disarms: fresh hits can still fire.
        let f = Faults::from_plan(&plan);
        for _ in 0..200 {
            let _ = f.hit(QNET_CONN_DROP);
        }
        assert_eq!(f.injected().len(), fired[0].len());
    }

    #[test]
    fn probability_extremes_never_and_always_fire() {
        let never = Faults::from_plan(&FaultPlan::new().fail_prob(QNET_ACCEPT, 0, 1));
        let always = Faults::from_plan(&FaultPlan::new().fail_prob(QNET_ACCEPT, 100, 1));
        for _ in 0..50 {
            assert!(never.hit(QNET_ACCEPT).is_ok());
            assert!(always.hit(QNET_ACCEPT).is_err());
        }
    }

    #[test]
    fn probabilistic_specs_parse_and_serialize() {
        let plan =
            FaultPlan::parse("qnet.conn.drop:p5@7, qnet.accept:p3, gstream.write:2").unwrap();
        assert_eq!(
            plan,
            FaultPlan::new()
                .fail_prob(QNET_CONN_DROP, 5, 7)
                .fail_prob(QNET_ACCEPT, 3, 0)
                .fail_at(SPILL_WRITE, 2)
        );
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(serde_json::from_str::<FaultPlan>(&json).unwrap(), plan);
        assert!(FaultPlan::parse("qnet.accept:p101").is_err());
        assert!(FaultPlan::parse("qnet.accept:p5@").is_err());
        assert!(FaultPlan::parse("qnet.accept:pnope").is_err());
    }

    #[test]
    fn injected_faults_are_recognizable_in_error_chains() {
        let f = Faults::from_plan(&FaultPlan::new().fail_at(KERNEL_LAUNCH, 1));
        let err = f.hit(KERNEL_LAUNCH).unwrap_err();
        assert!(is_injected(&format!("node 2: device: {err}")));
        assert!(!is_injected("disk on fire"));
        assert_eq!(
            injected_point(&format!("node 2: device: {err}")),
            Some(KERNEL_LAUNCH)
        );
        assert_eq!(injected_point("disk on fire"), None);
    }

    #[test]
    fn recorder_sees_injections_and_retries() {
        let rec = obs::Recorder::new();
        let f = Faults::from_plan(&FaultPlan::new().fail_at(DNET_TOKEN, 1));
        f.set_recorder(rec.clone());
        let span = rec.span("reduce");
        assert!(f.hit(DNET_TOKEN).is_err());
        f.record_retry(DNET_TOKEN);
        drop(span);
        let rollup = obs::Rollup::from_events(&rec.events());
        let root = rollup.root_named("reduce").unwrap();
        let agg = rollup.subtree(root.id);
        assert_eq!(agg.counter("fault.injected.dnet.token"), 1);
        assert_eq!(agg.counter("fault.retries.dnet.token"), 1);
    }
}
